#!/usr/bin/env python3
"""Compare two trace summaries produced by the observability layer.

Inputs are summary JSON files written by ``tape-jukebox trace
--summary-json``, by a campaign ``--trace-dir`` capture
(``<digest>.summary.json``), or by ``TraceSummary.to_dict`` directly.
The tool prints where the time went in each run and how it moved
between them — which phase absorbed a regression, whether outcomes
shifted (more sheds, fewer completions), and how tape heat changed.

Run from the repository root::

    python tools/trace_diff.py before.summary.json after.summary.json

With ``--threshold PCT`` the exit code turns non-zero when the mean
response time moved by more than PCT percent in either direction,
which makes the tool usable as a CI regression gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

try:  # allow running without PYTHONPATH=src
    from repro.obs import TraceSummary
except ImportError:  # pragma: no cover - path bootstrap
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.obs import TraceSummary


def load_summary(path: str) -> TraceSummary:
    """Read and validate one summary JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return TraceSummary.from_dict(payload)


def _fmt(value: float) -> str:
    return f"{value:.3f}"


def _delta(before: float, after: float) -> str:
    diff = after - before
    if before > 1e-9:
        return f"{diff:+.3f} ({diff / before:+.1%})"
    return f"{diff:+.3f}"


def render_diff(before: TraceSummary, after: TraceSummary) -> str:
    """A human-readable comparison of two summaries."""
    lines = []
    phases = sorted(
        set(before.phase_means) | set(after.phase_means),
        key=lambda phase: -(
            after.phase_means.get(phase, 0.0) - before.phase_means.get(phase, 0.0)
        ),
    )
    lines.append("--- mean seconds per phase (completed requests) ---")
    width = max([len("= mean response")] + [len(p) for p in phases])
    header = f"{'phase':>{width}}  {'before':>10}  {'after':>10}  delta"
    lines.append(header)
    lines.append("-" * len(header))
    for phase in phases:
        a = before.phase_means.get(phase, 0.0)
        b = after.phase_means.get(phase, 0.0)
        lines.append(
            f"{phase:>{width}}  {_fmt(a):>10}  {_fmt(b):>10}  {_delta(a, b)}"
        )
    lines.append(
        f"{'= mean response':>{width}}  {_fmt(before.mean_response_s):>10}  "
        f"{_fmt(after.mean_response_s):>10}  "
        f"{_delta(before.mean_response_s, after.mean_response_s)}"
    )
    lines.append("")
    lines.append("--- outcomes ---")
    for outcome in sorted(set(before.outcomes) | set(after.outcomes)):
        a = before.outcomes.get(outcome, 0)
        b = after.outcomes.get(outcome, 0)
        lines.append(f"{outcome:>12}  {a:>6} -> {b:<6} ({b - a:+d})")
    lines.append(
        f"{'measured':>12}  {before.completed:>6} -> {after.completed:<6} "
        f"({after.completed - before.completed:+d})"
    )
    moved = []
    for tape in sorted(set(before.tape_heat) | set(after.tape_heat)):
        a = before.tape_heat.get(tape, 0)
        b = after.tape_heat.get(tape, 0)
        if a != b:
            moved.append((abs(b - a), tape, a, b))
    if moved:
        lines.append("")
        lines.append("--- tape heat shifts (delivering reads) ---")
        moved.sort(key=lambda item: (-item[0], item[1]))
        for _, tape, a, b in moved[:10]:
            lines.append(f"{'tape ' + str(tape):>12}  {a:>6} -> {b:<6} ({b - a:+d})")
    changed_counters = []
    for name in sorted(set(before.counters) | set(after.counters)):
        a = before.counters.get(name, 0)
        b = after.counters.get(name, 0)
        if a != b:
            changed_counters.append((name, a, b))
    if changed_counters:
        lines.append("")
        lines.append("--- counters that moved ---")
        name_width = max(len(name) for name, _, _ in changed_counters)
        for name, a, b in changed_counters:
            lines.append(f"{name:>{name_width}}  {a:>8} -> {b:<8} ({b - a:+d})")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="diff two trace-summary JSON files"
    )
    parser.add_argument("before", help="baseline summary JSON")
    parser.add_argument("after", help="candidate summary JSON")
    parser.add_argument(
        "--threshold", type=float, default=None, metavar="PCT",
        help="exit non-zero when |mean response delta| exceeds PCT percent",
    )
    args = parser.parse_args(argv)
    before = load_summary(args.before)
    after = load_summary(args.after)
    print(render_diff(before, after))
    if args.threshold is not None and before.mean_response_s:
        shift = abs(after.mean_response_s - before.mean_response_s)
        fraction = shift / before.mean_response_s
        if fraction > args.threshold / 100.0:
            print(
                f"FAIL: mean response moved {fraction:.1%} "
                f"(threshold {args.threshold:g}%)",
                file=sys.stderr,
            )
            return 1
        print(
            f"OK: mean response moved {fraction:.1%} "
            f"(threshold {args.threshold:g}%)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
