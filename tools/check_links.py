#!/usr/bin/env python3
"""Check relative Markdown links and anchors in the repo's docs.

Scans ``README.md`` and every ``docs/*.md`` for inline links
(``[text](target)``), and verifies:

* relative file targets exist (resolved against the linking file);
* ``#anchor`` fragments — both same-file and cross-file — match a
  heading in the target file, using GitHub's slug rules (lowercase,
  punctuation stripped, spaces to hyphens, ``-N`` suffix for
  duplicates);
* absolute-URL targets (``http(s)://``, ``mailto:``) are skipped — the
  checker is offline by design.

Exit code is the number of broken links (0 = all good).  Run from the
repository root::

    python tools/check_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, List, Tuple

#: Inline Markdown links; deliberately simple (no reference-style links
#: in this repo, no nested brackets in link text we care about).
LINK_RE = re.compile(r"\[([^\]]*)\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^\s*(```|~~~)")


def github_slug(heading: str, seen: Dict[str, int]) -> str:
    """GitHub's anchor slug for ``heading`` (dedup via ``seen``)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # strip inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    slug = text.replace(" ", "-")
    count = seen.get(slug, 0)
    seen[slug] = count + 1
    return slug if count == 0 else f"{slug}-{count}"


def anchors_of(path: Path) -> set:
    """All heading anchors defined in ``path``."""
    seen: Dict[str, int] = {}
    anchors = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if match:
            anchors.add(github_slug(match.group(2), seen))
    return anchors


def iter_links(path: Path) -> List[Tuple[int, str]]:
    """``(line_number, target)`` for every inline link in ``path``."""
    links = []
    in_fence = False
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        stripped = re.sub(r"`[^`]*`", "", line)  # ignore inline code spans
        for match in LINK_RE.finditer(stripped):
            links.append((number, match.group(2)))
    return links


def check_file(path: Path, root: Path, anchor_cache: Dict[Path, set]) -> List[str]:
    """Broken-link descriptions for one Markdown file."""
    problems = []
    for number, target in iter_links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        if base:
            resolved = (path.parent / base).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(root)}:{number}: missing target {target!r}"
                )
                continue
        else:
            resolved = path.resolve()
        if fragment:
            if resolved.suffix.lower() != ".md" or resolved.is_dir():
                continue  # anchors into non-Markdown files aren't checked
            if resolved not in anchor_cache:
                anchor_cache[resolved] = anchors_of(resolved)
            if fragment.lower() not in anchor_cache[resolved]:
                problems.append(
                    f"{path.relative_to(root)}:{number}: "
                    f"missing anchor {target!r}"
                )
    return problems


def main(argv=None) -> int:
    root = Path(__file__).resolve().parent.parent
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").glob("*.md")))
    anchor_cache: Dict[Path, set] = {}
    problems: List[str] = []
    checked = 0
    for path in files:
        if not path.exists():
            continue
        checked += 1
        problems.extend(check_file(path, root, anchor_cache))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {checked} files: {len(problems)} broken links")
    return len(problems)


if __name__ == "__main__":
    sys.exit(main())
