#!/usr/bin/env python3
"""Chaos harness for crash-safe campaign execution.

Subjects a real (small) campaign grid to the failures the supervisor,
journal, and cache claim to survive — worker kills mid-point, a
SIGKILLed campaign process, corrupted cache entries and journal lines,
a full disk — and asserts the crash-safety invariant every time:

    the campaign either completes with results **bit-identical** to an
    undisturbed serial run (compared by
    :func:`repro.service.metrics.report_digest` golden hashes), or it
    fails loudly leaving a resumable journal — and a resume never
    re-executes a point the journal marked done whose cache entry is
    intact.

Run from the repository root::

    PYTHONPATH=src python tools/chaos_campaign.py --profile quick
    PYTHONPATH=src python tools/chaos_campaign.py --profile full -v

Exit status 0 means every scenario held the invariant; 1 means at
least one violated it (the JSON report on stdout names it).  The quick
profile (worker kill + crash/resume + corrupt cache entry) is what CI's
``chaos-smoke`` job runs; the full profile adds journal corruption,
disk-full, and orphan-GC scenarios.

Worker-kill injection uses picklable runner objects coordinated
through marker files, so it works across process boundaries without
shared state; the harness therefore requires a platform with
``fork``/``SIGKILL`` (any Linux/macOS CI).
"""

from __future__ import annotations

import argparse
import errno
import json
import multiprocessing
import os
import signal
import sys
import tempfile
import time
import warnings
from pathlib import Path

if __package__ in (None, ""):
    # Allow `python tools/chaos_campaign.py` from the repo root.
    _here = Path(__file__).resolve()
    sys.path.insert(0, str(_here.parent.parent / "src"))
    sys.path.insert(0, str(_here.parent))

from repro.campaign import Campaign, CampaignJournal, ResultCache
from repro.campaign.hashing import config_digest
from repro.experiments import ExperimentConfig, run_experiment
from repro.obs import MetricRegistry
from repro.service.metrics import report_digest


def chaos_grid(points: int = 6, horizon_s: float = 5_000.0):
    """The harness's small-but-real campaign grid."""
    base = ExperimentConfig(
        queue_length=5, horizon_s=horizon_s, tape_count=4, capacity_mb=500.0
    )
    return [base.with_(queue_length=5 * (index + 1)) for index in range(points)]


def baseline_digests(configs) -> dict:
    """Golden hashes of an undisturbed serial, uncached run."""
    submission = Campaign().submit(configs)
    return {
        config_digest(config): report_digest(submission.require(config).report)
        for config in configs
    }


def result_digests(submission, configs) -> dict:
    return {
        config_digest(config): report_digest(submission.require(config).report)
        for config in configs
    }


# ----------------------------------------------------------------------
# Picklable chaos runners (must be importable by worker processes).
# ----------------------------------------------------------------------
class KillOnceRunner:
    """SIGKILLs its own worker the first time the victim point runs.

    The marker file makes the kill happen exactly once across any
    number of processes: the first worker to reach the victim creates
    it and dies; the retry (in a fresh worker) finds it and simulates
    normally.
    """

    def __init__(self, marker_dir: str, victim_queue_length: int) -> None:
        self.marker = os.path.join(marker_dir, "killed-once")
        self.victim_queue_length = victim_queue_length

    def __call__(self, config):
        if config.queue_length == self.victim_queue_length:
            try:
                fd = os.open(self.marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                pass  # already killed once; run normally this time
            else:
                os.close(fd)
                os.kill(os.getpid(), signal.SIGKILL)
        return run_experiment(config)


class RecordingRunner:
    """Records every executed config digest as a file in ``record_dir``."""

    def __init__(self, record_dir: str) -> None:
        self.record_dir = record_dir

    def __call__(self, config):
        path = os.path.join(self.record_dir, config_digest(config))
        with open(path, "a", encoding="utf-8"):
            pass
        return run_experiment(config)


class SlowRunner:
    """Delays each point so the harness can kill the campaign mid-run."""

    def __init__(self, delay_s: float) -> None:
        self.delay_s = delay_s

    def __call__(self, config):
        time.sleep(self.delay_s)
        return run_experiment(config)


class FullDiskCache(ResultCache):
    """A cache whose disk 'fills up' after the first ``capacity`` writes."""

    def __init__(self, root, capacity: int = 1, **kwargs) -> None:
        super().__init__(root, **kwargs)
        self.capacity = capacity
        self.writes = 0

    def put(self, result):
        if self.writes >= self.capacity:
            raise OSError(errno.ENOSPC, "no space left on device (chaos)")
        self.writes += 1
        return super().put(result)


def _campaign_victim_process(configs, cache_dir, journal_path, delay_s):
    """Target for the crash scenario: a journaled campaign to SIGKILL."""
    Campaign(
        cache_dir=cache_dir,
        journal_path=journal_path,
        runner=SlowRunner(delay_s),
    ).submit(configs)


def corrupt_one_entry(cache_dir, config) -> Path:
    """Overwrite ``config``'s cache entry with a torn, unparsable write."""
    path = ResultCache(cache_dir, sweep_orphans=False).path_for(config)
    original = path.read_text()
    path.write_text(original[: max(4, len(original) // 3)] + "\x00garbage")
    return path


# ----------------------------------------------------------------------
# Scenarios.  Each returns a JSON-able dict with at least {"ok": bool}.
# ----------------------------------------------------------------------
def scenario_worker_kill(configs, golden, workdir, verbose) -> dict:
    """A worker SIGKILLed mid-point: retried, completed, bit-identical."""
    marker_dir = tempfile.mkdtemp(dir=workdir, prefix="kill-")
    cache_dir = os.path.join(workdir, "cache-kill")
    victim = configs[len(configs) // 2].queue_length
    campaign = Campaign(
        jobs=2,
        cache_dir=cache_dir,
        journal_path=os.path.join(workdir, "journal-kill.jsonl"),
        runner=KillOnceRunner(marker_dir, victim),
        max_attempts=3,
        backoff_base_s=0.05,
    )
    submission = campaign.submit(configs)
    digests = result_digests(submission, configs)
    return {
        "ok": (
            len(submission.failures) == 0
            and digests == golden
            and submission.stats.retried >= 1
            and campaign.metrics.count("campaign.workers.died") >= 1
        ),
        "failures": len(submission.failures),
        "retried": submission.stats.retried,
        "workers_died": campaign.metrics.count("campaign.workers.died"),
        "bit_identical": digests == golden,
    }


def scenario_crash_resume_corrupt(configs, golden, workdir, verbose) -> dict:
    """The CI invariant: SIGKILL the campaign process mid-run, corrupt
    one finished point's cache entry, then resume.

    Asserts the resumed campaign (a) re-executes *only* points that are
    not journal-done-with-intact-cache — zero intact done points re-run
    — (b) quarantines the corrupted entry as evidence, and (c) ends
    bit-identical to the undisturbed serial baseline.
    """
    cache_dir = os.path.join(workdir, "cache-crash")
    journal_path = os.path.join(workdir, "journal-crash.jsonl")
    process = multiprocessing.Process(
        target=_campaign_victim_process,
        args=(configs, cache_dir, journal_path, 0.25),
    )
    process.start()
    journal = CampaignJournal(journal_path)
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        if journal.exists() and len(journal.load_state().done) >= 2:
            break
        time.sleep(0.02)
    os.kill(process.pid, signal.SIGKILL)
    process.join(timeout=10.0)

    state = journal.load_state()
    done_before = set(state.done)
    if not done_before or len(done_before) >= len(configs):
        return {
            "ok": False,
            "reason": "kill timing produced no partial campaign",
            "done_before_resume": len(done_before),
        }

    # SIGKILL can land between the journal's `done` append and the
    # cache write, so "done" and "done with a verifiable cache entry"
    # can legitimately differ by the in-flight point — the invariant is
    # about the latter set.
    by_digest = {config_digest(config): config for config in configs}
    probe = ResultCache(cache_dir, sweep_orphans=False)
    intact_before = {
        digest
        for digest in done_before
        if probe.path_for(by_digest[digest]).exists()
    }
    if not intact_before:
        return {
            "ok": False,
            "reason": "kill timing left no intact done point to corrupt",
            "done_before_resume": len(done_before),
        }

    # Corrupt the cache entry of one journal-done point: the resume
    # must quarantine it and re-run that point (the journal alone can
    # never substitute for a verifiable cached result).
    corrupted_digest = sorted(intact_before)[0]
    corrupt_one_entry(cache_dir, by_digest[corrupted_digest])

    record_dir = tempfile.mkdtemp(dir=workdir, prefix="executed-")
    campaign = Campaign(
        cache_dir=cache_dir,
        journal_path=journal_path,
        runner=RecordingRunner(record_dir),
    )
    submission = campaign.submit(configs, resume=True)
    executed = set(os.listdir(record_dir))
    digests = result_digests(submission, configs)

    intact_done = intact_before - {corrupted_digest}
    rerun_of_intact_done = executed & intact_done
    quarantined = ResultCache(cache_dir, sweep_orphans=False).corrupt_entries()
    return {
        "ok": (
            digests == golden
            and not rerun_of_intact_done
            and corrupted_digest in executed
            and len(quarantined) == 1
            and submission.stats.resumed_done == len(intact_done)
        ),
        "bit_identical": digests == golden,
        "done_before_resume": len(done_before),
        "executed_on_resume": len(executed),
        "rerun_of_intact_done_points": len(rerun_of_intact_done),
        "corrupted_entry_requeued": corrupted_digest in executed,
        "quarantined_entries": [str(path) for path in quarantined],
        "resumed_done": submission.stats.resumed_done,
    }


def scenario_corrupt_journal(configs, golden, workdir, verbose) -> dict:
    """Garbage + torn lines in the journal: resume degrades, never dies."""
    cache_dir = os.path.join(workdir, "cache-journal")
    journal_path = os.path.join(workdir, "journal-corrupt.jsonl")
    first = Campaign(cache_dir=cache_dir, journal_path=journal_path)
    first.submit(configs[: len(configs) // 2])
    with open(journal_path, "ab") as handle:
        handle.write(b"\x00\xff this is not json\n")
        handle.write(b'{"event": "done", "digest": 42}\n')  # wrong types
        handle.write(b'{"event":"start","digest":"abc","attempt":1')  # torn
    journal = CampaignJournal(journal_path)
    state = journal.load_state()
    campaign = Campaign(cache_dir=cache_dir, journal_path=journal_path)
    submission = campaign.submit(configs, resume=True)
    digests = result_digests(submission, configs)
    # Reliability counters aggregated across both campaigns of the
    # scenario (the partial run and the resumed one).
    totals = MetricRegistry().merge(first.metrics).merge(campaign.metrics)
    return {
        "ok": (
            digests == golden
            and state.corrupt_lines >= 3
            and len(submission.failures) == 0
        ),
        "bit_identical": digests == golden,
        "corrupt_lines": state.corrupt_lines,
        "counters": totals.snapshot()["counters"],
    }


def scenario_disk_full(configs, golden, workdir, verbose) -> dict:
    """ENOSPC during cache writes: results stay correct, loss is loud."""
    cache = FullDiskCache(
        os.path.join(workdir, "cache-full"), capacity=2
    )
    campaign = Campaign(cache_dir=cache)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        submission = campaign.submit(configs)
    digests = result_digests(submission, configs)
    write_errors = campaign.metrics.count("campaign.cache.write_errors")
    warned = any("cache write failed" in str(w.message) for w in caught)
    return {
        "ok": (
            digests == golden
            and len(submission.failures) == 0
            and write_errors == len(configs) - 2
            and warned
        ),
        "bit_identical": digests == golden,
        "write_errors": write_errors,
        "warned": warned,
    }


def scenario_orphan_gc(configs, golden, workdir, verbose) -> dict:
    """Crashed-writer temp files are swept; entries stay untouched."""
    cache_dir = os.path.join(workdir, "cache-orphan")
    Campaign(cache_dir=cache_dir).submit(configs[:2])
    cache = ResultCache(cache_dir, sweep_orphans=False)
    shard = next(iter(sorted(Path(cache_dir).glob("*/"))))
    orphan = shard / ".deadbeef.json.12345.tmp"
    orphan.write_text("{ torn")
    removed = cache.clean()
    entries_before = len(cache)
    submission = Campaign(cache_dir=cache_dir).submit(configs[:2])
    return {
        "ok": (
            removed == 1
            and not orphan.exists()
            and entries_before == 2
            and submission.stats.cache_hits == 2
        ),
        "orphans_removed": removed,
        "entries": entries_before,
    }


PROFILES = {
    "quick": (
        scenario_worker_kill,
        scenario_crash_resume_corrupt,
    ),
    "full": (
        scenario_worker_kill,
        scenario_crash_resume_corrupt,
        scenario_corrupt_journal,
        scenario_disk_full,
        scenario_orphan_gc,
    ),
}


def run_profile(
    profile: str = "quick",
    points: int = 6,
    horizon_s: float = 5_000.0,
    workdir=None,
    verbose: bool = False,
) -> dict:
    """Run every scenario in ``profile``; returns the JSON-able report."""
    configs = chaos_grid(points=points, horizon_s=horizon_s)
    own_tmp = None
    if workdir is None:
        own_tmp = tempfile.TemporaryDirectory(prefix="chaos-campaign-")
        workdir = own_tmp.name
    try:
        golden = baseline_digests(configs)
        report = {"profile": profile, "points": points, "scenarios": {}}
        ok = True
        for scenario in PROFILES[profile]:
            name = scenario.__name__.replace("scenario_", "")
            if verbose:
                print(f"chaos: running {name} ...", file=sys.stderr)
            outcome = scenario(configs, golden, workdir, verbose)
            report["scenarios"][name] = outcome
            ok = ok and bool(outcome.get("ok"))
        report["ok"] = ok
        return report
    finally:
        if own_tmp is not None:
            own_tmp.cleanup()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="chaos-test crash-safe campaign execution"
    )
    parser.add_argument(
        "--profile", choices=sorted(PROFILES), default="quick",
        help="quick: worker kill + crash/resume/corrupt-cache (CI); "
        "full: adds journal corruption, disk-full, and orphan GC",
    )
    parser.add_argument("--points", type=int, default=6)
    parser.add_argument("--horizon", type=float, default=5_000.0)
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)
    report = run_profile(
        profile=args.profile,
        points=args.points,
        horizon_s=args.horizon,
        verbose=args.verbose,
    )
    print(json.dumps(report, indent=2, sort_keys=True))
    if not report["ok"]:
        print("chaos: INVARIANT VIOLATED", file=sys.stderr)
        return 1
    print(
        f"chaos: all {len(report['scenarios'])} scenario(s) held the "
        "crash-safety invariant",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
