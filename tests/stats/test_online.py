"""Unit and property tests for the online statistics accumulators."""

import math
import statistics

import pytest
from hypothesis import given, strategies as st

from repro.stats import RunningStats

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestRunningStats:
    def test_empty(self):
        stats = RunningStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.variance == 0.0
        assert stats.stdev == 0.0
        assert stats.total == 0.0

    def test_single_sample(self):
        stats = RunningStats()
        stats.add(5.0)
        assert stats.count == 1
        assert stats.mean == 5.0
        assert stats.variance == 0.0
        assert stats.minimum == 5.0
        assert stats.maximum == 5.0

    def test_known_values(self):
        stats = RunningStats()
        stats.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert stats.mean == pytest.approx(5.0)
        assert stats.variance == pytest.approx(statistics.variance([2, 4, 4, 4, 5, 5, 7, 9]))
        assert stats.minimum == 2.0
        assert stats.maximum == 9.0
        assert stats.total == 40.0

    @given(st.lists(finite_floats, min_size=2, max_size=100))
    def test_matches_statistics_module(self, values):
        stats = RunningStats()
        stats.extend(values)
        assert stats.mean == pytest.approx(statistics.fmean(values), rel=1e-9, abs=1e-6)
        expected_var = statistics.variance(values)
        assert stats.variance == pytest.approx(expected_var, rel=1e-6, abs=1e-4)

    @given(
        st.lists(finite_floats, min_size=1, max_size=50),
        st.lists(finite_floats, min_size=1, max_size=50),
    )
    def test_merge_equals_concatenation(self, left_values, right_values):
        left = RunningStats()
        left.extend(left_values)
        right = RunningStats()
        right.extend(right_values)
        merged = left.merge(right)

        combined = RunningStats()
        combined.extend(left_values + right_values)
        assert merged.count == combined.count
        assert merged.mean == pytest.approx(combined.mean, rel=1e-9, abs=1e-6)
        assert merged.variance == pytest.approx(combined.variance, rel=1e-6, abs=1e-4)
        assert merged.minimum == combined.minimum
        assert merged.maximum == combined.maximum

    def test_merge_with_empty(self):
        stats = RunningStats()
        stats.extend([1.0, 2.0])
        empty = RunningStats()
        assert stats.merge(empty).mean == pytest.approx(1.5)
        assert empty.merge(stats).mean == pytest.approx(1.5)

    @given(st.lists(finite_floats, min_size=1, max_size=100))
    def test_variance_never_negative(self, values):
        stats = RunningStats()
        stats.extend(values)
        assert stats.variance >= 0.0
        assert not math.isnan(stats.stdev)
