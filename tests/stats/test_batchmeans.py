"""Tests for batch-means confidence intervals."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.stats.batchmeans import (
    BatchMeans,
    ConfidenceInterval,
    batch_means_interval,
    t_quantile_975,
)


class TestTQuantile:
    def test_known_values(self):
        assert t_quantile_975(1) == pytest.approx(12.706)
        assert t_quantile_975(10) == pytest.approx(2.228)
        assert t_quantile_975(30) == pytest.approx(2.042)

    def test_large_df_approaches_normal(self):
        assert t_quantile_975(1000) == pytest.approx(1.96)

    def test_monotone_decreasing(self):
        values = [t_quantile_975(df) for df in range(1, 40)]
        assert values == sorted(values, reverse=True)

    def test_invalid_df(self):
        with pytest.raises(ValueError):
            t_quantile_975(0)


class TestBatchMeans:
    def test_batch_size_validation(self):
        with pytest.raises(ValueError):
            BatchMeans(0)

    def test_batches_freeze_at_size(self):
        accumulator = BatchMeans(batch_size=3)
        for value in (1, 2, 3, 4, 5, 6, 7):
            accumulator.add(value)
        assert accumulator.batch_means == [2.0, 5.0]  # partial [7] dropped
        assert accumulator.complete_batches == 2

    def test_interval_requires_two_batches(self):
        accumulator = BatchMeans(batch_size=2)
        accumulator.add(1.0)
        accumulator.add(2.0)
        assert accumulator.interval() is None
        accumulator.add(3.0)
        accumulator.add(4.0)
        interval = accumulator.interval()
        assert interval is not None
        assert interval.batch_count == 2

    def test_constant_signal_zero_width(self):
        accumulator = BatchMeans(batch_size=5)
        for _ in range(50):
            accumulator.add(7.0)
        interval = accumulator.interval()
        assert interval.mean == pytest.approx(7.0)
        assert interval.half_width == pytest.approx(0.0)
        assert interval.contains(7.0)

    def test_interval_covers_true_mean_for_iid_noise(self):
        """With 20 batches of i.i.d. noise, the 95% CI should cover the
        true mean in the vast majority of trials."""
        rng = random.Random(123)
        covered = 0
        trials = 60
        for _ in range(trials):
            accumulator = BatchMeans(batch_size=50)
            for _ in range(1000):
                accumulator.add(rng.gauss(10.0, 2.0))
            if accumulator.interval().contains(10.0):
                covered += 1
        assert covered >= trials * 0.85

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=40,
            max_size=400,
        )
    )
    def test_interval_properties(self, samples):
        interval = batch_means_interval(samples, batch_count=10)
        assert interval is not None
        assert interval.half_width >= 0
        assert interval.low <= interval.mean <= interval.high
        assert min(samples) - 1e-6 <= interval.mean <= max(samples) + 1e-6


class TestConvenience:
    def test_too_few_samples(self):
        assert batch_means_interval([1.0], batch_count=5) is None

    def test_batch_count_validation(self):
        with pytest.raises(ValueError):
            batch_means_interval([1.0, 2.0], batch_count=1)

    def test_relative_half_width(self):
        interval = ConfidenceInterval(mean=100.0, half_width=5.0, batch_count=10)
        assert interval.relative_half_width == pytest.approx(0.05)
        zero_mean = ConfidenceInterval(mean=0.0, half_width=5.0, batch_count=10)
        assert zero_mean.relative_half_width == float("inf")

    def test_simulation_response_times_have_tight_interval(self):
        """End-to-end: a longer run should shrink the CI half-width."""
        from repro.experiments import ExperimentConfig, build_simulator

        def responses(horizon):
            simulator = build_simulator(
                ExperimentConfig(queue_length=40, horizon_s=horizon)
            )
            captured = []
            original = simulator.metrics.on_completion

            def spy(request, now, **kwargs):
                original(request, now, **kwargs)
                if request.completion_s is not None and now >= simulator.metrics.warmup_s:
                    captured.append(request.response_s)

            simulator.metrics.on_completion = spy
            simulator.run(horizon)
            return captured

        short = batch_means_interval(responses(60_000.0), batch_count=10)
        long = batch_means_interval(responses(240_000.0), batch_count=10)
        assert long.relative_half_width < short.relative_half_width
