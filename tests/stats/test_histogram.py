"""Unit and property tests for histograms and percentiles."""

import pytest
from hypothesis import given, strategies as st

from repro.stats import Histogram, exact_percentile


class TestExactPercentile:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            exact_percentile([], 0.5)

    def test_fraction_out_of_range(self):
        with pytest.raises(ValueError):
            exact_percentile([1.0], 1.5)

    def test_single_value(self):
        assert exact_percentile([42.0], 0.5) == 42.0

    def test_median_of_sorted_run(self):
        assert exact_percentile([1, 2, 3, 4, 5], 0.5) == 3

    def test_interpolation(self):
        assert exact_percentile([0.0, 10.0], 0.25) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5.0, 1.0, 9.0]
        assert exact_percentile(values, 0.0) == 1.0
        assert exact_percentile(values, 1.0) == 9.0

    @given(
        st.lists(
            st.floats(
                min_value=0, max_value=1e6, allow_nan=False, allow_subnormal=False
            ),
            min_size=1,
        )
    )
    def test_monotone_in_fraction(self, values):
        p25 = exact_percentile(values, 0.25)
        p50 = exact_percentile(values, 0.50)
        p75 = exact_percentile(values, 0.75)
        assert p25 <= p50 <= p75


class TestHistogram:
    def test_invalid_bin_width(self):
        with pytest.raises(ValueError):
            Histogram(bin_width=0.0)

    def test_empty_percentile_raises(self):
        with pytest.raises(ValueError):
            Histogram().percentile(0.5)

    def test_mean_is_exact(self):
        histogram = Histogram(bin_width=5.0)
        for value in (1.0, 2.0, 3.0):
            histogram.add(value)
        assert histogram.mean == pytest.approx(2.0)
        assert histogram.count == 3

    def test_percentile_within_bin_accuracy(self):
        histogram = Histogram(bin_width=1.0)
        for value in range(100):
            histogram.add(value + 0.5)
        # Percentiles accurate to within one bin width.
        assert histogram.percentile(0.5) == pytest.approx(50, abs=1.5)
        assert histogram.percentile(0.9) == pytest.approx(90, abs=1.5)

    def test_bins_listing(self):
        histogram = Histogram(bin_width=10.0)
        histogram.add(5.0)
        histogram.add(7.0)
        histogram.add(25.0)
        assert histogram.bins() == [(0.0, 2), (20.0, 1)]

    def test_fraction_out_of_range(self):
        histogram = Histogram()
        histogram.add(1.0)
        with pytest.raises(ValueError):
            histogram.percentile(-0.1)

    @given(
        st.lists(
            st.floats(min_value=0, max_value=1000, allow_nan=False),
            min_size=1,
            max_size=200,
        )
    )
    def test_percentile_close_to_exact(self, values):
        """Histogram p50 lies within one bin of the +/- 1/n order-statistic
        neighborhood of the exact interpolated median (the two estimators
        use different small-sample interpolation rules)."""
        histogram = Histogram(bin_width=1.0)
        for value in values:
            histogram.add(value)
        approx = histogram.percentile(0.5)
        slack = 1.0 / len(values)
        low = exact_percentile(values, max(0.0, 0.5 - slack))
        high = exact_percentile(values, min(1.0, 0.5 + slack))
        assert low - 1.0 - 1e-9 <= approx <= high + 1.0 + 1e-9


class TestWarmupFilter:
    def test_drops_before_cutoff(self):
        from repro.stats import WarmupFilter

        warmup = WarmupFilter(cutoff_time=100.0)
        assert not warmup.offer(50.0, 1.0)
        assert warmup.offer(150.0, 2.0)
        assert warmup.dropped == 1
        assert warmup.accepted.count == 1
        assert warmup.accepted.mean == 2.0

    def test_negative_cutoff_rejected(self):
        from repro.stats import WarmupFilter

        with pytest.raises(ValueError):
            WarmupFilter(cutoff_time=-1.0)

    def test_boundary_is_inclusive(self):
        from repro.stats import WarmupFilter

        warmup = WarmupFilter(cutoff_time=10.0)
        assert warmup.offer(10.0, 3.0)
