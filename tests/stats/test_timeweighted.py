"""Unit tests for time-weighted statistics."""

import pytest
from hypothesis import given, strategies as st

from repro.stats import TimeWeightedStats


class TestTimeWeightedStats:
    def test_no_time_elapsed(self):
        stats = TimeWeightedStats()
        assert stats.mean == 0.0
        assert stats.elapsed == 0.0

    def test_constant_signal(self):
        stats = TimeWeightedStats()
        stats.update(0.0, 7.0)
        stats.finalize(10.0)
        assert stats.mean == pytest.approx(7.0)
        assert stats.elapsed == 10.0

    def test_step_signal(self):
        stats = TimeWeightedStats()
        stats.update(0.0, 0.0)
        stats.update(4.0, 10.0)  # value 0 held for 4s
        stats.finalize(10.0)  # value 10 held for 6s
        assert stats.mean == pytest.approx((0 * 4 + 10 * 6) / 10)

    def test_queue_length_example(self):
        stats = TimeWeightedStats()
        stats.update(0.0, 1)
        stats.update(2.0, 2)
        stats.update(5.0, 0)
        stats.finalize(10.0)
        assert stats.mean == pytest.approx((1 * 2 + 2 * 3 + 0 * 5) / 10)
        assert stats.minimum == 0.0
        assert stats.maximum == 2.0

    def test_time_going_backwards_rejected(self):
        stats = TimeWeightedStats()
        stats.update(5.0, 1.0)
        with pytest.raises(ValueError):
            stats.update(4.0, 2.0)

    def test_zero_span_updates_are_free(self):
        stats = TimeWeightedStats()
        stats.update(0.0, 100.0)
        stats.update(0.0, 1.0)  # instantaneous override
        stats.finalize(10.0)
        assert stats.mean == pytest.approx(1.0)

    def test_variance_of_constant_is_zero(self):
        stats = TimeWeightedStats()
        stats.update(0.0, 3.0)
        stats.finalize(8.0)
        assert stats.variance == pytest.approx(0.0)

    def test_variance_of_two_level_signal(self):
        stats = TimeWeightedStats()
        stats.update(0.0, 0.0)
        stats.update(5.0, 2.0)
        stats.finalize(10.0)
        # Equal-time mix of 0 and 2: mean 1, E[x^2]=2, var 1.
        assert stats.mean == pytest.approx(1.0)
        assert stats.variance == pytest.approx(1.0)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.001, max_value=100, allow_nan=False),
                st.floats(min_value=-100, max_value=100, allow_nan=False),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_mean_bounded_by_min_max(self, spans):
        stats = TimeWeightedStats()
        now = 0.0
        for span, value in spans:
            stats.update(now, value)
            now += span
        stats.finalize(now)
        values = [value for _span, value in spans]
        assert min(values) - 1e-9 <= stats.mean <= max(values) + 1e-9
        assert stats.variance >= 0.0
