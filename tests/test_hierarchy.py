"""Tests for the memory/disk/tape storage hierarchy."""

import random

import pytest

from repro.core import make_scheduler
from repro.des import Environment
from repro.hierarchy import DiskModel, HierarchySimulator, LRUCache, MemoryModel
from repro.layout import PlacementSpec, build_catalog
from repro.service import JukeboxSimulator, MetricsCollector
from repro.tape import Jukebox
from repro.workload import HotColdSkew

BLOCK = 16.0


class TestLRUCache:
    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_hit_miss_accounting(self):
        cache = LRUCache(2)
        assert not cache.access(1)
        cache.insert(1)
        assert cache.access(1)
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_ratio == pytest.approx(0.5)

    def test_eviction_is_lru(self):
        cache = LRUCache(2)
        cache.insert(1)
        cache.insert(2)
        cache.access(1)  # 2 is now least recent
        evicted = cache.insert(3)
        assert evicted == 2
        assert 1 in cache and 3 in cache and 2 not in cache

    def test_reinsert_refreshes_without_eviction(self):
        cache = LRUCache(2)
        cache.insert(1)
        cache.insert(2)
        assert cache.insert(1) is None
        assert cache.contents() == [2, 1]

    def test_zero_capacity_rejects(self):
        cache = LRUCache(0)
        assert cache.insert(1) is None
        assert not cache.access(1)

    def test_capacity_never_exceeded(self):
        cache = LRUCache(3)
        for block in range(10):
            cache.insert(block)
        assert len(cache) == 3
        assert cache.contents() == [7, 8, 9]


class TestDiskAndMemoryModels:
    def test_disk_service_time(self):
        disk = DiskModel(positioning_s=0.01, transfer_mb_s=40.0)
        assert disk.service_s(16.0) == pytest.approx(0.01 + 0.4)
        with pytest.raises(ValueError):
            disk.service_s(-1)

    def test_memory_service_time(self):
        memory = MemoryModel()
        assert memory.service_s(16.0) == pytest.approx(0.0002)
        with pytest.raises(ValueError):
            memory.service_s(-1)

    def test_tier_latency_orders_of_magnitude(self):
        from repro.tape import EXB_8505XL

        memory_s = MemoryModel().service_s(16.0)
        disk_s = DiskModel().service_s(16.0)
        tape_s = EXB_8505XL.locate_forward(3000.0) + EXB_8505XL.read(16.0)
        assert memory_s < disk_s / 100
        assert disk_s < tape_s / 100


def make_hierarchy(memory_blocks=64, disk_blocks=600, interarrival=40.0, rh=80.0,
                   seed=2):
    # The warm tier must be sized to cover the hot set (448 blocks at
    # PH-10) for the hierarchy to do its job — the paper's "warm data
    # are on magnetic disks" premise.
    catalog = build_catalog(PlacementSpec(percent_hot=10, block_mb=BLOCK), 10, 7 * 1024.0)
    tape = JukeboxSimulator(
        env=Environment(),
        jukebox=Jukebox.build(),
        catalog=catalog,
        scheduler=make_scheduler("dynamic-max-bandwidth"),
        source=__import__("repro.hierarchy.simulator", fromlist=["_TapeOnlySource"])._TapeOnlySource(),
        metrics=MetricsCollector(block_mb=BLOCK),
    )
    return HierarchySimulator(
        jukebox_simulator=tape,
        memory_blocks=memory_blocks,
        disk_blocks=disk_blocks,
        skew=HotColdSkew(rh),
        rng=random.Random(seed),
        mean_interarrival_s=interarrival,
    )


class TestHierarchySimulation:
    def test_tiers_absorb_traffic(self):
        hierarchy = make_hierarchy()
        stats = hierarchy.run(200_000.0)
        assert stats.total > 1000
        assert stats.memory_hits > 0
        assert stats.disk_hits > 0
        assert stats.tape_misses > 0
        # The caches absorb most of the hot traffic before tape.
        assert stats.jukebox_fraction < 0.5

    def test_caches_flatten_tape_skew(self):
        """Clients send RH-80 traffic; the jukebox should see much less
        hot-request concentration once the upper tiers soak it up."""
        hierarchy = make_hierarchy(rh=80.0)
        hierarchy.run(200_000.0)
        assert hierarchy.observed_tape_skew < 60.0

    def test_no_caches_everything_reaches_tape(self):
        hierarchy = make_hierarchy(memory_blocks=0, disk_blocks=0,
                                   interarrival=300.0)
        stats = hierarchy.run(40_000.0)
        assert stats.memory_hits == 0
        assert stats.disk_hits == 0
        assert stats.jukebox_fraction == 1.0

    def test_latency_split_between_tiers(self):
        hierarchy = make_hierarchy()
        stats = hierarchy.run(60_000.0)
        # Cache-dominated mean latency is far below tape-only latency.
        assert stats.latency.mean < stats.tape_latency.mean
        assert stats.tape_latency.mean > 60.0  # tape takes minutes-ish

    def test_in_flight_coalescing(self):
        """Concurrent misses on one block trigger a single tape read."""
        hierarchy = make_hierarchy(memory_blocks=0, disk_blocks=0,
                                   interarrival=5.0, rh=100.0, seed=7)
        stats = hierarchy.run(20_000.0)
        tape_reads = hierarchy.tape.metrics.total_completed
        assert stats.tape_misses > tape_reads  # some rides shared a read

    def test_invalid_interarrival(self):
        with pytest.raises(ValueError):
            make_hierarchy(interarrival=0.0)
