"""Every example script must run end to end (tiny horizons)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: Script -> argv giving it a fast-but-meaningful run.
EXAMPLE_ARGS = {
    "quickstart.py": ["20000"],
    "envelope_walkthrough.py": [],
    "capacity_planning.py": ["8000"],
    "video_archive.py": ["15000"],
    "hierarchical_storage.py": ["20000"],
    "scheduler_shootout.py": ["8000", "20"],
    "trace_demo.py": ["20000"],
}


def test_every_example_is_covered():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXAMPLE_ARGS), (
        "add new examples to EXAMPLE_ARGS so they stay runnable"
    )


@pytest.mark.parametrize("script", sorted(EXAMPLE_ARGS))
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *EXAMPLE_ARGS[script]],
        capture_output=True,
        text=True,
        timeout=420,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), f"{script} printed nothing"


def test_quickstart_reports_improvement():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py"), "30000"],
        capture_output=True,
        text=True,
        timeout=420,
    )
    assert completed.returncode == 0
    assert "throughput" in completed.stdout
    assert "Replication + envelope scheduling" in completed.stdout
