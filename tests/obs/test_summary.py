"""TraceSummary aggregation and its JSON round-trip."""

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.obs import SUMMARY_SCHEMA, Tracer, TraceSummary

CONFIG = ExperimentConfig(
    tape_count=5, queue_length=15, horizon_s=30_000.0, seed=3
)


@pytest.fixture(scope="module")
def traced():
    obs = Tracer()
    result = run_experiment(CONFIG, obs=obs)
    return result, obs


def test_warmup_filter_matches_metrics_population(traced):
    result, tracer = traced
    summary = TraceSummary.from_tracer(tracer, warmup_s=CONFIG.warmup_s)
    assert summary.completed == result.report.completed
    unfiltered = TraceSummary.from_tracer(tracer, warmup_s=0.0)
    assert unfiltered.completed >= summary.completed


def test_round_trip_through_dict(traced):
    _, tracer = traced
    summary = TraceSummary.from_tracer(tracer, warmup_s=CONFIG.warmup_s)
    payload = summary.to_dict()
    assert payload["schema"] == SUMMARY_SCHEMA
    rebuilt = TraceSummary.from_dict(payload)
    assert rebuilt.to_dict() == payload
    assert rebuilt.tape_heat == summary.tape_heat  # int keys restored
    assert rebuilt.drive_busy == summary.drive_busy
    assert rebuilt.phase_means == summary.phase_means


def test_round_trip_survives_json(traced):
    import json

    _, tracer = traced
    summary = TraceSummary.from_tracer(tracer, warmup_s=CONFIG.warmup_s)
    rebuilt = TraceSummary.from_dict(
        json.loads(json.dumps(summary.to_dict()))
    )
    assert rebuilt.to_dict() == summary.to_dict()


def test_from_dict_rejects_unknown_schema():
    with pytest.raises(ValueError, match="unsupported summary schema"):
        TraceSummary.from_dict({"schema": "bogus/0"})


def test_hottest_tapes_ranked_by_reads_then_id(traced):
    _, tracer = traced
    summary = TraceSummary.from_tracer(tracer)
    ranked = summary.hottest_tapes(top=3)
    assert len(ranked) <= 3
    reads = [count for _, count in ranked]
    assert reads == sorted(reads, reverse=True)
    for (tape_a, count_a), (tape_b, count_b) in zip(ranked, ranked[1:]):
        if count_a == count_b:
            assert tape_a < tape_b


def test_drive_busy_covers_observed_kinds(traced):
    _, tracer = traced
    summary = TraceSummary.from_tracer(tracer)
    assert 0 in summary.drive_busy
    kinds = summary.drive_busy[0]
    assert kinds.get("read", 0.0) > 0.0
    assert kinds.get("switch", 0.0) > 0.0


def test_empty_tracer_summarizes_to_zeroes():
    summary = TraceSummary.from_tracer(Tracer())
    assert summary.completed == 0
    assert summary.mean_response_s == 0.0
    assert summary.phase_means == {}
    assert summary.open_requests == 0
