"""Unit tests of the span model: marks, conservation, terminal rules."""

import pytest

from repro.obs import OUTCOMES, PHASES, MetricRegistry
from repro.obs.spans import DriveSpan, RequestTrace, TraceEvent


class TestRequestTrace:
    def make(self, arrival=100.0):
        return RequestTrace(request_id=1, block_id=7, arrival_s=arrival)

    def test_mark_starts_at_arrival(self):
        trace = self.make(arrival=42.0)
        trace.advance("queue", 50.0)
        assert trace.phases == {"queue": 8.0}
        assert trace.spans == [("queue", 42.0, 50.0)]

    def test_spans_tile_without_gaps(self):
        trace = self.make(arrival=0.0)
        trace.advance("queue", 10.0)
        trace.advance("sweep-wait", 25.0)
        trace.advance("locate", 30.0)
        trace.advance("read", 33.5)
        for (_, _, end), (_, start, _) in zip(trace.spans, trace.spans[1:]):
            assert end == start
        assert trace.phase_total() == pytest.approx(33.5)

    def test_zero_duration_advance_records_nothing(self):
        trace = self.make()
        trace.advance("queue", 100.0)
        assert trace.phases == {}
        assert trace.spans == []

    def test_advance_backwards_beyond_epsilon_raises(self):
        trace = self.make()
        trace.advance("queue", 200.0)
        with pytest.raises(ValueError, match="before mark"):
            trace.advance("read", 199.0)

    def test_advance_within_epsilon_clamps_to_mark(self):
        trace = self.make()
        trace.advance("queue", 200.0)
        trace.advance("locate", 200.0 - 1e-9)  # float drift, not an error
        trace.advance("read", 210.0)
        assert trace.phase_total() == pytest.approx(110.0)

    def test_wait_phase_transitions(self):
        trace = self.make()
        assert trace.wait_phase() == "queue"
        trace.scheduled = True
        assert trace.wait_phase() == "sweep-wait"
        trace.in_recovery = True
        assert trace.wait_phase() == "recovery"

    def test_finish_attributes_residual_to_wait_phase(self):
        trace = self.make(arrival=0.0)
        trace.scheduled = True
        trace.finish("complete", 40.0)
        assert trace.phases == {"sweep-wait": 40.0}
        assert trace.outcome == "complete"
        assert trace.response_s == pytest.approx(40.0)
        assert trace.is_terminal

    def test_double_terminal_raises(self):
        trace = self.make()
        trace.finish("shed", 100.0)
        with pytest.raises(RuntimeError, match="already terminal"):
            trace.finish("complete", 200.0)

    def test_unknown_outcome_raises(self):
        with pytest.raises(ValueError, match="unknown outcome"):
            self.make().finish("vanished", 100.0)

    def test_taxonomies_are_stable(self):
        assert PHASES == (
            "queue", "exchange", "sweep-wait", "locate", "read", "recovery"
        )
        assert OUTCOMES == ("complete", "shed", "expired", "failed")


class TestDriveSpanAndEvent:
    def test_drive_span_end(self):
        span = DriveSpan(drive=0, kind="read", start_s=10.0, duration_s=2.5)
        assert span.end_s == pytest.approx(12.5)

    def test_event_attrs_round_trip(self):
        event = TraceEvent(
            time_s=5.0, kind="failover", attrs=(("a", 1), ("b", "x"))
        )
        assert event.attr_dict() == {"a": 1, "b": "x"}


class TestMetricRegistry:
    def test_counters_and_gauges(self):
        registry = MetricRegistry()
        registry.inc("reads")
        registry.inc("reads", by=2)
        registry.set_gauge("pending", 7.0)
        assert registry.count("reads") == 3
        assert registry.count("absent") == 0
        assert registry.gauge("pending") == 7.0
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"reads": 3}
        assert snapshot["gauges"] == {"pending": 7.0}

    def test_iteration_is_sorted(self):
        registry = MetricRegistry()
        for name in ("zeta", "alpha", "mid"):
            registry.inc(name)
        assert [name for name, _ in registry.counters()] == [
            "alpha", "mid", "zeta"
        ]

    def test_merge_adds_counters_and_overwrites_gauges(self):
        left = MetricRegistry()
        left.inc("shared", 2)
        left.inc("left-only")
        left.set_gauge("level", 1.0)
        right = MetricRegistry()
        right.inc("shared", 3)
        right.inc("right-only")
        right.set_gauge("level", 9.0)
        merged = left.merge(right)
        assert merged is left  # chains
        assert left.count("shared") == 5
        assert left.count("left-only") == 1
        assert left.count("right-only") == 1
        assert left.gauge("level") == 9.0
        # The source registry is untouched.
        assert right.count("shared") == 3
