"""Exporter contracts: determinism, round-trips, Chrome schema."""

import json

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.faults import FaultConfig, RetryPolicy
from repro.obs import (
    JSONL_SCHEMA,
    Tracer,
    parse_jsonl,
    to_chrome_trace,
    trace_to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)

CONFIG = ExperimentConfig(
    tape_count=5,
    queue_length=15,
    horizon_s=30_000.0,
    seed=9,
    replicas=2,
    faults=FaultConfig(media_error_rate=0.05, retry=RetryPolicy()),
)


@pytest.fixture(scope="module")
def tracer():
    obs = Tracer()
    run_experiment(CONFIG, obs=obs)
    return obs


class TestJsonl:
    def test_identical_runs_export_identically(self):
        texts = []
        for _ in range(2):
            obs = Tracer()
            run_experiment(CONFIG, obs=obs)
            texts.append("\n".join(trace_to_jsonl(obs)))
        assert texts[0] == texts[1]

    def test_round_trip_preserves_populations(self, tracer):
        grouped = parse_jsonl(trace_to_jsonl(tracer))
        assert grouped["meta"][0]["schema"] == JSONL_SCHEMA
        assert len(grouped["request"]) == len(tracer.requests)
        assert len(grouped["op"]) == len(tracer.drive_spans)
        assert len(grouped["decision"]) == len(tracer.decisions)
        assert len(grouped["event"]) == len(tracer.events)
        assert len(grouped["counters"]) == 1

    def test_request_records_round_trip_phases(self, tracer):
        grouped = parse_jsonl(trace_to_jsonl(tracer))
        by_id = {record["request_id"]: record for record in grouped["request"]}
        for request_id, trace in tracer.requests.items():
            record = by_id[request_id]
            assert record["block_id"] == trace.block_id
            assert record["phases"] == pytest.approx(trace.phases)

    def test_write_jsonl_counts_lines(self, tracer, tmp_path):
        path = tmp_path / "trace.jsonl"
        count = write_jsonl(tracer, str(path))
        assert count == len(path.read_text().splitlines())
        parse_jsonl(path.read_text().splitlines())  # still valid from disk

    def test_bad_schema_is_rejected(self):
        lines = [json.dumps({"type": "meta", "schema": "something-else/9"})]
        with pytest.raises(ValueError, match="unsupported schema"):
            parse_jsonl(lines)

    def test_missing_required_key_is_rejected(self):
        lines = [
            json.dumps({"type": "meta", "schema": JSONL_SCHEMA}),
            json.dumps({"type": "op", "drive": 0, "kind": "read"}),
        ]
        with pytest.raises(ValueError, match="missing"):
            parse_jsonl(lines)

    def test_unknown_record_type_is_rejected(self):
        with pytest.raises(ValueError, match="unknown record type"):
            parse_jsonl([json.dumps({"type": "mystery"})])


class TestChromeTrace:
    def test_export_validates(self, tracer):
        payload = to_chrome_trace(tracer)
        counts = validate_chrome_trace(payload)
        assert counts.get("X", 0) == len(tracer.drive_spans)
        assert counts.get("b", 0) == counts.get("e", 0) > 0

    def test_max_requests_caps_async_slices(self, tracer):
        full = validate_chrome_trace(to_chrome_trace(tracer))
        capped_payload = to_chrome_trace(tracer, max_requests=3)
        capped = validate_chrome_trace(capped_payload)
        assert capped["b"] < full["b"]
        request_ids = {
            event["id"]
            for event in capped_payload["traceEvents"]
            if event["ph"] == "b"
        }
        assert len(request_ids) == 3

    def test_write_chrome_trace_is_loadable_json(self, tracer, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(tracer, str(path))
        payload = json.loads(path.read_text())
        validate_chrome_trace(payload)

    def test_unbalanced_async_is_rejected(self):
        payload = {
            "traceEvents": [
                {
                    "name": "queue", "ph": "b", "cat": "request",
                    "pid": 2, "tid": 1, "id": 1, "ts": 0.0,
                }
            ]
        }
        with pytest.raises(ValueError, match="unbalanced"):
            validate_chrome_trace(payload)

    def test_unknown_phase_is_rejected(self):
        payload = {
            "traceEvents": [
                {"name": "x", "ph": "Z", "pid": 1, "tid": 1, "ts": 0.0}
            ]
        }
        with pytest.raises(ValueError, match="unknown phase"):
            validate_chrome_trace(payload)
