"""Tracing invariants across the simulator matrix.

Three properties hold for every traced run:

* **Conservation** — each terminal request's phase durations sum
  exactly to its response time (the mark-based recorder tiles
  ``[arrival, end]`` by construction).
* **Reconciliation** — the trace-side mean response over completed
  post-warmup requests equals the metrics pipeline's
  ``mean_response_s`` (same population, independent bookkeeping).
* **Pay-for-what-you-use** — attaching a tracer does not perturb the
  simulation: the report digest matches the untraced run bit for bit,
  including against the pinned golden hashes.
"""

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.faults import FaultConfig, RetryPolicy
from repro.obs import Tracer, TraceSummary
from repro.qos import QoSConfig
from repro.service.metrics import report_digest

BASE = ExperimentConfig(
    tape_count=5, queue_length=20, horizon_s=40_000.0, seed=11
)

MATRIX = {
    "fifo": BASE.with_(scheduler="fifo"),
    "dynamic": BASE.with_(scheduler="dynamic-max-requests"),
    "envelope": BASE.with_(scheduler="envelope-max-requests"),
    "multidrive": BASE.with_(drive_count=2, capacity_mb=2000.0),
    "faults": BASE.with_(
        replicas=2,
        faults=FaultConfig(
            media_error_rate=0.05, bad_replica_rate=0.02, retry=RetryPolicy()
        ),
    ),
    "qos_open": BASE.with_(
        queue_length=None,
        mean_interarrival_s=120.0,
        qos=QoSConfig(
            deadline_s=4000.0,
            admission="bounded-queue",
            max_pending=10,
            starvation_age_s=6000.0,
        ),
    ),
}

TOLERANCE_S = 1e-5


def traced_run(config):
    tracer = Tracer()
    result = run_experiment(config, obs=tracer)
    return result, tracer


@pytest.mark.parametrize("name", sorted(MATRIX))
def test_phase_conservation(name):
    _, tracer = traced_run(MATRIX[name])
    terminal = list(tracer.terminal_traces())
    assert terminal, "run produced no terminal requests"
    for trace in terminal:
        assert trace.response_s is not None
        assert trace.phase_total() == pytest.approx(
            trace.response_s, abs=TOLERANCE_S
        ), (
            f"{name}: request {trace.request_id} ({trace.outcome}) leaks "
            f"time: phases {trace.phases} vs response {trace.response_s}"
        )


@pytest.mark.parametrize("name", sorted(MATRIX))
def test_summary_reconciles_with_metrics(name):
    result, tracer = traced_run(MATRIX[name])
    config = MATRIX[name]
    summary = TraceSummary.from_tracer(tracer, warmup_s=config.warmup_s)
    assert summary.completed == result.report.completed
    if summary.completed:
        assert summary.mean_response_s == pytest.approx(
            result.report.mean_response_s, abs=1e-9
        )
        assert summary.phase_mean_total() == pytest.approx(
            summary.mean_response_s, abs=TOLERANCE_S
        )


@pytest.mark.parametrize("name", sorted(MATRIX))
def test_tracer_does_not_perturb_the_run(name):
    config = MATRIX[name]
    untraced = report_digest(run_experiment(config).report)
    traced = report_digest(run_experiment(config, obs=Tracer()).report)
    assert traced == untraced, (
        f"{name}: attaching a tracer changed the simulation"
    )


def test_traced_run_matches_golden_pins():
    """Tracing must hold the bit-identical guard, not just self-equality."""
    from tests.test_golden_hashes import CASES, GOLDEN

    for name in ("fig4_fifo", "fig4_multidrive"):
        digest = report_digest(
            run_experiment(CASES[name], obs=Tracer()).report
        )
        assert digest == GOLDEN[name], f"{name} drifted under tracing"


def test_every_terminal_outcome_is_reachable():
    """The matrix exercises complete, shed, and expired outcomes; failed
    requests come from the fault case when all replicas go bad."""
    outcomes = set()
    for name in ("fifo", "faults", "qos_open"):
        _, tracer = traced_run(MATRIX[name])
        summary = TraceSummary.from_tracer(tracer)
        outcomes.update(summary.outcomes)
    assert "complete" in outcomes
    assert {"shed", "expired"} & outcomes, (
        f"QoS case produced neither shed nor expired: {outcomes}"
    )


def test_decision_log_matches_scheduler():
    _, tracer = traced_run(MATRIX["envelope"])
    assert tracer.decisions
    assert all(
        record.scheduler == "envelope-max-requests"
        for record in tracer.decisions
    )
    assert all(record.request_count >= 1 for record in tracer.decisions)


def test_forced_decisions_are_flagged():
    config = BASE.with_(
        scheduler="envelope-max-requests",
        queue_length=None,
        mean_interarrival_s=60.0,
        qos=QoSConfig(starvation_age_s=1500.0),
    )
    _, tracer = traced_run(config)
    summary = TraceSummary.from_tracer(tracer)
    assert summary.forced_decisions > 0, (
        "starvation guard never forced a promotion in an overloaded run"
    )
    assert summary.forced_decisions <= summary.decision_count
