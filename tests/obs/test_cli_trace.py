"""The ``trace`` CLI, campaign ``--trace-dir`` capture, and the tools."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

TOOLS_DIR = Path(__file__).resolve().parent.parent.parent / "tools"

TRACE_BASE = [
    "trace", "--tapes", "5", "--queue", "10", "--horizon", "20000",
    "--seed", "4",
]


class TestTraceCommand:
    def test_prints_summary_blocks(self, capsys):
        from repro.cli import main

        assert main(TRACE_BASE) == 0
        out = capsys.readouterr().out
        assert "where the time went" in out
        assert "= mean response" in out
        assert "reconciliation:" in out
        assert "outcomes" in out
        assert "scheduler decisions" in out

    def test_reconciliation_line_agrees_with_itself(self, capsys):
        from repro.cli import main

        assert main(TRACE_BASE) == 0
        out = capsys.readouterr().out
        line = next(
            l for l in out.splitlines() if l.startswith("reconciliation:")
        )
        # "... sum of phase means X s vs mean response Y s over N ..."
        pieces = line.split()
        sum_s = float(pieces[pieces.index("means") + 1])
        mean_s = float(pieces[pieces.index("response") + 1])
        assert sum_s == pytest.approx(mean_s, abs=1e-2)

    def test_writes_all_three_exports(self, capsys, tmp_path):
        from repro.cli import main
        from repro.obs import TraceSummary, parse_jsonl, validate_chrome_trace

        chrome = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        summary = tmp_path / "summary.json"
        assert main(
            TRACE_BASE
            + [
                "--out", str(chrome),
                "--jsonl", str(jsonl),
                "--summary-json", str(summary),
            ]
        ) == 0
        validate_chrome_trace(json.loads(chrome.read_text()))
        parse_jsonl(jsonl.read_text().splitlines())
        rebuilt = TraceSummary.from_dict(json.loads(summary.read_text()))
        assert rebuilt.completed > 0
        capsys.readouterr()

    def test_fault_knobs_produce_recovery_events(self, capsys):
        from repro.cli import main

        assert main(
            TRACE_BASE
            + ["--replicas", "2", "--media-error-rate", "0.2"]
        ) == 0
        out = capsys.readouterr().out
        assert "--- events ---" in out
        assert "retry" in out

    def test_qos_knobs_are_accepted(self, capsys):
        from repro.cli import main

        assert main(
            TRACE_BASE + ["--deadline", "3000", "--starvation-age", "5000"]
        ) == 0
        out = capsys.readouterr().out
        assert "reconciliation:" in out


class TestCampaignTraceDir:
    def test_run_captures_trace_per_executed_point(self, capsys, tmp_path):
        from repro.cli import main
        from repro.obs import validate_chrome_trace

        cache = tmp_path / "cache"
        traces = tmp_path / "traces"
        argv = [
            "run", "--tapes", "5", "--queue", "10", "--horizon", "20000",
            "--cache-dir", str(cache), "--trace-dir", str(traces),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        dumped = sorted(traces.glob("*.trace.json"))
        assert len(dumped) == 1
        validate_chrome_trace(json.loads(dumped[0].read_text()))
        summaries = sorted(traces.glob("*.summary.json"))
        assert len(summaries) == 1

        # A cache hit re-serves the result without re-running, so no new
        # trace appears (tracing only observes actual executions).
        before = {path.name for path in traces.iterdir()}
        assert main(argv) == 0
        capsys.readouterr()
        assert {path.name for path in traces.iterdir()} == before

    def test_traced_point_result_is_bit_identical(self, tmp_path):
        from repro.campaign import Campaign
        from repro.experiments import ExperimentConfig
        from repro.service.metrics import report_digest

        config = ExperimentConfig(
            tape_count=5, queue_length=10, horizon_s=20_000.0
        )
        plain = Campaign(jobs=1).submit([config]).require(config)
        traced = (
            Campaign(jobs=1, trace_dir=str(tmp_path / "traces"))
            .submit([config])
            .require(config)
        )
        assert report_digest(plain.report) == report_digest(traced.report)


def run_tool(script, *argv):
    return subprocess.run(
        [sys.executable, str(TOOLS_DIR / script), *argv],
        capture_output=True,
        text=True,
        timeout=120,
    )


class TestTraceDiffTool:
    @pytest.fixture()
    def summaries(self, tmp_path, capsys):
        from repro.cli import main

        paths = []
        for index, scheduler in enumerate(("fifo", "dynamic-max-requests")):
            path = tmp_path / f"{index}.summary.json"
            assert main(
                TRACE_BASE
                + ["--scheduler", scheduler, "--summary-json", str(path)]
            ) == 0
            capsys.readouterr()
            paths.append(str(path))
        return paths

    def test_diff_renders_phase_table(self, summaries):
        completed = run_tool("trace_diff.py", *summaries)
        assert completed.returncode == 0, completed.stderr
        assert "mean seconds per phase" in completed.stdout
        assert "= mean response" in completed.stdout
        assert "outcomes" in completed.stdout

    def test_threshold_gates_regressions(self, summaries):
        identical = run_tool(
            "trace_diff.py", summaries[0], summaries[0], "--threshold", "0.1"
        )
        assert identical.returncode == 0, identical.stderr
        assert "OK" in identical.stderr
        moved = run_tool(
            "trace_diff.py", summaries[0], summaries[1], "--threshold", "0.001"
        )
        assert moved.returncode == 1
        assert "FAIL" in moved.stderr


class TestCheckLinksTool:
    def test_repo_docs_are_clean(self):
        completed = run_tool("check_links.py")
        assert completed.returncode == 0, completed.stderr
        assert "0 broken links" in completed.stdout

    def test_detects_broken_target_and_anchor(self, tmp_path):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "check_links", TOOLS_DIR / "check_links.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)

        page = tmp_path / "page.md"
        page.write_text(
            "# Title\n\n[gone](missing.md) [bad](page.md#nope) "
            "[ok](page.md#title)\n"
        )
        problems = module.check_file(page, tmp_path, {})
        assert len(problems) == 2
        assert any("missing target" in p for p in problems)
        assert any("missing anchor" in p for p in problems)

    def test_github_slugging(self):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "check_links", TOOLS_DIR / "check_links.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)

        seen = {}
        assert module.github_slug("Tracing a run", seen) == "tracing-a-run"
        assert module.github_slug("`repro.obs` — API", seen) == "reproobs--api"
        assert module.github_slug("Tracing a run", seen) == "tracing-a-run-1"
