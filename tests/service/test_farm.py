"""Tests for jukebox farms."""

import pytest

from repro.experiments import ExperimentConfig
from repro.service.farm import FarmReport, run_farm

FAST = dict(horizon_s=20_000.0)


class TestFarmValidation:
    def test_jukebox_count_positive(self):
        with pytest.raises(ValueError):
            run_farm(ExperimentConfig(**FAST), 0, 60)

    def test_queue_covers_farm(self):
        with pytest.raises(ValueError):
            run_farm(ExperimentConfig(**FAST), 10, 5)

    def test_open_model_rejected(self):
        config = ExperimentConfig(
            queue_length=None, mean_interarrival_s=100.0, **FAST
        )
        with pytest.raises(ValueError, match="closed"):
            run_farm(config, 2, 60)


class TestFarmBehaviour:
    def test_single_jukebox_farm_equals_plain_run_shape(self):
        farm = run_farm(ExperimentConfig(**FAST), 1, 60)
        assert farm.size == 1
        assert farm.aggregate_throughput_kb_s == farm.throughput_per_jukebox_kb_s
        assert farm.per_jukebox[0].mean_queue_length == pytest.approx(60.0, abs=1e-6)

    def test_queue_split_with_remainder(self):
        farm = run_farm(ExperimentConfig(**FAST), 3, 61)
        queues = sorted(
            round(report.mean_queue_length) for report in farm.per_jukebox
        )
        assert queues == [20, 20, 21]

    def test_aggregate_scales_with_size(self):
        """Two jukeboxes at half the per-box load each outperform one at
        full load in aggregate (each box's queue is smaller, so per-box
        throughput dips, but not by half)."""
        one = run_farm(ExperimentConfig(**FAST), 1, 60)
        two = run_farm(ExperimentConfig(**FAST), 2, 60)
        assert two.aggregate_throughput_kb_s > one.aggregate_throughput_kb_s
        assert two.throughput_per_jukebox_kb_s < one.throughput_per_jukebox_kb_s

    def test_mean_response_weighted(self):
        farm = run_farm(ExperimentConfig(**FAST), 2, 60)
        delays = [report.mean_response_s for report in farm.per_jukebox]
        assert min(delays) <= farm.mean_response_s <= max(delays)

    def test_reproducible_but_streams_differ(self):
        first = run_farm(ExperimentConfig(**FAST), 2, 60)
        second = run_farm(ExperimentConfig(**FAST), 2, 60)
        assert (
            first.aggregate_throughput_kb_s == second.aggregate_throughput_kb_s
        )
        # The two jukeboxes see different request streams.
        reports = first.per_jukebox
        assert reports[0].mean_response_s != reports[1].mean_response_s

    def test_empty_report_mean(self):
        assert FarmReport(per_jukebox=[]).size == 0
        assert FarmReport(per_jukebox=[]).mean_response_s == 0.0
