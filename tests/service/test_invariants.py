"""Cross-cutting simulator invariants, property-tested across the whole
scheduler / layout / replication / skew parameter space."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import make_scheduler, scheduler_names
from repro.des import Environment
from repro.layout import Layout, PlacementSpec, build_catalog
from repro.service import JukeboxSimulator, MetricsCollector
from repro.tape import Jukebox
from repro.workload import ClosedSource, HotColdSkew

TAPES = 10
CAPACITY = 7 * 1024.0
BLOCK = 16.0


def run_instrumented(scheduler_name, layout, replicas, start_position, skew, seed,
                     queue_length=15, horizon=12_000.0):
    """Run a short simulation recording every physical read and completion."""
    spec = PlacementSpec(
        layout=layout,
        percent_hot=10,
        replicas=replicas,
        start_position=start_position,
        block_mb=BLOCK,
    )
    catalog = build_catalog(spec, TAPES, CAPACITY)
    jukebox = Jukebox.build(tape_count=TAPES)
    source = ClosedSource(
        queue_length, HotColdSkew(skew), catalog, random.Random(seed)
    )
    metrics = MetricsCollector(block_mb=BLOCK)
    simulator = JukeboxSimulator(
        env=Environment(),
        jukebox=jukebox,
        catalog=catalog,
        scheduler=make_scheduler(scheduler_name),
        source=source,
        metrics=metrics,
    )

    reads = []
    original_access = jukebox.access

    def recording_access(position_mb, size_mb):
        reads.append((jukebox.mounted_id, position_mb, size_mb))
        return original_access(position_mb, size_mb)

    jukebox.access = recording_access

    completions = []
    original_completion = metrics.on_completion

    def recording_completion(request, now, **kwargs):
        completions.append((request, now))
        original_completion(request, now, **kwargs)

    metrics.on_completion = recording_completion

    report = simulator.run(horizon)
    return catalog, simulator, report, reads, completions


SCHEDULERS = st.sampled_from(sorted(scheduler_names()))


@settings(max_examples=20, deadline=None)
@given(
    scheduler_name=SCHEDULERS,
    layout=st.sampled_from([Layout.HORIZONTAL, Layout.VERTICAL]),
    replicas=st.sampled_from([0, 2, 9]),
    start_position=st.sampled_from([0.0, 1.0]),
    skew=st.sampled_from([20.0, 60.0]),
    seed=st.integers(min_value=0, max_value=999),
)
def test_simulation_invariants(scheduler_name, layout, replicas, start_position, skew, seed):
    catalog, simulator, report, reads, completions = run_instrumented(
        scheduler_name, layout, replicas, start_position, skew, seed
    )

    # 1. Every physical read hits a real replica extent of some block.
    for tape_id, position, size in reads:
        assert size == BLOCK
        contents = dict(catalog.tape_contents(tape_id))
        assert position in contents, (
            f"{scheduler_name} read {position} on tape {tape_id}, "
            "which holds no block there"
        )

    # 2. No request completes twice; completions are time-ordered.
    seen_ids = [request.request_id for request, _now in completions]
    assert len(seen_ids) == len(set(seen_ids))
    times = [now for _request, now in completions]
    assert times == sorted(times)

    # 3. Responses are non-negative and block ids valid.
    for request, now in completions:
        assert request.completion_s == now
        assert request.response_s >= 0
        assert 0 <= request.block_id < catalog.n_blocks

    # 4. Closed-queue conservation: outstanding stays at queue length.
    assert report.mean_queue_length == pytest.approx(15.0, abs=1e-6)
    assert report.arrivals == report.total_completed + 15

    # 5. Pending + in-service account for every outstanding request.
    outstanding = len(simulator.context.pending)
    if simulator.context.service is not None:
        for entry in simulator.context.service.remaining():
            outstanding += len(entry.requests)
        if simulator.context.service.in_flight is not None:
            outstanding += len(simulator.context.service.in_flight.requests)
    assert outstanding == 15

    # 6. Progress: something completed within the horizon.
    assert report.total_completed > 0


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=99))
def test_completed_request_was_served_from_replica_of_its_block(seed):
    """Stronger fidelity check for the envelope scheduler: the read that
    completes a request must be at a replica position of that block."""
    catalog, simulator, report, reads, completions = run_instrumented(
        "envelope-max-bandwidth", Layout.VERTICAL, 9, 1.0, 60.0, seed
    )
    read_extents = set()
    for tape_id, position, _size in reads:
        read_extents.add((tape_id, position))
    for request, _now in completions:
        replicas = {
            (replica.tape_id, replica.position_mb)
            for replica in catalog.replicas_of(request.block_id)
        }
        assert replicas & read_extents, (
            f"request for block {request.block_id} completed but no replica "
            "of it was ever read"
        )
