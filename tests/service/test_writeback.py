"""Tests for delta-file write-back (piggybacked and idle-time writes)."""

import random

import pytest

from repro.core import make_scheduler
from repro.des import Environment
from repro.layout import Layout, PlacementSpec, build_catalog
from repro.service import MetricsCollector
from repro.service.writeback import DeltaBuffer, WritebackSimulator
from repro.tape import Jukebox
from repro.workload import ClosedSource, HotColdSkew, OpenSource

BLOCK = 16.0
CAPACITY = 7 * 1024.0


@pytest.fixture
def catalog():
    return build_catalog(PlacementSpec(percent_hot=10, block_mb=BLOCK), 10, CAPACITY)


@pytest.fixture
def replicated_catalog():
    spec = PlacementSpec(
        layout=Layout.VERTICAL, percent_hot=10, replicas=9,
        start_position=1.0, block_mb=BLOCK,
    )
    return build_catalog(spec, 10, CAPACITY)


def make_writeback(catalog, queue_length=None, interarrival=None,
                   write_interarrival=None, piggyback=True, idle_flush=True,
                   seed=5):
    skew = HotColdSkew(40.0)
    rng = random.Random(seed)
    if queue_length is not None:
        source = ClosedSource(queue_length, skew, catalog, rng)
    else:
        source = OpenSource(interarrival, skew, catalog, rng)
    return WritebackSimulator(
        env=Environment(),
        jukebox=Jukebox.build(),
        catalog=catalog,
        scheduler=make_scheduler("dynamic-max-bandwidth"),
        source=source,
        metrics=MetricsCollector(block_mb=BLOCK),
        write_interarrival_s=write_interarrival,
        write_rng=random.Random(seed + 1) if write_interarrival else None,
        piggyback=piggyback,
        idle_flush=idle_flush,
    )


class TestDeltaBuffer:
    def test_stage_expands_to_all_replicas(self, replicated_catalog):
        buffer = DeltaBuffer(catalog=replicated_catalog)
        hot_block = 0
        copies = buffer.stage(hot_block, now=0.0)
        assert copies == 10
        assert len(buffer) == 10

    def test_restaging_coalesces(self, catalog):
        buffer = DeltaBuffer(catalog=catalog)
        buffer.stage(5, now=0.0)
        buffer.stage(5, now=10.0)
        assert len(buffer) == 1
        assert buffer.staged_total == 2

    def test_items_for_tape_sorted(self, catalog):
        buffer = DeltaBuffer(catalog=catalog)
        for block_id in range(40):
            buffer.stage(block_id, now=0.0)
        for tape_id in range(10):
            items = buffer.items_for_tape(tape_id)
            positions = [item.position_mb for item in items]
            assert positions == sorted(positions)

    def test_complete_records_latency(self, catalog):
        buffer = DeltaBuffer(catalog=catalog)
        buffer.stage(1, now=100.0)
        item = buffer.items_for_tape(
            catalog.replicas_of(1)[0].tape_id
        )[0]
        buffer.complete(item, now=250.0)
        assert len(buffer) == 0
        assert buffer.written_total == 1
        assert buffer.write_latency.mean == pytest.approx(150.0)

    def test_backlog_by_tape(self, catalog):
        buffer = DeltaBuffer(catalog=catalog)
        buffer.stage(0, now=0.0)
        tape_id = catalog.replicas_of(0)[0].tape_id
        assert buffer.backlog_by_tape() == {tape_id: 1}


class TestWritebackSimulation:
    def test_requires_rng_with_write_stream(self, catalog):
        with pytest.raises(ValueError):
            WritebackSimulator(
                env=Environment(),
                jukebox=Jukebox.build(),
                catalog=catalog,
                scheduler=make_scheduler("dynamic-max-bandwidth"),
                source=ClosedSource(10, HotColdSkew(40.0), catalog, random.Random(1)),
                metrics=MetricsCollector(block_mb=BLOCK),
                write_interarrival_s=100.0,
            )

    def test_piggybacked_writes_harden(self, catalog):
        simulator = make_writeback(
            catalog, queue_length=40, write_interarrival=120.0
        )
        simulator.run(40_000.0)
        assert simulator.delta.written_total > 50
        assert simulator.piggybacked_writes > 0
        assert simulator.delta.write_latency.mean > 0

    def test_idle_flush_in_open_model(self, catalog):
        """A lightly loaded open system hardens writes during idle time."""
        simulator = make_writeback(
            catalog, interarrival=2_000.0, write_interarrival=150.0
        )
        simulator.run(40_000.0)
        assert simulator.idle_flush_sweeps > 0
        assert simulator.delta.written_total > 0
        # Backlog stays bounded: the buffer does not grow with the run.
        assert len(simulator.delta) < 60

    def test_no_idle_flush_when_disabled(self, catalog):
        simulator = make_writeback(
            catalog, interarrival=2_000.0, write_interarrival=150.0,
            idle_flush=False,
        )
        simulator.run(30_000.0)
        assert simulator.idle_flush_sweeps == 0

    def test_piggyback_disabled_defers_to_idle(self, catalog):
        simulator = make_writeback(
            catalog, interarrival=2_000.0, write_interarrival=150.0,
            piggyback=False,
        )
        simulator.run(30_000.0)
        assert simulator.piggybacked_writes == 0
        assert simulator.delta.written_total > 0  # idle flush did the work

    def test_reads_unharmed_by_moderate_writes(self, catalog):
        """Piggybacking rides existing positioning: read throughput drops
        only modestly under a moderate write load."""
        without = make_writeback(catalog, queue_length=60)
        base = without.run(60_000.0)
        with_writes = make_writeback(
            catalog, queue_length=60, write_interarrival=300.0
        )
        loaded = with_writes.run(60_000.0)
        assert loaded.throughput_kb_s > 0.85 * base.throughput_kb_s

    def test_replicated_writes_update_every_copy(self, replicated_catalog):
        simulator = make_writeback(
            replicated_catalog, queue_length=40, write_interarrival=400.0
        )
        simulator.run(60_000.0)
        # Every staged hot write expands to 10 copies; completions must be
        # a multiple of the per-copy accounting, with nothing lost.
        assert simulator.delta.written_total > 0
        assert (
            simulator.delta.written_total + len(simulator.delta)
            >= simulator.delta.staged_total
        )

    def test_closed_read_metrics_still_conserved(self, catalog):
        simulator = make_writeback(
            catalog, queue_length=30, write_interarrival=200.0
        )
        report = simulator.run(30_000.0)
        assert report.mean_queue_length == pytest.approx(30.0, abs=1e-6)
        assert report.arrivals == report.total_completed + 30
