"""Tests for the multi-drive jukebox extension."""

import random

import pytest

from repro.core import DynamicScheduler, MaxBandwidth, make_scheduler
from repro.des import Environment, Resource
from repro.layout import Layout, PlacementSpec, build_catalog
from repro.service import MetricsCollector
from repro.service.multidrive import MultiDriveSimulator
from repro.workload import ClosedSource, HotColdSkew

CAPACITY = 7 * 1024.0
BLOCK = 16.0


def make_multidrive(drive_count, scheduler="dynamic-max-bandwidth", queue_length=40,
                    seed=3, replicas=0, tape_count=10):
    spec = PlacementSpec(
        layout=Layout.HORIZONTAL,
        percent_hot=10,
        replicas=replicas,
        start_position=0.0,
        block_mb=BLOCK,
    )
    catalog = build_catalog(spec, tape_count, CAPACITY)
    source = ClosedSource(
        queue_length, HotColdSkew(40.0), catalog, random.Random(seed)
    )
    return MultiDriveSimulator(
        env=Environment(),
        catalog=catalog,
        source=source,
        metrics=MetricsCollector(block_mb=BLOCK),
        scheduler_factory=lambda: make_scheduler(scheduler),
        drive_count=drive_count,
        tape_count=tape_count,
    )


class TestResource:
    def test_acquire_release(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        first = resource.acquire()
        assert first.triggered
        second = resource.acquire()
        assert not second.triggered
        assert resource.waiting == 1
        resource.release()
        assert second.triggered
        resource.release()
        assert resource.in_use == 0

    def test_release_without_acquire(self):
        env = Environment()
        resource = Resource(env)
        with pytest.raises(RuntimeError):
            resource.release()

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Resource(Environment(), capacity=0)

    def test_serializes_processes(self):
        env = Environment()
        resource = Resource(env)
        intervals = []

        def worker(env, tag):
            grant = resource.acquire()
            yield grant
            start = env.now
            yield env.timeout(10.0)
            resource.release()
            intervals.append((tag, start, env.now))

        for tag in range(3):
            env.process(worker(env, tag))
        env.run()
        # Non-overlapping 10 s slots, back to back.
        intervals.sort(key=lambda item: item[1])
        assert [(start, end) for _tag, start, end in intervals] == [
            (0.0, 10.0),
            (10.0, 20.0),
            (20.0, 30.0),
        ]


class TestConstruction:
    def test_drive_count_validation(self):
        with pytest.raises(ValueError):
            make_multidrive(0)
        with pytest.raises(ValueError):
            make_multidrive(11)  # more drives than tapes

    def test_envelope_rejected(self):
        spec = PlacementSpec(percent_hot=10, block_mb=BLOCK)
        catalog = build_catalog(spec, 10, CAPACITY)
        source = ClosedSource(10, HotColdSkew(40.0), catalog, random.Random(1))
        with pytest.raises(ValueError, match="single-drive"):
            MultiDriveSimulator(
                env=Environment(),
                catalog=catalog,
                source=source,
                metrics=MetricsCollector(block_mb=BLOCK),
                scheduler_factory=lambda: make_scheduler("envelope-max-bandwidth"),
                drive_count=2,
            )


class TestMultiDriveBehaviour:
    def test_single_drive_baseline_runs(self):
        report = make_multidrive(1).run(30_000.0)
        assert report.total_completed > 100

    def test_two_drives_beat_one(self):
        one = make_multidrive(1).run(30_000.0)
        two = make_multidrive(2).run(30_000.0)
        assert two.throughput_kb_s > 1.3 * one.throughput_kb_s

    def test_four_drive_scaling(self):
        """Four drives beat two; gains can exceed 4x the single-drive
        figure at equal total queue, because four concurrently mounted
        tapes absorb far more arrivals into in-progress sweeps (observed
        switch rate collapses) — an emergent economy, bounded here at 5x
        as a sanity cap."""
        one = make_multidrive(1).run(30_000.0)
        two = make_multidrive(2).run(30_000.0)
        four = make_multidrive(4).run(30_000.0)
        assert four.throughput_kb_s > two.throughput_kb_s
        assert four.throughput_kb_s < 5.0 * one.throughput_kb_s

    def test_no_tape_mounted_twice(self):
        simulator = make_multidrive(3, queue_length=30)
        mounted_sets = []
        original_timed = simulator._timed

        def spying_timed(duration):
            mounted = [
                drive.mounted_id
                for drive in simulator.drives
                if drive.mounted_id is not None
            ]
            mounted_sets.append(tuple(mounted))
            return original_timed(duration)

        simulator._timed = spying_timed
        simulator.run(20_000.0)
        for mounted in mounted_sets:
            assert len(mounted) == len(set(mounted)), mounted

    def test_closed_queue_conserved_across_drives(self):
        report = make_multidrive(3, queue_length=24).run(20_000.0)
        assert report.mean_queue_length == pytest.approx(24.0, abs=1e-6)
        assert report.arrivals == report.total_completed + 24

    def test_deterministic(self):
        first = make_multidrive(2, seed=11).run(20_000.0)
        second = make_multidrive(2, seed=11).run(20_000.0)
        assert first.throughput_kb_s == second.throughput_kb_s

    def test_all_supported_schedulers_run(self):
        for name in ("fifo", "static-max-requests", "dynamic-max-bandwidth",
                     "dynamic-round-robin"):
            report = make_multidrive(2, scheduler=name, queue_length=12).run(10_000.0)
            assert report.total_completed > 0, name

    def test_replicated_layout_runs(self):
        report = make_multidrive(2, replicas=5, queue_length=30).run(20_000.0)
        assert report.total_completed > 100
