"""Unit tests for the metrics collector."""

import pytest

from repro.service import MetricsCollector
from repro.workload import Request


def make_request(request_id=0, block_id=0, arrival_s=0.0):
    return Request(request_id=request_id, block_id=block_id, arrival_s=arrival_s)


class TestMetricsCollector:
    def test_requires_finalize(self):
        metrics = MetricsCollector(block_mb=16.0)
        with pytest.raises(RuntimeError):
            metrics.report()

    def test_negative_warmup_rejected(self):
        with pytest.raises(ValueError):
            MetricsCollector(block_mb=16.0, warmup_s=-1.0)

    def test_throughput_accounting(self):
        metrics = MetricsCollector(block_mb=16.0, warmup_s=0.0)
        requests = [
            make_request(request_id=index, arrival_s=index * 10.0)
            for index in range(10)
        ]
        for request in requests:  # arrivals first (time-ordered hooks)
            metrics.on_arrival(request, request.arrival_s)
        for request in requests:
            metrics.on_completion(request, request.arrival_s + 100.0)
        metrics.finalize(1000.0)
        report = metrics.report()
        assert report.completed == 10
        expected_kb = 10 * 16 * 1024  # ten 16 MB blocks in KB
        assert report.throughput_kb_s == pytest.approx(expected_kb / 1000.0)
        assert report.requests_per_min == pytest.approx(10 / (1000 / 60))
        assert report.mean_response_s == pytest.approx(100.0)

    def test_warmup_drops_early_completions(self):
        metrics = MetricsCollector(block_mb=16.0, warmup_s=100.0)
        early = make_request(request_id=0, arrival_s=0.0)
        late = make_request(request_id=1, arrival_s=150.0)
        metrics.on_arrival(early, 0.0)
        metrics.on_completion(early, 50.0)   # before warm-up: dropped
        metrics.on_arrival(late, 150.0)
        metrics.on_completion(late, 250.0)   # after: kept
        metrics.finalize(1100.0)
        report = metrics.report()
        assert report.completed == 1
        assert report.total_completed == 2
        assert report.mean_response_s == pytest.approx(100.0)
        # Measured window excludes the warm-up.
        assert report.measured_s == pytest.approx(1000.0)

    def test_tape_switches_counted_after_warmup(self):
        metrics = MetricsCollector(block_mb=16.0, warmup_s=100.0)
        metrics.on_tape_switch(50.0)
        metrics.on_tape_switch(150.0)
        metrics.on_tape_switch(151.0)
        metrics.finalize(3700.0)
        assert metrics.report().tape_switches == 2

    def test_queue_length_time_weighted(self):
        metrics = MetricsCollector(block_mb=16.0)
        first = make_request(request_id=0)
        second = make_request(request_id=1)
        metrics.on_arrival(first, 0.0)    # queue 1
        metrics.on_arrival(second, 10.0)  # queue 2
        metrics.on_completion(first, 20.0)  # queue 1
        metrics.finalize(40.0)
        report = metrics.report()
        expected = (1 * 10 + 2 * 10 + 1 * 20) / 40
        assert report.mean_queue_length == pytest.approx(expected)

    def test_busy_fraction_clipped_to_warmup(self):
        metrics = MetricsCollector(block_mb=16.0, warmup_s=100.0)
        metrics.on_drive_busy(0.0, 50.0)     # fully inside warm-up: ignored
        metrics.on_drive_busy(90.0, 20.0)    # 10 s overlap counted
        metrics.on_drive_busy(200.0, 100.0)  # fully counted
        metrics.finalize(1100.0)
        report = metrics.report()
        assert report.drive_busy_fraction == pytest.approx((10 + 100) / 1000.0)

    def test_completion_stamps_request(self):
        metrics = MetricsCollector(block_mb=16.0)
        request = make_request(arrival_s=5.0)
        metrics.on_arrival(request, 5.0)
        metrics.on_completion(request, 42.0)
        assert request.completion_s == 42.0
        assert request.response_s == 37.0

    def test_p95_reported(self):
        metrics = MetricsCollector(block_mb=16.0)
        requests = [make_request(request_id=index, arrival_s=0.0) for index in range(100)]
        for request in requests:
            metrics.on_arrival(request, 0.0)
        for index, request in enumerate(requests):
            metrics.on_completion(request, float(index + 1))
        metrics.finalize(1000.0)
        report = metrics.report()
        assert report.p95_response_s == pytest.approx(95, abs=11)
        assert report.max_response_s == 100.0


class TestWaitingBreakdown:
    def test_waiting_recorded_with_service_duration(self):
        metrics = MetricsCollector(block_mb=16.0)
        request = make_request(arrival_s=0.0)
        metrics.on_arrival(request, 0.0)
        metrics.on_completion(request, 100.0, service_s=30.0)
        metrics.finalize(1000.0)
        report = metrics.report()
        assert report.mean_waiting_s == pytest.approx(70.0)

    def test_waiting_clamped_non_negative(self):
        metrics = MetricsCollector(block_mb=16.0)
        request = make_request(arrival_s=0.0)
        metrics.on_arrival(request, 0.0)
        # A coalesced request can complete faster than the full read.
        metrics.on_completion(request, 10.0, service_s=30.0)
        metrics.finalize(100.0)
        assert metrics.report().mean_waiting_s == 0.0

    def test_waiting_default_zero_without_durations(self):
        metrics = MetricsCollector(block_mb=16.0)
        request = make_request(arrival_s=0.0)
        metrics.on_arrival(request, 0.0)
        metrics.on_completion(request, 50.0)
        metrics.finalize(100.0)
        assert metrics.report().mean_waiting_s == 0.0

    def test_simulator_populates_waiting(self):
        from repro.experiments import ExperimentConfig, run_experiment

        report = run_experiment(
            ExperimentConfig(queue_length=20, horizon_s=10_000.0)
        ).report
        assert 0.0 < report.mean_waiting_s < report.mean_response_s


class TestDegradedReports:
    def test_zero_completions_report_is_finite(self):
        """A run that served nothing still yields a NaN-free report."""
        import dataclasses
        import math

        metrics = MetricsCollector(block_mb=16.0)
        metrics.finalize(0.0)
        report = metrics.report()
        for name, value in dataclasses.asdict(report).items():
            if isinstance(value, float):
                assert math.isfinite(value), name
        assert report.completed == 0
        assert report.mean_response_s == 0.0
        assert report.served_fraction == 1.0

    def test_all_failed_report_is_finite(self):
        """Every request failing drives served_fraction to zero, not NaN."""
        metrics = MetricsCollector(block_mb=16.0)
        requests = [make_request(request_id=i) for i in range(3)]
        for request in requests:
            metrics.on_arrival(request, 0.0)
        for request in requests:
            metrics.on_request_failed(request, 10.0)
        metrics.finalize(100.0)
        report = metrics.report()
        assert report.failed_requests == 3
        assert report.served_fraction == 0.0
        assert report.throughput_kb_s == 0.0

    def test_fault_hooks_accumulate(self):
        metrics = MetricsCollector(block_mb=16.0)
        metrics.on_fault("media-error", 1.0)
        metrics.on_fault("media-error", 2.0)
        metrics.on_fault("bad-block", 3.0)
        metrics.on_retry(1.5)
        metrics.on_failover(4, 3.5)
        metrics.on_drive_failure(5.0)
        metrics.on_drive_repair(5.0, 120.0)
        metrics.finalize(100.0)
        report = metrics.report()
        assert report.fault_counts == {"media-error": 2, "bad-block": 1}
        assert report.retries == 1
        assert report.failovers == 4
        assert report.drive_failures == 1
        assert report.mean_repair_s == pytest.approx(120.0)

    def test_failed_requests_respect_warmup(self):
        metrics = MetricsCollector(block_mb=16.0, warmup_s=50.0)
        early = make_request(request_id=0)
        late = make_request(request_id=1)
        metrics.on_arrival(early, 0.0)
        metrics.on_arrival(late, 0.0)
        metrics.on_request_failed(early, 10.0)  # inside warm-up
        metrics.on_request_failed(late, 60.0)
        metrics.finalize(100.0)
        assert metrics.report().failed_requests == 1


class TestSaturationGuard:
    """Zero completions after warm-up must yield a finite, flagged report."""

    def test_arrivals_but_no_completions_is_saturated(self):
        metrics = MetricsCollector(block_mb=16.0, warmup_s=10.0)
        for index in range(5):
            metrics.on_arrival(make_request(request_id=index), 0.0)
        metrics.finalize(100.0)
        report = metrics.report()
        assert report.saturated
        assert report.completed == 0
        # Every derived figure is finite (0.0), never NaN or a crash.
        for value in (
            report.throughput_kb_s, report.requests_per_min,
            report.mean_response_s, report.p50_response_s,
            report.p95_response_s, report.p99_response_s,
            report.mean_queue_length, report.deadline_miss_rate,
        ):
            assert value == value  # not NaN
            assert value >= 0.0

    def test_warmup_only_completions_still_saturated(self):
        # Work completed, but all of it inside the warm-up window.
        metrics = MetricsCollector(block_mb=16.0, warmup_s=50.0)
        request = make_request()
        metrics.on_arrival(request, 0.0)
        metrics.on_completion(request, 10.0)
        metrics.finalize(100.0)
        report = metrics.report()
        assert report.saturated
        assert report.completed == 0
        assert report.total_completed == 1

    def test_empty_run_is_not_saturated(self):
        metrics = MetricsCollector(block_mb=16.0)
        metrics.finalize(100.0)
        assert not metrics.report().saturated

    def test_healthy_run_is_not_saturated(self):
        metrics = MetricsCollector(block_mb=16.0)
        request = make_request()
        metrics.on_arrival(request, 0.0)
        metrics.on_completion(request, 10.0)
        metrics.finalize(100.0)
        assert not metrics.report().saturated

    def test_degenerate_window_is_not_saturated(self):
        # Horizon entirely inside warm-up: measured_s == 0, nothing to flag.
        metrics = MetricsCollector(block_mb=16.0, warmup_s=100.0)
        metrics.on_arrival(make_request(), 0.0)
        metrics.finalize(50.0)
        report = metrics.report()
        assert not report.saturated
        assert report.measured_s == 0.0


class TestQoSHooks:
    def test_shed_and_expired_accumulate_with_reasons(self):
        metrics = MetricsCollector(block_mb=16.0, warmup_s=10.0)
        requests = [make_request(request_id=index) for index in range(4)]
        for request in requests:
            metrics.on_arrival(request, 20.0)
        metrics.on_shed(requests[0], 20.0, reason="queue-full")
        metrics.on_shed(requests[1], 21.0, reason="degraded")
        metrics.on_expired(requests[2], 25.0)
        metrics.on_forced_promotion(3, 30.0)
        metrics.on_breaker_trip(31.0)
        metrics.finalize(100.0)
        report = metrics.report()
        assert report.shed_requests == 2
        assert report.shed_by_reason == {"queue-full": 1, "degraded": 1}
        assert report.expired_requests == 1
        assert report.forced_promotions == 3
        assert report.breaker_trips == 1
        assert metrics.outstanding == 1  # requests[3] still in flight

    def test_shed_inside_warmup_not_reported(self):
        metrics = MetricsCollector(block_mb=16.0, warmup_s=50.0)
        request = make_request()
        metrics.on_arrival(request, 0.0)
        metrics.on_shed(request, 1.0)
        metrics.finalize(100.0)
        report = metrics.report()
        assert report.shed_requests == 0
        assert metrics.total_shed == 1

    def test_late_completion_counts_as_deadline_miss(self):
        metrics = MetricsCollector(block_mb=16.0)
        on_time = make_request(request_id=0)
        on_time.deadline_s = 50.0
        late = make_request(request_id=1)
        late.deadline_s = 5.0
        for request in (on_time, late):
            metrics.on_arrival(request, 0.0)
        metrics.on_completion(on_time, 40.0)
        metrics.on_completion(late, 40.0)
        metrics.finalize(100.0)
        report = metrics.report()
        assert report.deadline_misses == 1
        assert report.deadline_miss_rate == pytest.approx(0.5)

    def test_percentiles_ordered(self):
        metrics = MetricsCollector(block_mb=16.0)
        requests = [make_request(request_id=index) for index in range(100)]
        for request in requests:  # arrivals first (time-ordered hooks)
            metrics.on_arrival(request, 0.0)
        for index, request in enumerate(requests):
            metrics.on_completion(request, float(index + 1))
        metrics.finalize(200.0)
        report = metrics.report()
        assert 0.0 < report.p50_response_s <= report.p95_response_s
        assert report.p95_response_s <= report.p99_response_s
        assert report.p99_response_s <= report.max_response_s
