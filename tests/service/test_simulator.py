"""Integration tests for the service-model simulator."""

import random

import pytest

from repro.core import make_scheduler
from repro.des import Environment
from repro.layout import Layout, PlacementSpec, build_catalog
from repro.service import JukeboxSimulator, MetricsCollector
from repro.tape import Jukebox
from repro.workload import ClosedSource, HotColdSkew, OpenSource


def make_simulator(
    scheduler_name="dynamic-max-bandwidth",
    queue_length=20,
    interarrival=None,
    replicas=0,
    layout=Layout.HORIZONTAL,
    start_position=0.0,
    seed=1,
    warmup_s=0.0,
    tape_count=10,
):
    spec = PlacementSpec(
        layout=layout,
        percent_hot=10,
        replicas=replicas,
        start_position=start_position,
        block_mb=16.0,
    )
    catalog = build_catalog(spec, tape_count, 7 * 1024)
    jukebox = Jukebox.build(tape_count=tape_count)
    rng = random.Random(seed)
    skew = HotColdSkew(40.0)
    if interarrival is None:
        source = ClosedSource(queue_length, skew, catalog, rng)
    else:
        source = OpenSource(interarrival, skew, catalog, rng)
    return JukeboxSimulator(
        env=Environment(),
        jukebox=jukebox,
        catalog=catalog,
        scheduler=make_scheduler(scheduler_name),
        source=source,
        metrics=MetricsCollector(block_mb=16.0, warmup_s=warmup_s),
    )


HORIZON = 30_000.0


class TestClosedModel:
    def test_completes_requests(self):
        simulator = make_simulator()
        report = simulator.run(HORIZON)
        assert report.completed > 50
        assert report.throughput_kb_s > 0

    def test_queue_length_is_conserved(self):
        """Closed queueing: outstanding requests stay exactly at Q."""
        simulator = make_simulator(queue_length=30)
        report = simulator.run(HORIZON)
        assert report.mean_queue_length == pytest.approx(30.0, abs=1e-6)
        assert report.arrivals == report.total_completed + 30

    def test_all_schedulers_run(self):
        from repro.core import scheduler_names

        for name in scheduler_names():
            simulator = make_simulator(scheduler_name=name, queue_length=10)
            report = simulator.run(8000.0)
            assert report.total_completed > 0, name

    def test_deterministic_with_seed(self):
        first = make_simulator(seed=99).run(HORIZON)
        second = make_simulator(seed=99).run(HORIZON)
        assert first.throughput_kb_s == second.throughput_kb_s
        assert first.mean_response_s == second.mean_response_s
        assert first.tape_switches == second.tape_switches

    def test_different_seeds_differ(self):
        first = make_simulator(seed=1).run(HORIZON)
        second = make_simulator(seed=2).run(HORIZON)
        assert first.mean_response_s != second.mean_response_s

    def test_dynamic_absorbs_arrivals(self):
        simulator = make_simulator(scheduler_name="dynamic-max-bandwidth")
        simulator.run(HORIZON)
        assert simulator.absorbed_arrivals > 0

    def test_static_never_absorbs(self):
        simulator = make_simulator(scheduler_name="static-max-bandwidth")
        simulator.run(HORIZON)
        assert simulator.absorbed_arrivals == 0

    def test_clock_and_busy_time_consistent(self):
        simulator = make_simulator()
        report = simulator.run(HORIZON)
        assert 0.0 < report.drive_busy_fraction <= 1.0 + 1e-9

    def test_start_twice_rejected(self):
        simulator = make_simulator()
        simulator.start(1000.0)
        with pytest.raises(RuntimeError):
            simulator.start(1000.0)

    def test_every_completed_request_was_requested_block(self):
        simulator = make_simulator(queue_length=5)
        completions = []
        original = simulator.metrics.on_completion

        def spy(request, now, **kwargs):
            completions.append(request)
            original(request, now, **kwargs)

        simulator.metrics.on_completion = spy
        simulator.run(10_000.0)
        catalog = simulator.context.catalog
        for request in completions:
            assert 0 <= request.block_id < catalog.n_blocks
            assert request.completion_s >= request.arrival_s


class TestOpenModel:
    def test_open_system_completes_arrivals(self):
        simulator = make_simulator(interarrival=300.0)
        report = simulator.run(60_000.0)
        assert report.total_completed > 100
        # Under-loaded: nearly everything that arrived completes.
        assert report.total_completed >= report.arrivals - 25

    def test_overloaded_open_system_builds_queue(self):
        simulator = make_simulator(interarrival=20.0)  # far above capacity
        report = simulator.run(60_000.0)
        assert report.arrivals > report.total_completed + 50

    def test_open_throughput_tracks_arrival_rate_when_underloaded(self):
        simulator = make_simulator(interarrival=300.0, warmup_s=10_000.0)
        report = simulator.run(120_000.0)
        arrival_rate_per_min = 60.0 / 300.0
        assert report.requests_per_min == pytest.approx(arrival_rate_per_min, rel=0.2)


class TestReplicationIntegration:
    def test_full_replication_reduces_switches(self):
        base = make_simulator(
            scheduler_name="dynamic-max-bandwidth", queue_length=60
        ).run(60_000.0)
        replicated = make_simulator(
            scheduler_name="dynamic-max-bandwidth",
            queue_length=60,
            replicas=9,
            layout=Layout.VERTICAL,
            start_position=1.0,
        ).run(60_000.0)
        assert replicated.tape_switches < base.tape_switches

    def test_envelope_with_replication_beats_dynamic(self):
        dynamic = make_simulator(
            scheduler_name="dynamic-max-bandwidth",
            queue_length=60,
            replicas=9,
            layout=Layout.VERTICAL,
            start_position=1.0,
        ).run(60_000.0)
        envelope = make_simulator(
            scheduler_name="envelope-max-bandwidth",
            queue_length=60,
            replicas=9,
            layout=Layout.VERTICAL,
            start_position=1.0,
        ).run(60_000.0)
        assert envelope.throughput_kb_s > dynamic.throughput_kb_s

    def test_fifo_is_worst(self):
        fifo = make_simulator(scheduler_name="fifo", queue_length=60).run(30_000.0)
        dynamic = make_simulator(
            scheduler_name="dynamic-max-bandwidth", queue_length=60
        ).run(30_000.0)
        assert dynamic.throughput_kb_s > 2 * fifo.throughput_kb_s
