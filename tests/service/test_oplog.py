"""Tests for the drive operation log."""

import random

import pytest

from repro.core import make_scheduler
from repro.des import Environment
from repro.layout import PlacementSpec, build_catalog
from repro.service import JukeboxSimulator, MetricsCollector
from repro.service.oplog import OpKind, Operation, OperationLog
from repro.tape import Jukebox
from repro.workload import ClosedSource, HotColdSkew, OpenSource

BLOCK = 16.0


class TestOperationLog:
    def test_append_and_iterate(self):
        log = OperationLog()
        log.append(Operation(OpKind.READ, 0.0, 30.0, tape_id=1, position_mb=10.0))
        log.append(Operation(OpKind.SWITCH, 30.0, 81.0, tape_id=2))
        assert len(log) == 2
        assert [operation.kind for operation in log] == [OpKind.READ, OpKind.SWITCH]

    def test_capacity_drops(self):
        log = OperationLog(capacity=1)
        log.append(Operation(OpKind.READ, 0.0, 1.0))
        log.append(Operation(OpKind.READ, 1.0, 1.0))
        assert len(log) == 1
        assert log.dropped == 1

    def test_of_kind_and_busy(self):
        log = OperationLog()
        log.append(Operation(OpKind.READ, 0.0, 30.0))
        log.append(Operation(OpKind.IDLE, 30.0, 100.0))
        log.append(Operation(OpKind.SWITCH, 130.0, 81.0))
        assert len(log.of_kind(OpKind.READ)) == 1
        assert log.busy_seconds() == pytest.approx(111.0)

    def test_overlap_validation(self):
        log = OperationLog()
        log.append(Operation(OpKind.READ, 0.0, 30.0))
        log.append(Operation(OpKind.READ, 10.0, 30.0))
        with pytest.raises(AssertionError):
            log.validate_non_overlapping()

    def test_format(self):
        log = OperationLog()
        log.append(Operation(OpKind.READ, 0.0, 30.0, tape_id=1, position_mb=64.0,
                             block_id=4))
        text = log.format()
        assert "read" in text
        assert "tape=1" in text
        assert "block=4" in text

    def test_format_truncates(self):
        log = OperationLog()
        for index in range(60):
            log.append(Operation(OpKind.READ, float(index), 1.0))
        assert "10 more" in log.format(limit=50)


class TestSimulatorIntegration:
    def make_simulator(self, oplog, interarrival=None, queue_length=10):
        catalog = build_catalog(
            PlacementSpec(percent_hot=10, block_mb=BLOCK), 10, 7 * 1024.0
        )
        rng = random.Random(4)
        skew = HotColdSkew(40.0)
        if interarrival is None:
            source = ClosedSource(queue_length, skew, catalog, rng)
        else:
            source = OpenSource(interarrival, skew, catalog, rng)
        return JukeboxSimulator(
            env=Environment(),
            jukebox=Jukebox.build(),
            catalog=catalog,
            scheduler=make_scheduler("dynamic-max-bandwidth"),
            source=source,
            metrics=MetricsCollector(block_mb=BLOCK),
            oplog=oplog,
        )

    def test_operations_logged_and_ordered(self):
        log = OperationLog()
        simulator = self.make_simulator(log)
        report = simulator.run(10_000.0)
        reads = log.of_kind(OpKind.READ)
        switches = log.of_kind(OpKind.SWITCH)
        # Hardware counters mutate at operation *start*; the log appends
        # at operation *end*, so the op in flight at the horizon may be
        # counted but not yet logged.
        assert abs(len(reads) - report.total_completed) <= 1
        assert simulator.jukebox.switches - 1 <= len(switches) <= simulator.jukebox.switches
        log.validate_non_overlapping()

    def test_logged_busy_matches_metrics(self):
        log = OperationLog()
        simulator = self.make_simulator(log)
        simulator.run(10_000.0)
        # Logged busy time only counts *finished* operations; allow the
        # one op in flight at the horizon.
        assert log.busy_seconds() <= simulator.metrics.busy_s_after_warmup + 300.0
        assert log.busy_seconds() > 0.8 * simulator.metrics.busy_s_after_warmup

    def test_idle_logged_in_open_model(self):
        log = OperationLog()
        simulator = self.make_simulator(log, interarrival=1_000.0)
        simulator.run(20_000.0)
        idles = log.of_kind(OpKind.IDLE)
        assert idles, "a lightly loaded open system must log idle gaps"
        assert sum(operation.duration_s for operation in idles) > 1_000.0

    def test_no_log_attached_is_free(self):
        simulator = self.make_simulator(None)
        report = simulator.run(5_000.0)
        assert report.total_completed > 0
