"""Hash-level determinism regression: the bit-identical guard.

Every digest below was captured on the pre-optimization tree (before the
slotted DES kernel, cached timing tables, and indexed envelope/pending
paths landed).  A run of the same canonical config must reproduce the
same :func:`repro.service.metrics.report_digest` byte for byte — any
drift in scheduler decisions, event ordering, or float arithmetic shows
up here first.

The matrix deliberately covers every optimized layer: the Figure-4
family sweep (FIFO / static / dynamic), the Figure-8 envelope family
(including the O(n²t²) computer and its incremental ``on_arrival``
path), the serpentine timing model, multi-drive, and runs with faults
and QoS enabled (the masked-catalog and admission paths).

To re-pin after an *intentional* behaviour change, print fresh digests:

    PYTHONPATH=src python -m pytest tests/test_golden_hashes.py --tb=line
"""

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.faults import FaultConfig, RetryPolicy
from repro.layout.placement import Layout
from repro.qos import QoSConfig
from repro.service.metrics import report_digest

FIG4 = ExperimentConfig(
    scheduler="dynamic-max-bandwidth",
    queue_length=60,
    horizon_s=60_000.0,
    seed=42,
)

FIG8 = ExperimentConfig(
    scheduler="envelope-max-bandwidth",
    layout=Layout.VERTICAL,
    replicas=9,
    start_position=1.0,
    queue_length=60,
    horizon_s=60_000.0,
    seed=42,
)

CASES = {
    "fig4_dynamic_max_bandwidth": FIG4,
    "fig4_static_max_bandwidth": FIG4.with_(scheduler="static-max-bandwidth"),
    "fig4_fifo": FIG4.with_(scheduler="fifo"),
    "fig8_envelope_max_bandwidth": FIG8,
    "fig8_envelope_max_requests": FIG8.with_(scheduler="envelope-max-requests"),
    "fig8_envelope_oldest_max_requests": FIG8.with_(
        scheduler="envelope-oldest-max-requests"
    ),
    "fig8_envelope_faults": FIG8.with_(
        replicas=2,
        faults=FaultConfig(
            media_error_rate=0.05, bad_replica_rate=0.02, retry=RetryPolicy()
        ),
    ),
    "fig8_envelope_qos": FIG8.with_(
        qos=QoSConfig(
            deadline_s=4000.0,
            admission="bounded-queue",
            max_pending=80,
            starvation_age_s=6000.0,
        ),
    ),
    "fig4_dynamic_faults_qos": FIG4.with_(
        replicas=2,
        layout=Layout.VERTICAL,
        start_position=1.0,
        faults=FaultConfig(media_error_rate=0.05, retry=RetryPolicy()),
        qos=QoSConfig(deadline_s=4000.0, starvation_age_s=6000.0),
    ),
    "fig4_serpentine": FIG4.with_(drive_technology="serpentine"),
    "fig4_multidrive": FIG4.with_(
        drive_count=2, tape_count=8, capacity_mb=2000.0
    ),
    "fig4_exact_batch": FIG4.with_(scheduler="exact-batch"),
    "fig4_approx_greedy_cost": FIG4.with_(scheduler="approx-greedy-cost"),
    "fig4_approx_best_pass": FIG4.with_(scheduler="approx-best-pass"),
}

#: sha256 of each case's report, pinned on the pre-optimization tree.
GOLDEN = {
    "fig4_dynamic_max_bandwidth": "fff45a7a06f6b6cffe23ed98288a6322f28cf1432b887646c6a5022253c4b8c5",
    "fig4_static_max_bandwidth": "84bc9af77fb61cc23f188eb5fe6ae8f24bbcabba259d98acd5a167ac748eafb5",
    "fig4_fifo": "f9b6dcf3d1885d565e79d32bd43ce4e045fc39685cd3333f10e8568f94c6592c",
    "fig8_envelope_max_bandwidth": "4c1347ff60264c9bf04a64b21b79dc9a5cf8f106abe652dd87d52ee51a74db79",
    "fig8_envelope_max_requests": "a2902a502f0ac81b02a9962f0ce84a578ceef49569d912931fdc841d50c21f03",
    "fig8_envelope_oldest_max_requests": "1d6fc3e7d6de6a3850a98f3fcd213aafac04080e2dfd84cbf497bdb2acfc34df",
    "fig8_envelope_faults": "498861721a04b17defdaed6c3b2b0ef78cb400007f9c92026abdbe6691f112e0",
    "fig8_envelope_qos": "9c07f83760c016c049857e301cfb1668caa955a9109de60028778fda5ac0f18e",
    "fig4_dynamic_faults_qos": "8621fbb9b16a0c5db1dc251569528820938ed3acf11eba0095a7081c3e191ecc",
    "fig4_serpentine": "01df9667ce284d938428e74e3e527dac948ffd9f165656cb6ecfe68028b62d9c",
    "fig4_multidrive": "6deffd19af91d1e7fc04ec988e6d8208ee511affc842b78bd586c018ea7ae7aa",
    # LTSP optimality-baseline families, pinned at their introduction.
    "fig4_exact_batch": "c149b3b26b387e8923931e3bb06d504fff6fa15a83de5abcb47aa8a165b56b3a",
    "fig4_approx_greedy_cost": "bac0e5590567174a28530f5a53fb0ddc6c1c926b861de0cc5012757d5dedf8cd",
    "fig4_approx_best_pass": "80024f04ff6ad040a441230f5509d2a6bd186a1c94a433223a229802f54b483b",
}


def test_case_matrix_is_fully_pinned():
    assert set(CASES) == set(GOLDEN)


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_hash(name):
    digest = report_digest(run_experiment(CASES[name]).report)
    assert digest == GOLDEN[name], (
        f"{name}: report digest drifted — scheduler decisions or metrics "
        f"are no longer bit-identical to the pinned pre-optimization run "
        f"(got {digest})"
    )


def test_digest_is_repeatable_within_process():
    """Two runs of the same config in one process hash identically."""
    first = report_digest(run_experiment(CASES["fig4_fifo"]).report)
    second = report_digest(run_experiment(CASES["fig4_fifo"]).report)
    assert first == second == GOLDEN["fig4_fifo"]
