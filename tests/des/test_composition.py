"""Additional kernel composition tests: processes + composite events +
resources interacting."""

import pytest

from repro.des import Environment, Interrupt, Resource, Store


@pytest.fixture
def env():
    return Environment()


class TestProcessComposition:
    def test_all_of_processes(self, env):
        def worker(env, delay, result):
            yield env.timeout(delay)
            return result

        processes = [
            env.process(worker(env, delay, f"r{delay}")) for delay in (3.0, 1.0, 2.0)
        ]
        gathered = env.all_of(processes)
        values = env.run_until_event(gathered)
        assert values == ["r3.0", "r1.0", "r2.0"]
        assert env.now == 3.0

    def test_any_of_processes_returns_first(self, env):
        def worker(env, delay):
            yield env.timeout(delay)
            return delay

        fast = env.process(worker(env, 1.0))
        env.process(worker(env, 9.0))
        first = env.run_until_event(env.any_of([fast]))
        assert first.value == 1.0

    def test_nested_process_chain(self, env):
        def leaf(env):
            yield env.timeout(2.0)
            return 1

        def middle(env):
            value = yield env.process(leaf(env))
            yield env.timeout(3.0)
            return value + 1

        def root(env):
            value = yield env.process(middle(env))
            return value + 1

        process = env.process(root(env))
        env.run()
        assert process.value == 3
        assert env.now == 5.0

    def test_interrupt_while_waiting_on_store(self, env):
        store = Store(env)
        outcomes = []

        def consumer(env):
            try:
                yield store.get()
                outcomes.append("got")
            except Interrupt:
                outcomes.append("interrupted")

        def interrupter(env, victim):
            yield env.timeout(5.0)
            victim.interrupt()

        victim = env.process(consumer(env))
        env.process(interrupter(env, victim))
        env.run()
        assert outcomes == ["interrupted"]

    def test_store_item_not_lost_to_interrupted_getter(self, env):
        """An interrupted getter abandons its claim; a later put should
        not vanish into the dead get event silently for new getters."""
        store = Store(env)

        def consumer(env):
            try:
                yield store.get()
            except Interrupt:
                return "gone"

        victim = env.process(consumer(env))

        def driver(env):
            yield env.timeout(1.0)
            victim.interrupt()
            yield env.timeout(1.0)
            store.put("late-item")

        env.process(driver(env))
        env.run()
        # Known semantics: the abandoned get event still consumed the
        # waiter slot, so the item went to the dead event.  A fresh get
        # must therefore block until another put — document by test.
        fresh = store.get()
        assert not fresh.triggered
        store.put("second")
        assert fresh.triggered


class TestResourceWithProcesses:
    def test_capacity_two_allows_two_concurrent(self, env):
        resource = Resource(env, capacity=2)
        active = []
        peak = []

        def worker(env, tag):
            yield resource.acquire()
            active.append(tag)
            peak.append(len(active))
            yield env.timeout(10.0)
            active.remove(tag)
            resource.release()

        for tag in range(4):
            env.process(worker(env, tag))
        env.run()
        assert max(peak) == 2
        assert env.now == 20.0  # two batches of two

    def test_fifo_grant_order(self, env):
        resource = Resource(env, capacity=1)
        grants = []

        def worker(env, tag):
            yield resource.acquire()
            grants.append(tag)
            yield env.timeout(1.0)
            resource.release()

        for tag in range(5):
            env.process(worker(env, tag))
        env.run()
        assert grants == [0, 1, 2, 3, 4]
