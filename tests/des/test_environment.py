"""Unit tests for the environment's clock and scheduler."""

import pytest

from repro.des import EmptySchedule, Environment


@pytest.fixture
def env():
    return Environment()


class TestClock:
    def test_starts_at_zero(self, env):
        assert env.now == 0.0

    def test_custom_initial_time(self):
        assert Environment(initial_time=100.0).now == 100.0

    def test_run_until_advances_clock_even_with_no_events(self, env):
        env.run(until=50.0)
        assert env.now == 50.0

    def test_run_until_past_raises(self, env):
        env.run(until=10.0)
        with pytest.raises(ValueError):
            env.run(until=5.0)

    def test_schedule_in_past_rejected(self, env):
        event = env.event()
        with pytest.raises(ValueError):
            env.schedule(event, delay=-1.0)


class TestStep:
    def test_step_empty_heap_raises(self, env):
        with pytest.raises(EmptySchedule):
            env.step()

    def test_peek_empty_is_infinite(self, env):
        assert env.peek() == float("inf")

    def test_peek_returns_next_time(self, env):
        env.timeout(4.0)
        env.timeout(2.0)
        assert env.peek() == 2.0

    def test_step_processes_single_event(self, env):
        env.timeout(1.0)
        env.timeout(2.0)
        env.step()
        assert env.now == 1.0
        assert env.peek() == 2.0


class TestRun:
    def test_run_exhausts_heap(self, env):
        env.timeout(1.0)
        env.timeout(9.0)
        env.run()
        assert env.now == 9.0
        assert env.peek() == float("inf")

    def test_run_until_excludes_boundary_events(self, env):
        fired = []
        env.timeout(5.0).add_callback(lambda e: fired.append(5.0))
        env.run(until=5.0)
        # The event at exactly t=5 has NOT run; the clock sits at 5.
        assert fired == []
        assert env.now == 5.0
        env.run()
        assert fired == [5.0]

    def test_run_until_event_returns_value(self, env):
        event = env.event()
        env.timeout(2.0).add_callback(lambda e: event.succeed("done"))
        assert env.run_until_event(event) == "done"
        assert env.now == 2.0

    def test_run_until_event_raises_on_failure(self, env):
        event = env.event()
        env.timeout(1.0).add_callback(lambda e: event.fail(KeyError("k")))
        with pytest.raises(KeyError):
            env.run_until_event(event)

    def test_run_until_event_never_fires_raises(self, env):
        event = env.event()
        with pytest.raises(EmptySchedule):
            env.run_until_event(event)


class TestDeterminism:
    def test_interleaved_schedules_are_reproducible(self):
        def trace():
            env = Environment()
            order = []
            for index, delay in enumerate([3.0, 1.0, 2.0, 1.0, 3.0]):
                env.timeout(delay).add_callback(
                    lambda e, index=index: order.append(index)
                )
            env.run()
            return order

        assert trace() == trace() == [1, 3, 2, 0, 4]
