"""Unit tests for the event primitives."""

import pytest

from repro.des import (
    Environment,
    Event,
    EventAlreadyTriggered,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
    Timeout,
)


@pytest.fixture
def env():
    return Environment()


class TestEvent:
    def test_new_event_is_untriggered(self, env):
        event = env.event()
        assert not event.triggered
        assert not event.processed

    def test_value_unavailable_before_trigger(self, env):
        event = env.event()
        with pytest.raises(RuntimeError):
            _ = event.value
        with pytest.raises(RuntimeError):
            _ = event.ok

    def test_succeed_sets_value(self, env):
        event = env.event()
        event.succeed(41)
        assert event.triggered
        assert event.ok
        assert event.value == 41

    def test_succeed_twice_raises(self, env):
        event = env.event()
        event.succeed()
        with pytest.raises(EventAlreadyTriggered):
            event.succeed()

    def test_fail_then_succeed_raises(self, env):
        event = env.event()
        event.fail(ValueError("boom"))
        with pytest.raises(EventAlreadyTriggered):
            event.succeed()

    def test_fail_requires_exception(self, env):
        event = env.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_fail_records_exception(self, env):
        event = env.event()
        error = ValueError("boom")
        event.fail(error)
        assert not event.ok
        assert event.value is error

    def test_callbacks_run_on_processing(self, env):
        event = env.event()
        seen = []
        event.add_callback(seen.append)
        event.succeed("x")
        assert seen == []  # not yet processed
        env.run()
        assert seen == [event]
        assert event.processed

    def test_callback_added_after_processing_runs_immediately(self, env):
        event = env.event()
        event.succeed()
        env.run()
        seen = []
        event.add_callback(seen.append)
        assert seen == [event]


class TestTimeout:
    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_timeout_fires_at_delay(self, env):
        timeout = env.timeout(7.5)
        env.run()
        assert env.now == 7.5
        assert timeout.processed

    def test_timeout_carries_value(self, env):
        timeout = env.timeout(1.0, value="payload")
        env.run()
        assert timeout.value == "payload"

    def test_zero_delay_timeout_fires_now(self, env):
        timeout = env.timeout(0.0)
        env.run()
        assert env.now == 0.0
        assert timeout.processed

    def test_timeouts_fire_in_order(self, env):
        order = []
        env.timeout(3.0).add_callback(lambda e: order.append(3))
        env.timeout(1.0).add_callback(lambda e: order.append(1))
        env.timeout(2.0).add_callback(lambda e: order.append(2))
        env.run()
        assert order == [1, 2, 3]

    def test_same_time_fifo_order(self, env):
        order = []
        for tag in range(5):
            env.timeout(1.0).add_callback(lambda e, tag=tag: order.append(tag))
        env.run()
        assert order == [0, 1, 2, 3, 4]


class TestCompositeEvents:
    def test_any_of_fires_on_first(self, env):
        slow = env.timeout(10.0)
        fast = env.timeout(2.0)
        any_event = env.any_of([slow, fast])
        env.run_until_event(any_event)
        assert env.now == 2.0
        assert any_event.value is fast

    def test_any_of_empty_rejected(self, env):
        with pytest.raises(ValueError):
            env.any_of([])

    def test_all_of_waits_for_all(self, env):
        events = [env.timeout(delay, value=delay) for delay in (1.0, 5.0, 3.0)]
        all_event = env.all_of(events)
        value = env.run_until_event(all_event)
        assert env.now == 5.0
        assert value == [1.0, 5.0, 3.0]

    def test_all_of_empty_succeeds_immediately(self, env):
        all_event = env.all_of([])
        assert all_event.triggered

    def test_all_of_propagates_failure(self, env):
        good = env.timeout(1.0)
        bad = env.event()
        bad.fail(RuntimeError("nope"))
        all_event = env.all_of([good, bad])
        with pytest.raises(RuntimeError, match="nope"):
            env.run_until_event(all_event)

    def test_priority_urgent_before_normal(self, env):
        order = []
        normal = env.event()
        urgent = env.event()
        normal.add_callback(lambda e: order.append("normal"))
        urgent.add_callback(lambda e: order.append("urgent"))
        normal.succeed(priority=PRIORITY_NORMAL)
        urgent.succeed(priority=PRIORITY_URGENT)
        env.run()
        assert order == ["urgent", "normal"]
