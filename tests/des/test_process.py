"""Unit tests for generator-coroutine processes."""

import pytest

from repro.des import Environment, Interrupt


@pytest.fixture
def env():
    return Environment()


class TestProcessBasics:
    def test_process_requires_generator(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_process_runs_to_completion(self, env):
        log = []

        def body(env):
            log.append(("start", env.now))
            yield env.timeout(4.0)
            log.append(("middle", env.now))
            yield env.timeout(6.0)
            log.append(("end", env.now))

        env.process(body(env))
        env.run()
        assert log == [("start", 0.0), ("middle", 4.0), ("end", 10.0)]

    def test_process_return_value(self, env):
        def body(env):
            yield env.timeout(1.0)
            return 99

        process = env.process(body(env))
        env.run()
        assert process.value == 99

    def test_process_is_alive_until_done(self, env):
        def body(env):
            yield env.timeout(5.0)

        process = env.process(body(env))
        assert process.is_alive
        env.run()
        assert not process.is_alive

    def test_waiting_on_another_process(self, env):
        def child(env):
            yield env.timeout(3.0)
            return "child-result"

        def parent(env):
            result = yield env.process(child(env))
            return f"got {result}"

        parent_process = env.process(parent(env))
        env.run()
        assert parent_process.value == "got child-result"
        assert env.now == 3.0

    def test_timeout_value_is_sent_into_generator(self, env):
        received = []

        def body(env):
            value = yield env.timeout(1.0, value="hello")
            received.append(value)

        env.process(body(env))
        env.run()
        assert received == ["hello"]

    def test_yielding_non_event_raises(self, env):
        def body(env):
            yield "not an event"

        env.process(body(env))
        with pytest.raises(TypeError):
            env.run()

    def test_yielding_bare_delay_advances_clock(self, env):
        # Bare floats/ints are timeout shorthand on the allocation-free
        # fast path; order and clock behaviour match env.timeout exactly.
        log = []

        def body(env):
            yield 2.0
            log.append(env.now)
            yield 3
            log.append(env.now)

        env.process(body(env))
        env.run()
        assert log == [2.0, 5.0]

    def test_bare_delay_orders_like_timeout(self, env):
        log = []

        def floats(env):
            for _ in range(3):
                yield 1.0
                log.append(("float", env.now))

        def timeouts(env):
            for _ in range(3):
                yield env.timeout(1.0)
                log.append(("timeout", env.now))

        env.process(floats(env))
        env.process(timeouts(env))
        env.run()
        # Same instants, FIFO by scheduling order within each instant.
        assert log == [
            ("float", 1.0), ("timeout", 1.0),
            ("float", 2.0), ("timeout", 2.0),
            ("float", 3.0), ("timeout", 3.0),
        ]

    def test_negative_bare_delay_raises(self, env):
        def body(env):
            yield -1.0

        env.process(body(env))
        with pytest.raises(ValueError):
            env.run()

    def test_interrupt_while_waiting_on_bare_delay(self, env):
        from repro.des.events import Interrupt

        log = []

        def sleeper(env):
            try:
                yield 100.0
            except Interrupt as exc:
                log.append(("interrupted", env.now, exc.cause))
            yield 1.0
            log.append(("resumed", env.now))

        def interrupter(env, victim):
            yield 5.0
            victim.interrupt("wake")

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        env.run()
        assert log == [("interrupted", 5.0, "wake"), ("resumed", 6.0)]

    def test_unwaited_crash_propagates(self, env):
        def body(env):
            yield env.timeout(1.0)
            raise RuntimeError("kaboom")

        env.process(body(env))
        with pytest.raises(RuntimeError, match="kaboom"):
            env.run()

    def test_waited_crash_delivered_to_waiter(self, env):
        def child(env):
            yield env.timeout(1.0)
            raise ValueError("inner")

        def parent(env):
            try:
                yield env.process(child(env))
            except ValueError as exc:
                return f"caught {exc}"

        parent_process = env.process(parent(env))
        env.run()
        assert parent_process.value == "caught inner"


class TestInterrupt:
    def test_interrupt_wakes_process(self, env):
        log = []

        def sleeper(env):
            try:
                yield env.timeout(100.0)
            except Interrupt as interrupt:
                log.append((env.now, interrupt.cause))

        def interrupter(env, victim):
            yield env.timeout(5.0)
            victim.interrupt(cause="wake up")

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        env.run()
        assert log == [(5.0, "wake up")]

    def test_interrupting_finished_process_raises(self, env):
        def quick(env):
            yield env.timeout(1.0)

        process = env.process(quick(env))
        env.run()
        with pytest.raises(RuntimeError):
            process.interrupt()

    def test_stale_wakeup_after_interrupt_is_ignored(self, env):
        """The abandoned timeout firing later must not resume the process."""
        resumed = []

        def sleeper(env):
            try:
                yield env.timeout(10.0)
                resumed.append("timeout")
            except Interrupt:
                yield env.timeout(100.0)
                resumed.append("post-interrupt")

        def interrupter(env, victim):
            yield env.timeout(1.0)
            victim.interrupt()

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        env.run()
        # Only the post-interrupt continuation ran; the abandoned t=10
        # wakeup did not resume the generator a second time.
        assert resumed == ["post-interrupt"]
        assert env.now == 101.0

    def test_interrupt_continues_process_life(self, env):
        def resilient(env):
            total = 0.0
            while total < 3:
                try:
                    yield env.timeout(50.0)
                    total += 50
                except Interrupt:
                    total += 1
            return total

        def pokes(env, victim):
            for _ in range(3):
                yield env.timeout(1.0)
                victim.interrupt()

        victim = env.process(resilient(env))
        env.process(pokes(env, victim))
        env.run()
        assert victim.value == 3
