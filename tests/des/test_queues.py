"""Unit tests for the blocking FIFO store."""

import pytest

from repro.des import Environment, Store


@pytest.fixture
def env():
    return Environment()


class TestStore:
    def test_put_then_get_is_immediate(self, env):
        store = Store(env)
        store.put("a")
        event = store.get()
        assert event.triggered
        env.run()
        assert event.value == "a"

    def test_fifo_ordering(self, env):
        store = Store(env)
        for item in ("a", "b", "c"):
            store.put(item)
        values = []
        for _ in range(3):
            event = store.get()
            env.run()
            values.append(event.value)
        assert values == ["a", "b", "c"]

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        received = []

        def consumer(env):
            item = yield store.get()
            received.append((env.now, item))

        def producer(env):
            yield env.timeout(5.0)
            store.put("late")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert received == [(5.0, "late")]

    def test_waiting_getters_served_in_order(self, env):
        store = Store(env)
        received = []

        def consumer(env, tag):
            item = yield store.get()
            received.append((tag, item))

        for tag in range(3):
            env.process(consumer(env, tag))

        def producer(env):
            yield env.timeout(1.0)
            for item in ("x", "y", "z"):
                store.put(item)

        env.process(producer(env))
        env.run()
        assert received == [(0, "x"), (1, "y"), (2, "z")]

    def test_len_and_items(self, env):
        store = Store(env)
        assert len(store) == 0
        store.put(1)
        store.put(2)
        assert len(store) == 2
        assert store.items == [1, 2]

    def test_pending_getter_not_counted_as_item(self, env):
        store = Store(env)
        store.get()
        assert len(store) == 0
        store.put("direct-to-getter")
        assert len(store) == 0


class TestMonitor:
    def test_records_time_value_pairs(self, env):
        from repro.des import Monitor

        monitor = Monitor(env, name="queue")

        def body(env):
            monitor.record(1)
            yield env.timeout(3.0)
            monitor.record(2)
            yield env.timeout(4.0)
            monitor.record(5)

        env.process(body(env))
        env.run()
        assert monitor.samples == [(0.0, 1.0), (3.0, 2.0), (7.0, 5.0)]
        assert monitor.values() == [1.0, 2.0, 5.0]
        assert monitor.times() == [0.0, 3.0, 7.0]
        assert len(monitor) == 3

    def test_mean(self, env):
        from repro.des import Monitor

        monitor = Monitor(env)
        assert monitor.mean() == 0.0
        monitor.record(2)
        monitor.record(4)
        assert monitor.mean() == 3.0
