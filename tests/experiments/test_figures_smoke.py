"""Structural smoke tests for every figure generator (tiny horizons).

The benchmarks assert the paper's quantitative shapes at realistic
horizons; these tests assert structure — labels, series lengths, units
— so a refactor that breaks a generator fails fast in the unit suite.
"""

import pytest

from repro.experiments.figures import (
    FIGURE4_ALGORITHMS,
    FIGURE8_ALGORITHMS,
    FIGURES,
    figure4,
    figure5,
    figure7,
    figure8,
    figure9,
    figure10b,
    figure_fed_nr,
)

TINY = 5_000.0
ONE_QUEUE = (10,)


class TestFigure4:
    def test_series_per_algorithm(self):
        data = figure4(horizon_s=TINY, algorithms=("fifo", "dynamic-max-bandwidth"),
                       queue_lengths=ONE_QUEUE)
        assert data.labels() == ["fifo", "dynamic-max-bandwidth"]
        for points in data.series.values():
            assert len(points) == 1
            assert points[0].intensity == 10

    def test_default_algorithm_list_is_nine(self):
        assert len(FIGURE4_ALGORITHMS) == 9
        assert "fifo" in FIGURE4_ALGORITHMS


class TestFigure5:
    def test_includes_vertical_series(self):
        data = figure5(horizon_s=TINY, start_positions=(0.0,), queue_lengths=ONE_QUEUE)
        assert data.labels() == ["SP-0", "vertical"]

    def test_annotation_mentions_parameters(self):
        data = figure5(horizon_s=TINY, start_positions=(0.0,), queue_lengths=ONE_QUEUE)
        assert "PH-10" in data.annotation
        assert "NR-0" in data.annotation


class TestFigure7:
    def test_replica_placement_labels(self):
        data = figure7(horizon_s=TINY, start_positions=(0.0, 1.0), queue_lengths=ONE_QUEUE)
        assert data.labels() == ["SP-0", "SP-1"]
        assert "NR-9" in data.annotation


class TestFigure8:
    def test_envelope_variants_present(self):
        assert sum(name.startswith("envelope-") for name in FIGURE8_ALGORITHMS) == 3

    def test_runs_with_subset(self):
        data = figure8(
            horizon_s=TINY,
            algorithms=("dynamic-max-bandwidth", "envelope-max-bandwidth"),
            queue_lengths=ONE_QUEUE,
        )
        assert set(data.labels()) == {
            "dynamic-max-bandwidth",
            "envelope-max-bandwidth",
        }


class TestFigure9:
    def test_pairs_of_series_per_skew(self):
        data = figure9(horizon_s=TINY, skews=(40.0,), queue_lengths=ONE_QUEUE)
        assert data.labels() == ["RH-40 NR-0", "RH-40 NR-9"]


class TestFigure10b:
    def test_anchored_curves(self):
        data = figure10b(
            horizon_s=TINY, skews=(40.0,), replica_counts=(0, 9), base_queue_length=20
        )
        curve = dict(data.series["RH-40"])
        assert curve[0] == 1.0
        assert 9 in curve


class TestFigureFedNr:
    def test_placement_series_with_shared_baseline(self):
        data = figure_fed_nr(horizon_s=TINY, replica_counts=(0,), queue_length=10)
        assert data.labels() == [
            "home",
            "home resp-s",
            "spread",
            "spread resp-s",
        ]
        # NR-0 has no copies to place, so the placements coincide.
        assert data.series["home"] == data.series["spread"]
        ((nr, kb_s),) = data.series["home"]
        assert nr == 0
        assert kb_s > 0


class TestRegistry:
    def test_every_figure_is_registered(self):
        assert set(FIGURES) == {
            "3", "4", "5", "6", "7", "8", "9", "10a", "10b", "fed-nr", "gap",
        }


class TestCliFlagsSmoke:
    def test_trace_flag(self, capsys):
        from repro.cli import main

        assert main(["run", "--queue", "5", "--horizon", "4000", "--trace", "3"]) == 0
        out = capsys.readouterr().out
        assert "switch" in out or "read" in out

    def test_plot_flag(self, capsys):
        from repro.cli import main

        assert main(["figure", "10a", "--plot"]) == 0
        assert "legend" in capsys.readouterr().out
