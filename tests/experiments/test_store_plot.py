"""Tests for JSON result persistence and ASCII plotting."""

import pytest

from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.store import (
    FORMAT_VERSION,
    load_results,
    result_from_dict,
    result_to_dict,
    save_results,
)
from repro.report.plot import ascii_scatter, plot_throughput_delay


@pytest.fixture(scope="module")
def result():
    return run_experiment(ExperimentConfig(queue_length=10, horizon_s=8_000.0))


class TestResultStore:
    def test_round_trip_dict(self, result):
        payload = result_to_dict(result)
        assert payload["version"] == FORMAT_VERSION
        restored = result_from_dict(payload)
        assert restored.config == result.config
        assert restored.report == result.report

    def test_round_trip_file(self, result, tmp_path):
        path = tmp_path / "results.json"
        save_results([result, result], path)
        loaded = load_results(path)
        assert len(loaded) == 2
        assert loaded[0].throughput_kb_s == result.throughput_kb_s

    def test_layout_enum_serialized_as_value(self, result):
        payload = result_to_dict(result)
        assert payload["config"]["layout"] == "horizontal"

    def test_version_checked(self, result):
        payload = result_to_dict(result)
        payload["version"] = 999
        with pytest.raises(ValueError, match="version"):
            result_from_dict(payload)

    def test_schema_fingerprint_checked(self, result):
        # A document written under a different dataclass field set must
        # be rejected, not silently loaded with defaults filled in.
        payload = result_to_dict(result)
        payload["schema"] = "feedfacedeadbeef"
        with pytest.raises(ValueError, match="schema"):
            result_from_dict(payload)

    def test_schema_fingerprint_is_stable(self):
        from repro.experiments.store import schema_fingerprint

        assert schema_fingerprint() == schema_fingerprint()
        assert len(schema_fingerprint()) == 16

    def test_non_array_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"not": "an array"}')
        with pytest.raises(ValueError, match="array"):
            load_results(path)

    def test_fault_config_round_trips_through_json(self, tmp_path):
        from repro.faults import FaultConfig, RetryPolicy

        faulted = run_experiment(
            ExperimentConfig(
                queue_length=10,
                horizon_s=8_000.0,
                tape_count=4,
                capacity_mb=1000.0,
                replicas=2,
                faults=FaultConfig(
                    media_error_rate=0.05,
                    tape_media_error_rates=((1, 0.2),),
                    bad_replica_rate=0.02,
                    retry=RetryPolicy(max_attempts=2, base_backoff_s=1.0),
                ),
            )
        )
        path = tmp_path / "faulted.json"
        save_results([faulted], path)
        restored = load_results(path)[0]
        # The nested frozen dataclasses (and their tuples) must survive
        # JSON's list/dict flattening.
        assert restored.config == faulted.config
        assert isinstance(restored.config.faults.retry, RetryPolicy)
        assert restored.report == faulted.report
        assert restored.report.fault_counts == faulted.report.fault_counts


class TestAsciiPlot:
    def test_empty(self):
        assert ascii_scatter({}) == "(no data)"
        assert ascii_scatter({"a": []}) == "(no data)"

    def test_too_small_grid_rejected(self):
        with pytest.raises(ValueError):
            ascii_scatter({"a": [(0, 0)]}, width=4, height=2)

    def test_markers_and_legend(self):
        plot = ascii_scatter(
            {"up": [(0, 0), (1, 1)], "down": [(0, 1), (1, 0)]},
            width=16,
            height=8,
        )
        assert "o=up" in plot
        assert "x=down" in plot
        assert plot.count("o") >= 2  # two plotted points (plus legend)

    def test_corners_map_to_extremes(self):
        plot = ascii_scatter({"s": [(0, 0), (10, 10)]}, width=20, height=10)
        lines = plot.splitlines()
        grid = [line[1:] for line in lines[1:11]]
        assert grid[0].rstrip().endswith("o")  # max y, max x: top right
        assert grid[-1].lstrip("|").startswith("o")  # min y, min x: bottom left

    def test_plot_figure_data(self):
        from repro.experiments.figures import figure10a

        data = figure10a(replica_counts=(0, 3, 6, 9), percent_hot_values=(10.0, 30.0))
        plot = plot_throughput_delay(data)
        assert "legend" in plot
        assert "PH-10" in plot

    def test_plot_curvepoints(self):
        from repro.experiments.figures import figure6

        data = figure6(horizon_s=6_000.0, replica_counts=(0,), queue_lengths=(10, 20))
        plot = plot_throughput_delay(data)
        assert "throughput KB/s" in plot
        assert "mean delay s" in plot

    def test_qos_config_round_trips_through_json(self, tmp_path):
        from repro.qos import QoSConfig

        qos_result = run_experiment(
            ExperimentConfig(
                queue_length=10,
                horizon_s=8_000.0,
                tape_count=4,
                capacity_mb=1000.0,
                qos=QoSConfig(
                    deadline_s=1_500.0,
                    admission="bounded-queue",
                    max_pending=8,
                    starvation_age_s=4_000.0,
                    watchdog_stall_s=6_000.0,
                ),
            )
        )
        path = tmp_path / "qos.json"
        save_results([qos_result], path)
        restored = load_results(path)[0]
        assert restored.config == qos_result.config
        assert isinstance(restored.config.qos, QoSConfig)
        assert restored.report == qos_result.report
        # The SLO fields came back through JSON intact.
        assert restored.report.shed_by_reason == qos_result.report.shed_by_reason
