"""Tests for experiment configuration validation."""

import pytest

from repro.experiments import ExperimentConfig
from repro.layout import Layout


class TestConfigValidation:
    def test_default_is_closed_model(self):
        config = ExperimentConfig()
        assert config.is_closed
        assert config.queue_length == 60

    def test_open_model(self):
        config = ExperimentConfig(queue_length=None, mean_interarrival_s=120.0)
        assert not config.is_closed

    def test_both_models_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(queue_length=60, mean_interarrival_s=120.0)

    def test_neither_model_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(queue_length=None, mean_interarrival_s=None)

    def test_warmup_fraction_bounds(self):
        with pytest.raises(ValueError):
            ExperimentConfig(warmup_fraction=1.0)
        with pytest.raises(ValueError):
            ExperimentConfig(warmup_fraction=-0.1)

    def test_horizon_positive(self):
        with pytest.raises(ValueError):
            ExperimentConfig(horizon_s=0)

    def test_drive_speedup_positive(self):
        with pytest.raises(ValueError):
            ExperimentConfig(drive_speedup=0)

    def test_warmup_seconds(self):
        config = ExperimentConfig(horizon_s=100_000, warmup_fraction=0.2)
        assert config.warmup_s == pytest.approx(20_000)

    def test_with_overrides(self):
        base = ExperimentConfig()
        changed = base.with_(replicas=9, start_position=1.0)
        assert changed.replicas == 9
        assert changed.start_position == 1.0
        assert base.replicas == 0  # frozen original untouched

    def test_replicas_must_fit_tape_count(self):
        # NR-9 on a 10-tape jukebox uses all tapes; NR-10 cannot exist.
        ExperimentConfig(replicas=9, tape_count=10)
        with pytest.raises(ValueError, match="replicas"):
            ExperimentConfig(replicas=10, tape_count=10)
        with pytest.raises(ValueError, match="replicas"):
            ExperimentConfig(replicas=3, tape_count=3)

    def test_negative_replicas_rejected(self):
        with pytest.raises(ValueError, match="replicas"):
            ExperimentConfig(replicas=-1)

    def test_percentages_bounded(self):
        with pytest.raises(ValueError, match="percent_hot"):
            ExperimentConfig(percent_hot=-5.0)
        with pytest.raises(ValueError, match="percent_requests_hot"):
            ExperimentConfig(percent_requests_hot=120.0)

    def test_geometry_must_be_positive(self):
        with pytest.raises(ValueError, match="tape_count"):
            ExperimentConfig(tape_count=0)
        with pytest.raises(ValueError, match="capacity_mb"):
            ExperimentConfig(capacity_mb=0.0)
        with pytest.raises(ValueError, match="block_mb"):
            ExperimentConfig(block_mb=-16.0)

    def test_intensities_must_be_positive(self):
        with pytest.raises(ValueError, match="queue_length"):
            ExperimentConfig(queue_length=0)
        with pytest.raises(ValueError, match="mean_interarrival_s"):
            ExperimentConfig(queue_length=None, mean_interarrival_s=-1.0)

    def test_fault_config_attaches(self):
        from repro.faults import FaultConfig

        config = ExperimentConfig(faults=FaultConfig(media_error_rate=0.01))
        assert config.faults.enabled
        assert ExperimentConfig().faults is None

    def test_invalid_fault_rates_rejected(self):
        from repro.faults import FaultConfig

        with pytest.raises(ValueError, match="media_error_rate"):
            ExperimentConfig(faults=FaultConfig(media_error_rate=-0.5))

    def test_derived_fault_configs_hash_and_equal_stably(self):
        # Regression: FaultConfig built from a *list* of per-tape rates
        # (e.g. out of a JSON round trip) used to make with_()-derived
        # configs unhashable and unequal to their tuple-built twins,
        # breaking dedup and cache addressing.
        from repro.faults import FaultConfig

        listy = ExperimentConfig().with_(
            faults=FaultConfig(tape_media_error_rates=[(1, 0.2)])
        )
        tupley = ExperimentConfig().with_(
            faults=FaultConfig(tape_media_error_rates=((1, 0.2),))
        )
        assert listy == tupley
        assert hash(listy) == hash(tupley)
        assert len({listy, tupley}) == 1

    def test_fault_configs_usable_as_dict_keys(self):
        from repro.faults import FaultConfig

        config = ExperimentConfig().with_(faults=FaultConfig(media_error_rate=0.1))
        assert {config: "value"}[config.with_()] == "value"

    def test_describe_uses_paper_notation(self):
        text = ExperimentConfig(
            percent_hot=10, percent_requests_hot=40, replicas=9, start_position=1.0,
            layout=Layout.VERTICAL,
        ).describe()
        assert "PH-10" in text
        assert "RH-40" in text
        assert "NR-9" in text
        assert "SP-1" in text
        assert "vertical" in text
        assert "Q-60" in text
