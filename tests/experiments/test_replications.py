"""Tests for the independent-replications harness."""

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.replications import (
    ReplicationReport,
    replicate,
    significantly_better,
)
from repro.layout import Layout

FAST = dict(horizon_s=25_000.0)


class TestReplicate:
    def test_validation(self):
        with pytest.raises(ValueError):
            replicate(ExperimentConfig(**FAST), replications=0)

    def test_runs_distinct_seeds(self):
        report = replicate(ExperimentConfig(**FAST), replications=3)
        assert report.replications == 3
        seeds = {result.config.seed for result in report.results}
        assert len(seeds) == 3
        values = report.throughput_kb_s.values
        assert len(set(values)) == 3  # streams genuinely differ

    def test_interval_brackets_values(self):
        report = replicate(ExperimentConfig(**FAST), replications=4)
        interval = report.throughput_kb_s.interval
        assert interval.low < interval.mean < interval.high
        assert min(report.throughput_kb_s.values) <= interval.mean
        assert interval.mean <= max(report.throughput_kb_s.values)

    def test_single_replication_infinite_width(self):
        report = replicate(ExperimentConfig(**FAST), replications=1)
        assert report.throughput_kb_s.interval.half_width == float("inf")

    def test_reproducible(self):
        first = replicate(ExperimentConfig(**FAST), replications=2)
        second = replicate(ExperimentConfig(**FAST), replications=2)
        assert first.throughput_kb_s.values == second.throughput_kb_s.values


class TestSignificance:
    def test_replication_vs_baseline_is_significant(self):
        """The headline full-replication win survives proper error bars."""
        baseline = replicate(ExperimentConfig(queue_length=60, **FAST), replications=3)
        improved = replicate(
            ExperimentConfig(
                queue_length=60,
                layout=Layout.VERTICAL,
                replicas=9,
                start_position=1.0,
                scheduler="envelope-max-bandwidth",
                **FAST,
            ),
            replications=3,
        )
        assert significantly_better(improved, baseline, "throughput_kb_s")
        assert significantly_better(improved, baseline, "mean_response_s")

    def test_identical_configs_not_significant(self):
        first = replicate(ExperimentConfig(**FAST), replications=3)
        second = replicate(ExperimentConfig(seed=99, **FAST), replications=3)
        assert not significantly_better(first, second)
        assert not significantly_better(second, first)
