"""Tests for CSV/Markdown exports and the extended CLI."""

import pytest

from repro.experiments.figures import figure6, figure10a
from repro.report import curve_to_csv, figure_to_csv, figure_to_markdown


@pytest.fixture(scope="module")
def analytic_figure():
    return figure10a(replica_counts=(0, 2), percent_hot_values=(10.0, 20.0))


@pytest.fixture(scope="module")
def curve_figure():
    return figure6(horizon_s=6_000.0, replica_counts=(0,), queue_lengths=(10, 20))


class TestCsvExport:
    def test_xy_figure(self, analytic_figure):
        csv = figure_to_csv(analytic_figure)
        lines = csv.strip().splitlines()
        assert lines[0] == "series,x,y"
        assert "PH-10,0,1.0" in lines
        assert len(lines) == 1 + 2 * 2  # header + 2 series x 2 points

    def test_curve_figure(self, curve_figure):
        csv = figure_to_csv(curve_figure)
        lines = csv.strip().splitlines()
        assert lines[0] == (
            "series,queue,kb_per_s,req_per_min,delay_s,switches_per_h"
        )
        assert len(lines) == 3  # header + two queue points
        assert lines[1].startswith("NR-0,10")

    def test_curve_to_csv_single_series(self, curve_figure):
        csv = curve_to_csv("NR-0", curve_figure.series["NR-0"])
        lines = csv.strip().splitlines()
        assert lines[0].startswith("queue,")
        assert len(lines) == 3

    def test_csv_round_trips_floats(self, curve_figure):
        csv = figure_to_csv(curve_figure)
        data_line = csv.strip().splitlines()[1].split(",")
        assert float(data_line[2]) > 0  # kb_per_s parses back


class TestMarkdownExport:
    def test_headers_present(self, analytic_figure):
        markdown = figure_to_markdown(analytic_figure)
        assert "### Figure 10a" in markdown
        assert "**PH-10**" in markdown
        assert "| x | y |" in markdown
        assert "|---|---|" in markdown

    def test_curve_columns(self, curve_figure):
        markdown = figure_to_markdown(curve_figure)
        assert "| queue | kb_per_s | req_per_min | delay_s | switches_per_h |" in markdown


class TestCliExtensions:
    def test_figure_csv_format(self, capsys):
        from repro.cli import main

        assert main(["figure", "10a", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("series,x,y")

    def test_figure_markdown_format(self, capsys):
        from repro.cli import main

        assert main(["figure", "10a", "--format", "markdown"]) == 0
        assert "### Figure 10a" in capsys.readouterr().out

    def test_sweep_command(self, capsys):
        from repro.cli import main

        assert (
            main(["sweep", "--queues", "10,20", "--horizon", "6000"]) == 0
        )
        out = capsys.readouterr().out
        assert "dynamic-max-bandwidth" in out
        assert "queue" in out

    def test_run_with_serpentine(self, capsys):
        from repro.cli import main

        assert (
            main(
                ["run", "--technology", "serpentine", "--queue", "10",
                 "--horizon", "6000"]
            )
            == 0
        )
        assert "KB/s" in capsys.readouterr().out
