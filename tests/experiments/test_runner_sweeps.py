"""Tests for the experiment runner, sweeps, and figure generators."""

import pytest

from repro.experiments import (
    CurvePoint,
    ExperimentConfig,
    build_simulator,
    queue_sweep,
    run_experiment,
)
from repro.experiments.figures import figure3, figure6, figure10a
from repro.layout import Layout
from repro.report.text import format_figure, format_table

FAST = dict(horizon_s=15_000.0)


class TestRunner:
    def test_run_produces_metrics(self):
        result = run_experiment(ExperimentConfig(**FAST))
        assert result.throughput_kb_s > 0
        assert result.mean_response_s > 0
        assert result.requests_per_min > 0
        assert result.config.scheduler == "dynamic-max-bandwidth"

    def test_same_config_is_reproducible(self):
        config = ExperimentConfig(**FAST)
        first = run_experiment(config)
        second = run_experiment(config)
        assert first.throughput_kb_s == second.throughput_kb_s

    def test_build_simulator_validates_layout(self):
        simulator = build_simulator(ExperimentConfig(replicas=9, **FAST))
        assert simulator.context.catalog.n_hot > 0

    def test_drive_speedup_improves_throughput(self):
        slow = run_experiment(ExperimentConfig(**FAST))
        fast = run_experiment(ExperimentConfig(drive_speedup=2.0, **FAST))
        assert fast.throughput_kb_s > slow.throughput_kb_s

    def test_open_model_runs(self):
        result = run_experiment(
            ExperimentConfig(queue_length=None, mean_interarrival_s=200.0, **FAST)
        )
        assert result.report.total_completed > 0


class TestSweeps:
    def test_queue_sweep_traces_curve(self):
        points = queue_sweep(ExperimentConfig(**FAST), queue_lengths=(10, 40))
        assert len(points) == 2
        assert all(isinstance(point, CurvePoint) for point in points)
        assert points[0].intensity == 10
        assert points[1].intensity == 40

    def test_longer_queue_higher_throughput_and_delay(self):
        """The closed model's defining parametric shape."""
        points = queue_sweep(
            ExperimentConfig(horizon_s=60_000.0), queue_lengths=(10, 100)
        )
        assert points[1].throughput_kb_s > points[0].throughput_kb_s
        assert points[1].mean_response_s > points[0].mean_response_s


class TestFigures:
    def test_figure3_shape(self):
        data = figure3(horizon_s=8_000.0, block_sizes_mb=(8, 16), queue_lengths=(20,))
        assert data.figure == "3"
        assert list(data.series) == ["Q-20"]
        sizes = [size for size, _throughput in data.series["Q-20"]]
        assert sizes == [8, 16]

    def test_figure6_labels(self):
        data = figure6(horizon_s=8_000.0, replica_counts=(0, 9), queue_lengths=(20,))
        assert list(data.series) == ["NR-0", "NR-9"]

    def test_figure10a_analytic(self):
        data = figure10a(replica_counts=(0, 9), percent_hot_values=(10.0,))
        assert data.series["PH-10"] == [(0, 1.0), (9, pytest.approx(1.9))]


class TestReportRendering:
    def test_format_table_aligns(self):
        table = format_table(("a", "bb"), [(1, 2.5), (30, 4.0)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert set(lines[1]) <= {"-", " "}

    def test_format_figure_renders_parametric_and_xy(self):
        data = figure10a(replica_counts=(0, 1), percent_hot_values=(10.0,))
        text = format_figure(data)
        assert "Figure 10a" in text
        assert "PH-10" in text

    def test_format_figure_with_curvepoints(self):
        data = figure6(horizon_s=6_000.0, replica_counts=(0,), queue_lengths=(10,))
        text = format_figure(data)
        assert "queue" in text
        assert "KB/s" in text


class TestCli:
    def test_list_command(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "envelope-max-bandwidth" in output
        assert "fifo" in output

    def test_run_command(self, capsys):
        from repro.cli import main

        assert main(["run", "--queue", "10", "--horizon", "8000"]) == 0
        output = capsys.readouterr().out
        assert "PH-10" in output
        assert "KB/s" in output

    def test_figure_10a_command(self, capsys):
        from repro.cli import main

        assert main(["figure", "10a"]) == 0
        assert "Expansion" in capsys.readouterr().out
