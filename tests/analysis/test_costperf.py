"""Tests for the Section 4.8 cost-performance model."""

import pytest

from repro.analysis import (
    cost_performance_curve,
    cost_performance_ratio,
    effective_queue_length,
    expansion_table,
)
from repro.layout import expansion_factor


class TestExpansion:
    def test_no_replication_no_expansion(self):
        assert expansion_factor(0, 10) == 1.0

    def test_paper_example_ph10_nr9(self):
        """PH-10 with full replication on 10 tapes: E = 1.9 — 'nearly half
        of each tape is filled with replicas' (paper Section 4.5)."""
        assert expansion_factor(9, 10) == pytest.approx(1.9)

    def test_table_shape(self):
        table = expansion_table(replica_counts=range(3), percent_hot_values=(10.0, 20.0))
        assert set(table) == {10.0, 20.0}
        assert table[10.0] == [(0, 1.0), (1, pytest.approx(1.1)), (2, pytest.approx(1.2))]
        assert table[20.0][2] == (2, pytest.approx(1.4))


class TestEffectiveQueue:
    def test_scales_down_by_expansion(self):
        assert effective_queue_length(60, 1.9) == 32
        assert effective_queue_length(60, 1.0) == 60

    def test_never_below_one(self):
        assert effective_queue_length(1, 10.0) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            effective_queue_length(0, 1.5)
        with pytest.raises(ValueError):
            effective_queue_length(10, 0.5)


class TestRatio:
    def test_ratio(self):
        assert cost_performance_ratio(110.0, 100.0) == pytest.approx(1.1)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            cost_performance_ratio(1.0, 0.0)


class TestCurve:
    def test_curve_runs_and_anchors_at_one(self):
        curve = cost_performance_curve(
            horizon_s=20_000.0,
            percent_requests_hot=80.0,
            replica_counts=(0, 9),
            base_queue_length=40,
        )
        assert curve[0] == (0, 1.0)
        replicas, ratio = curve[1]
        assert replicas == 9
        assert 0.5 < ratio < 2.0  # sane range; shape asserted in benches
