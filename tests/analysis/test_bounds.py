"""Tests for the Theorem 2 bound helpers and greedy-vs-optimal gap."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    extension_round_trip_cost,
    harmonic,
    optimal_extension_cost,
    theorem2_bound,
)
from repro.core import EnvelopeComputer
from repro.layout import Replica
from repro.tape import EXB_8505XL
from repro.workload import RequestFactory

from ..core.conftest import catalog_from

BLOCK = 16.0


class TestHarmonic:
    def test_base_cases(self):
        assert harmonic(0) == 0.0
        assert harmonic(1) == 1.0
        assert harmonic(2) == pytest.approx(1.5)
        assert harmonic(4) == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            harmonic(-1)

    def test_monotone(self):
        values = [harmonic(n) for n in range(20)]
        assert values == sorted(values)


class TestRoundTripCost:
    def test_empty_positions_only_switch(self):
        assert extension_round_trip_cost(EXB_8505XL, 0.0, [], BLOCK, True) == 81.0
        assert extension_round_trip_cost(EXB_8505XL, 0.0, [], BLOCK, False) == 0.0

    def test_position_inside_envelope_rejected(self):
        with pytest.raises(ValueError):
            extension_round_trip_cost(EXB_8505XL, 100.0, [50.0], BLOCK, False)

    def test_includes_return_leg(self):
        cost = extension_round_trip_cost(EXB_8505XL, 100.0, [200.0], BLOCK, False)
        outbound = EXB_8505XL.locate_forward(100.0) + EXB_8505XL.read(BLOCK)
        back = EXB_8505XL.locate_reverse(116.0)
        assert cost == pytest.approx(outbound + back)


class TestOptimalExtension:
    def test_single_request_picks_cheaper_replica(self):
        replicas = [[Replica(0, 100.0), Replica(1, 6000.0)]]
        envelopes = {0: 50.0, 1: 50.0}
        optimal = optimal_extension_cost(EXB_8505XL, envelopes, replicas, BLOCK)
        near_only = optimal_extension_cost(
            EXB_8505XL, envelopes, [[Replica(0, 100.0)]], BLOCK
        )
        assert optimal == pytest.approx(near_only)

    def test_empty_is_free(self):
        assert optimal_extension_cost(EXB_8505XL, {}, [], BLOCK) == 0.0

    def test_clustering_beats_splitting(self):
        """Optimal assignment reads both blocks on the same tape when the
        alternative costs a tape switch round trip."""
        replicas = [
            [Replica(0, 100.0), Replica(1, 100.0)],
            [Replica(0, 116.0), Replica(1, 116.0)],
        ]
        envelopes = {0: 50.0, 1: 0.0}  # tape 1 would charge a switch
        optimal = optimal_extension_cost(
            EXB_8505XL, envelopes, replicas, BLOCK, mounted_id=0
        )
        same_tape = extension_round_trip_cost(
            EXB_8505XL, 50.0, [100.0, 116.0], BLOCK, charge_switch=False
        )
        assert optimal == pytest.approx(same_tape)


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_theorem2_bound_holds_on_random_instances(data):
    """Empirical Theorem 2: the envelope extension's total incremental
    cost stays within the harmonic-factor bound of the brute-force
    optimal extension."""
    tape_count = data.draw(st.integers(min_value=2, max_value=3))
    n_requests = data.draw(st.integers(min_value=1, max_value=4))
    rng = random.Random(data.draw(st.integers(min_value=0, max_value=10_000)))

    # Build replicated blocks with random placements; all requested.
    placements = []
    for _ in range(n_requests):
        tapes = rng.sample(range(tape_count), k=rng.randint(1, tape_count))
        placements.append(
            [(tape_id, float(rng.randrange(0, 400)) * BLOCK) for tape_id in tapes]
        )
    catalog = catalog_from(placements)
    factory = RequestFactory()
    requests = [
        factory.create(block_id=index, arrival_s=0.0) for index in range(n_requests)
    ]

    computer = EnvelopeComputer(
        timing=EXB_8505XL,
        catalog=catalog,
        tape_count=tape_count,
        mounted_id=0,
        head_mb=0.0,
    )
    state = computer.compute(requests)

    # Greedy cost: replay the final assignment as per-tape round trips
    # beyond the *initial* (step 1+2) envelope.
    initial = EnvelopeComputer(
        timing=EXB_8505XL,
        catalog=catalog,
        tape_count=tape_count,
        mounted_id=0,
        head_mb=0.0,
    )
    # Initial envelope: non-replicated pins only.
    init_env = {tape_id: 0.0 for tape_id in range(tape_count)}
    unscheduled = []
    for request in requests:
        replicas = catalog.replicas_of(request.block_id)
        if len(replicas) == 1:
            replica = replicas[0]
            init_env[replica.tape_id] = max(
                init_env[replica.tape_id], replica.position_mb + BLOCK
            )
    for request in requests:
        if not any(
            replica.position_mb + BLOCK <= init_env[replica.tape_id]
            for replica in catalog.replicas_of(request.block_id)
        ):
            unscheduled.append(request)
    if not unscheduled:
        return  # nothing for steps 3-6 to do; bound trivially holds

    per_tape = {}
    for request in unscheduled:
        replica = state.assignment[request.request_id]
        per_tape.setdefault(replica.tape_id, []).append(replica.position_mb)
    greedy_cost = 0.0
    for tape_id, positions in per_tape.items():
        outside = [p for p in positions if p >= init_env[tape_id]]
        if not outside:
            continue
        greedy_cost += extension_round_trip_cost(
            EXB_8505XL,
            init_env[tape_id],
            outside,
            BLOCK,
            charge_switch=(init_env[tape_id] == 0.0 and tape_id != 0),
        )

    optimal = optimal_extension_cost(
        EXB_8505XL,
        init_env,
        [catalog.replicas_of(request.block_id) for request in unscheduled],
        BLOCK,
        mounted_id=0,
    )
    n = len(unscheduled)
    bound = theorem2_bound(n, optimal, EXB_8505XL, BLOCK)
    assert greedy_cost <= bound + 1e-6
