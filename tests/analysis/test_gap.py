"""The optimality-gap layer: scenario matrix, ratios, campaign caching."""

import pytest

from repro.analysis.gap import (
    APPROX_POLICIES,
    DEFAULT_BASELINE,
    GapScenario,
    PAPER_HEURISTICS,
    compute_gap,
    gap_configs,
    gap_scenarios,
)
from repro.campaign import Campaign
from repro.core import scheduler_names
from repro.experiments.config import ExperimentConfig


TINY = 12_000.0


def tiny_scenarios():
    return [
        GapScenario(
            key="tiny",
            description="one small closed-queue scenario",
            config=ExperimentConfig(queue_length=20, horizon_s=TINY),
        )
    ]


class TestScenarioMatrix:
    def test_covers_every_regime(self):
        keys = {scenario.key for scenario in gap_scenarios()}
        assert {"q20", "q60", "q100"} <= keys  # queue sweep
        assert "nr4-vertical" in keys  # replication
        assert "faults" in keys
        assert "qos-guard" in keys
        assert "serpentine" in keys
        assert "multidrive" in keys

    def test_all_schedulers_are_registered(self):
        names = set(scheduler_names())
        assert DEFAULT_BASELINE in names
        assert set(PAPER_HEURISTICS) <= names
        assert set(APPROX_POLICIES) <= names

    def test_envelope_excluded_from_multidrive_only(self):
        for scenario in gap_scenarios():
            expected = scenario.config.drive_count == 1
            assert scenario.supports("envelope-max-bandwidth") is expected
            assert scenario.supports("dynamic-max-bandwidth")

    def test_configs_compile_to_one_flat_submission(self):
        scenarios = gap_scenarios()
        configs = gap_configs(scenarios, PAPER_HEURISTICS)
        # one baseline per scenario + each supported heuristic
        expected = sum(
            1 + sum(scenario.supports(name) for name in PAPER_HEURISTICS)
            for scenario in scenarios
        )
        assert len(configs) == expected
        assert len(set(configs)) == len(configs)  # no duplicate points


class TestComputeGap:
    def test_baseline_ratio_is_one_and_ratios_consistent(self):
        report = compute_gap(
            scenarios=tiny_scenarios(),
            schedulers=(DEFAULT_BASELINE, "fifo"),
        )
        assert report.baseline == DEFAULT_BASELINE
        (row,) = report.rows
        assert report.ratio("tiny", DEFAULT_BASELINE) == pytest.approx(1.0)
        fifo = row.cell("fifo")
        assert fifo.ratio == pytest.approx(
            fifo.mean_response_s / row.baseline_mean_s
        )
        assert report.worst_ratio("fifo") == fifo.ratio
        assert report.mean_ratio("fifo") == fifo.ratio

    def test_unknown_lookups_raise(self):
        report = compute_gap(
            scenarios=tiny_scenarios(), schedulers=("fifo",)
        )
        with pytest.raises(KeyError):
            report.ratio("nope", "fifo")
        with pytest.raises(KeyError):
            report.ratio("tiny", "not-a-scheduler")

    def test_cached_recompute_is_bit_identical(self, tmp_path):
        campaign = Campaign(cache_dir=tmp_path / "cache")
        first = compute_gap(
            scenarios=tiny_scenarios(),
            schedulers=("fifo",),
            campaign=campaign,
        )
        assert campaign.last_stats.executed > 0
        warm = Campaign(cache_dir=tmp_path / "cache")
        second = compute_gap(
            scenarios=tiny_scenarios(),
            schedulers=("fifo",),
            campaign=warm,
        )
        assert warm.last_stats.executed == 0  # everything served from cache
        assert warm.last_stats.cache_hits > 0
        assert first == second  # frozen dataclasses: full deep equality

    def test_format_gap_report_renders(self):
        from repro.report import format_gap_report

        report = compute_gap(
            scenarios=tiny_scenarios(), schedulers=("fifo",)
        )
        text = format_gap_report(report)
        assert "tiny" in text
        assert "fifo" in text
        assert "exact-batch" in text
