"""Tests for the closed-form sweep/throughput approximations."""

import random

import pytest

from repro.analysis.approximations import (
    estimate_closed_throughput,
    estimate_sweep,
    expected_max_position,
    requests_for_target_throughput,
)
from repro.core import sweep_cost
from repro.tape import EXB_8505XL

CAPACITY = 7 * 1024.0
BLOCK = 16.0


class TestExpectedMax:
    def test_zero_blocks(self):
        assert expected_max_position(0, 1000.0) == 0.0

    def test_one_block_halfway(self):
        assert expected_max_position(1, 1000.0) == pytest.approx(500.0)

    def test_many_blocks_approach_extent(self):
        assert expected_max_position(99, 1000.0) == pytest.approx(990.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            expected_max_position(-1, 100.0)


class TestEstimateSweep:
    def test_zero_blocks_only_switch(self):
        estimate = estimate_sweep(EXB_8505XL, 0, CAPACITY, BLOCK)
        assert estimate.service_s == 0.0
        assert estimate.cycle_s == pytest.approx(81.0)
        assert estimate.throughput_bytes_s == 0.0

    def test_matches_monte_carlo_sweeps(self):
        """Expected sweep cost within ~10% of averaged exact sweeps."""
        rng = random.Random(4)
        for k in (3, 10, 30):
            estimate = estimate_sweep(EXB_8505XL, k, CAPACITY, BLOCK)
            trials = []
            for _ in range(300):
                slots = rng.sample(range(int((CAPACITY - BLOCK) // BLOCK)), k)
                positions = [slot * BLOCK for slot in slots]
                cost = sweep_cost(EXB_8505XL, 0.0, positions, BLOCK)
                trials.append(
                    cost.total_s + EXB_8505XL.rewind(cost.end_head_mb) + 81.0
                )
            mean = sum(trials) / len(trials)
            assert estimate.cycle_s == pytest.approx(mean, rel=0.10), k

    def test_throughput_increases_with_batch(self):
        small = estimate_sweep(EXB_8505XL, 2, CAPACITY, BLOCK)
        large = estimate_sweep(EXB_8505XL, 20, CAPACITY, BLOCK)
        assert large.throughput_bytes_s > small.throughput_bytes_s
        assert large.seconds_per_request < small.seconds_per_request

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            estimate_sweep(EXB_8505XL, -1, CAPACITY, BLOCK)


class TestClosedThroughput:
    def test_matches_simulation_roughly(self):
        """Analytic prediction within ~20% of a real simulation under
        near-uniform access (RH = PH = 10)."""
        from repro.experiments import ExperimentConfig, run_experiment

        predicted = estimate_closed_throughput(EXB_8505XL, 60, 10, CAPACITY, BLOCK)
        simulated = run_experiment(
            ExperimentConfig(
                scheduler="static-round-robin",
                percent_requests_hot=10.0,
                queue_length=60,
                horizon_s=150_000,
            )
        ).throughput_kb_s
        assert predicted == pytest.approx(simulated, rel=0.20)

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_closed_throughput(EXB_8505XL, 0, 10, CAPACITY, BLOCK)


class TestTargetInversion:
    def test_round_trip(self):
        k = requests_for_target_throughput(EXB_8505XL, 200.0, CAPACITY, BLOCK)
        below = estimate_sweep(EXB_8505XL, k - 1, CAPACITY, BLOCK)
        at = estimate_sweep(EXB_8505XL, k, CAPACITY, BLOCK)
        assert at.throughput_bytes_s / 1024.0 >= 200.0
        assert below.throughput_bytes_s / 1024.0 < 200.0

    def test_unreachable_target(self):
        asymptotic_kb_s = 1024.0 / EXB_8505XL.read_s_per_mb
        with pytest.raises(ValueError):
            requests_for_target_throughput(
                EXB_8505XL, asymptotic_kb_s * 2, CAPACITY, BLOCK, max_k=400
            )

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            requests_for_target_throughput(EXB_8505XL, 0.0, CAPACITY, BLOCK)
