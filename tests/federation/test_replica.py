"""Cross-library replica registry: apportionment, homes, holders."""

import pytest

from repro.federation import FederationConfig, LibraryConfig, ReplicaRegistry
from repro.federation.replica import apportion


class TestApportion:
    def test_exact_split(self):
        assert apportion(10, [1.0, 1.0]) == [5, 5]

    def test_largest_remainder_gets_the_leftover(self):
        assert apportion(10, [1.0, 2.0]) == [3, 7]

    def test_ties_break_toward_lower_index(self):
        assert apportion(1, [1.0, 1.0]) == [1, 0]

    def test_zero_weight_gets_zero(self):
        assert apportion(7, [1.0, 0.0, 1.0]) == [4, 0, 3]

    def test_total_is_conserved(self):
        shares = apportion(97, [3.0, 1.0, 5.0, 2.0])
        assert sum(shares) == 97

    def test_rejects_nonpositive_weight_sum(self):
        with pytest.raises(ValueError):
            apportion(5, [0.0, 0.0])


def _registry(**overrides) -> ReplicaRegistry:
    defaults = dict(
        libraries=(
            LibraryConfig(tape_count=4, capacity_mb=512.0),
            LibraryConfig(tape_count=8, capacity_mb=512.0),
        ),
        block_mb=16.0,
        queue_length=60,
    )
    defaults.update(overrides)
    return ReplicaRegistry(FederationConfig(**defaults))


class TestRegistryLayout:
    def test_slots_follow_library_hardware(self):
        registry = _registry()
        assert registry.slots == (4 * 32, 8 * 32)
        assert registry.fleet_slots == 384

    def test_homes_partition_the_catalog(self):
        registry = _registry()
        by_home = [0] * registry.size
        for block in range(registry.n_logical):
            by_home[registry.home(block)] += 1
        assert by_home[0] == registry.hot_counts[0] + registry.cold_counts[0]
        assert by_home[1] == registry.hot_counts[1] + registry.cold_counts[1]
        assert sum(by_home) == registry.n_logical

    def test_hot_blocks_lead_the_catalog(self):
        registry = _registry()
        assert registry.is_hot(0)
        assert registry.is_hot(registry.n_hot - 1)
        assert not registry.is_hot(registry.n_hot)

    def test_home_is_proportional_to_slots(self):
        registry = _registry()
        # Library 1 has twice the slots, so roughly twice the homes.
        assert registry.hot_counts[1] == pytest.approx(
            2 * registry.hot_counts[0], abs=1
        )

    def test_out_of_range_block_raises(self):
        registry = _registry()
        with pytest.raises(ValueError):
            registry.home(registry.n_logical)

    def test_tiny_capacity_raises(self):
        with pytest.raises(ValueError, match="holds no blocks"):
            _registry(
                libraries=(
                    LibraryConfig(capacity_mb=8.0),
                    LibraryConfig(),
                )
            )


class TestHolders:
    def test_cold_blocks_have_one_holder(self):
        registry = _registry(fleet_replicas=1, placement="spread")
        cold = registry.n_hot
        assert registry.holders(cold) == (registry.home(cold),)

    def test_home_placement_keeps_copies_local(self):
        registry = _registry(fleet_replicas=1, placement="home")
        assert registry.holders(0) == (registry.home(0),)

    def test_spread_adds_the_next_libraries(self):
        registry = _registry(fleet_replicas=1, placement="spread")
        home = registry.home(0)
        assert registry.holders(0) == (home, (home + 1) % registry.size)

    def test_no_replicas_means_one_holder(self):
        registry = _registry(fleet_replicas=0, placement="spread")
        assert registry.holders(0) == (registry.home(0),)


class TestLocalLayout:
    def test_home_placement_preserves_fleet_ph_and_nr(self):
        registry = _registry(fleet_replicas=2, placement="home")
        for index in range(registry.size):
            assert registry.local_percent_hot(index) == 10.0
            assert registry.local_replicas(index) == 2

    def test_spread_boosts_ph_and_zeroes_local_nr(self):
        registry = _registry(fleet_replicas=1, placement="spread")
        for index in range(registry.size):
            assert registry.local_percent_hot(index) > 10.0
            assert registry.local_replicas(index) == 0

    def test_spread_counts_incoming_copies(self):
        registry = _registry(fleet_replicas=1, placement="spread")
        # Each library stores its own primaries plus the other's copies.
        assert registry.local_hot_stored(0) == (
            registry.hot_counts[0] + registry.hot_counts[1]
        )
