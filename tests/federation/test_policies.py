"""Global routing policies and their string-keyed registry."""

import pytest

from repro.federation import (
    FleetState,
    global_policy_names,
    make_global_policy,
)
from repro.federation.policies import (
    LeastQueuePolicy,
    PassThroughPolicy,
    PredictedServicePolicy,
    RoundRobinPolicy,
)


class TestRegistry:
    def test_names_are_sorted_and_complete(self):
        names = global_policy_names()
        assert names == sorted(names)
        assert set(names) == {
            "pass-through",
            "round-robin",
            "least-queue",
            "predicted-service",
        }

    def test_factory_builds_each_policy(self):
        for name in global_policy_names():
            assert make_global_policy(name).name == name

    def test_factory_rejects_unknown_name(self):
        with pytest.raises(KeyError, match="unknown global policy"):
            make_global_policy("oracle")

    def test_only_pass_through_bypasses_routing(self):
        bypassing = [
            name
            for name in global_policy_names()
            if make_global_policy(name).bypass_routing
        ]
        assert bypassing == ["pass-through"]


class TestRoundRobin:
    def test_rotates_over_holders(self):
        policy = RoundRobinPolicy()
        state = FleetState(routed=[0, 0, 0])
        picks = [policy.route(0, (0, 2), state) for _ in range(4)]
        assert picks == [0, 2, 0, 2]

    def test_sequence_spans_holder_sets(self):
        policy = RoundRobinPolicy()
        state = FleetState(routed=[0, 0])
        first = policy.route(0, (0, 1), state)
        second = policy.route(7, (1,), state)
        third = policy.route(0, (0, 1), state)
        assert (first, second, third) == (0, 1, 0)


class TestLeastQueue:
    def test_picks_the_shortest_queue(self):
        policy = LeastQueuePolicy()
        state = FleetState(routed=[5, 2, 9])
        assert policy.route(0, (0, 1, 2), state) == 1

    def test_ties_break_toward_lower_index(self):
        policy = LeastQueuePolicy()
        state = FleetState(routed=[3, 3])
        assert policy.route(0, (0, 1), state) == 0

    def test_only_holders_are_considered(self):
        policy = LeastQueuePolicy()
        state = FleetState(routed=[0, 9, 9])
        assert policy.route(0, (1, 2), state) == 1


class TestPredictedService:
    def test_prefers_faster_library_under_equal_depth(self):
        policy = PredictedServicePolicy()
        state = FleetState(routed=[0, 0], predicted_service_s=(10.0, 2.0))
        assert policy.route(0, (0, 1), state) == 1

    def test_depth_eventually_outweighs_speed(self):
        policy = PredictedServicePolicy()
        state = FleetState(routed=[0, 9], predicted_service_s=(10.0, 2.0))
        # (0+1)*10 = 10 < (9+1)*2 = 20 -> the slow-but-idle library wins.
        assert policy.route(0, (0, 1), state) == 0

    def test_falls_back_to_least_queue_without_estimates(self):
        policy = PredictedServicePolicy()
        state = FleetState(routed=[4, 1])
        assert policy.route(0, (0, 1), state) == 1


class TestPassThrough:
    def test_routes_to_the_single_holder(self):
        policy = PassThroughPolicy()
        state = FleetState(routed=[0])
        assert policy.route(0, (0,), state) == 0
