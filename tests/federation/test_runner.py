"""Federated executor: routing, farm equivalence, determinism.

The pass-through golden digest below pins the bit-identity acceptance
criterion: a 1-library federation routed through the global tier must
reproduce *byte for byte* the report of the equivalent farm run (and
both are pinned, so drift in either path fails loudly).
"""

import pytest

from repro.experiments import ExperimentConfig
from repro.federation import (
    FederationConfig,
    LibraryConfig,
    ReplicaRegistry,
    make_global_policy,
    route_fleet,
    run_federation,
)
from repro.federation.report import federation_report_digest
from repro.service.farm import _run_farm
from repro.service.metrics import report_digest

#: Pinned on the tree that introduced repro.federation; the same digest
#: must come out of both the farm path and the pass-through federation.
PASS_THROUGH_GOLDEN = (
    "8982dcd263ac6513fc22a596e5d8d0c120920df13455b020177694a11907b6bb"
)

FAST_FED = dict(
    libraries=(LibraryConfig(),),
    global_policy="pass-through",
    placement="home",
    fleet_replicas=0,
    queue_length=24,
    horizon_s=50_000.0,
)


class TestPassThroughBitIdentity:
    def test_matches_the_farm_golden(self):
        result = run_federation(FederationConfig(**FAST_FED))
        assert report_digest(result.report.per_library[0]) == PASS_THROUGH_GOLDEN

    def test_farm_path_agrees(self):
        base = ExperimentConfig(queue_length=24, horizon_s=50_000.0)
        farm = _run_farm(base, 1, 24)
        assert report_digest(farm.per_jukebox[0]) == PASS_THROUGH_GOLDEN

    def test_pass_through_rejects_multi_library_fleets(self):
        config = FederationConfig(**{**FAST_FED, "libraries": (
            LibraryConfig(), LibraryConfig(),
        )})
        with pytest.raises(ValueError, match="exactly one library"):
            run_federation(config)


class TestRouting:
    def test_is_deterministic(self):
        config = FederationConfig(horizon_s=20_000.0, routing_samples=512)
        registry = ReplicaRegistry(config)
        first = route_fleet(config, registry, make_global_policy("least-queue"))
        second = route_fleet(config, registry, make_global_policy("least-queue"))
        assert first == second

    def test_routes_every_sample(self):
        config = FederationConfig(horizon_s=20_000.0, routing_samples=512)
        registry = ReplicaRegistry(config)
        routed, hot_routed = route_fleet(
            config, registry, make_global_policy("round-robin")
        )
        assert sum(routed) == 512
        assert all(0 <= h <= r for h, r in zip(hot_routed, routed))

    def test_predicted_service_favors_the_fast_library(self):
        config = FederationConfig(
            libraries=(
                LibraryConfig(drive_count=1, drive_speedup=0.5),
                LibraryConfig(drive_count=3, drive_speedup=2.0),
            ),
            global_policy="predicted-service",
            fleet_replicas=1,
            percent_requests_hot=80.0,
            horizon_s=20_000.0,
            routing_samples=512,
        )
        registry = ReplicaRegistry(config)
        routed, _hot = route_fleet(
            config, registry, make_global_policy("predicted-service")
        )
        assert routed[1] > routed[0]


class TestRunFederation:
    def test_report_aligns_with_the_fleet(self):
        config = FederationConfig(horizon_s=20_000.0, queue_length=10)
        result = run_federation(config)
        assert len(result.report.per_library) == config.size
        assert len(result.report.routed_requests) == config.size
        assert result.report.policy == "round-robin"
        assert result.aggregate_throughput_kb_s > 0

    def test_same_config_same_digest(self):
        config = FederationConfig(horizon_s=20_000.0, queue_length=10)
        assert federation_report_digest(
            run_federation(config).report
        ) == federation_report_digest(run_federation(config).report)

    def test_unrouted_library_reports_idle_zeroes(self):
        # A zero-weight library must produce an aligned all-zero report,
        # not be skipped.  Force it by giving library 1 nothing: one
        # request total cannot happen (queue >= size), so instead use a
        # least-queue fleet where routing is even but the queue split
        # can still zero out under extreme apportionment -- simplest
        # deterministic trigger is a 2-library fleet with queue_length 2
        # and a manual check of the idle-report helper.
        from repro.federation.runner import _idle_report

        report = _idle_report(FederationConfig(horizon_s=20_000.0))
        assert report.completed == 0
        assert report.throughput_kb_s == 0.0

    def test_obs_traces_library_zero(self):
        from repro.obs import Tracer

        tracer = Tracer()
        config = FederationConfig(horizon_s=20_000.0, queue_length=10)
        result = run_federation(config, obs=tracer)
        assert result.report.traces == [tracer]
        assert list(tracer.terminal_traces()), "library 0 produced no traces"
