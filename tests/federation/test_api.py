"""The unified run surface: dispatch by config kind, deprecation shims."""

import warnings

import pytest

from repro.api import _DEPRECATIONS_EMITTED, run
from repro.experiments import ExperimentConfig
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.federation import FederationConfig, LibraryConfig
from repro.federation.runner import FederationResult
from repro.service.farm import FarmConfig, FarmResult, run_farm

FAST = dict(queue_length=5, horizon_s=5_000.0, tape_count=4, capacity_mb=500.0)


class TestDispatch:
    def test_experiment_config_runs_an_experiment(self):
        result = run(ExperimentConfig(**FAST))
        assert isinstance(result, ExperimentResult)
        assert result.report.completed > 0

    def test_farm_config_runs_a_farm(self):
        result = run(FarmConfig(ExperimentConfig(**FAST), 2, 10))
        assert isinstance(result, FarmResult)
        assert result.report.size == 2

    def test_federation_config_runs_a_federation(self):
        config = FederationConfig(
            libraries=(LibraryConfig(tape_count=4, capacity_mb=500.0),),
            global_policy="pass-through",
            placement="home",
            queue_length=5,
            horizon_s=5_000.0,
        )
        result = run(config)
        assert isinstance(result, FederationResult)
        assert result.report.size == 1

    def test_unknown_config_type_raises(self):
        with pytest.raises(TypeError, match="accepts ExperimentConfig"):
            run({"queue_length": 5})

    def test_experiment_rejects_tracer_factory(self):
        with pytest.raises(TypeError, match="tracer_factory"):
            run(ExperimentConfig(**FAST), tracer_factory=lambda index: None)


class TestDeprecationShims:
    def _reset(self):
        _DEPRECATIONS_EMITTED.clear()

    def test_run_experiment_warns_once_and_matches_run(self):
        self._reset()
        config = ExperimentConfig(**FAST)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shimmed = run_experiment(config)
            run_experiment(config)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "repro.api.run" in str(deprecations[0].message)
        assert shimmed.report == run(config).report

    def test_run_farm_warns_once_and_matches_run(self):
        self._reset()
        base = ExperimentConfig(**FAST)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shimmed = run_farm(base, 2, 10)
            run_farm(base, 2, 10)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert shimmed.per_jukebox == run(FarmConfig(base, 2, 10)).report.per_jukebox

    def test_shims_warn_independently(self):
        self._reset()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            run_experiment(ExperimentConfig(**FAST))
            run_farm(ExperimentConfig(**FAST), 1, 5)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 2
