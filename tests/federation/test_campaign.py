"""Federation points through the campaign engine: cache, resume, hashing."""

import json

import pytest

from repro.campaign import Campaign, ResultCache
from repro.campaign.hashing import config_digest
from repro.experiments import ExperimentConfig
from repro.experiments.store import result_from_dict, result_to_dict
from repro.federation import FederationConfig, LibraryConfig
from repro.federation.report import federation_report_digest
from repro.federation.runner import FederationResult

FED = FederationConfig(
    libraries=(
        LibraryConfig(tape_count=4, capacity_mb=500.0),
        LibraryConfig(tape_count=4, capacity_mb=500.0, drive_count=2),
    ),
    global_policy="least-queue",
    queue_length=6,
    horizon_s=5_000.0,
)


class TestHashing:
    def test_digest_covers_fleet_knobs(self):
        base = config_digest(FED)
        assert config_digest(FED.with_(global_policy="round-robin")) != base
        assert config_digest(FED.with_(fleet_replicas=1)) != base
        assert config_digest(
            FED.with_(libraries=(FED.libraries[0],), queue_length=6)
        ) != base

    def test_kinds_never_collide(self):
        experiment = ExperimentConfig()
        assert config_digest(experiment) != config_digest(FED)


class TestResultRoundTrip:
    def test_document_round_trips(self):
        from repro.api import run

        result = run(FED)
        payload = json.loads(json.dumps(result_to_dict(result)))
        assert payload["kind"] == "federation"
        restored = result_from_dict(payload)
        assert isinstance(restored, FederationResult)
        assert restored.config == FED
        assert federation_report_digest(restored.report) == (
            federation_report_digest(result.report)
        )

    def test_stale_schema_is_rejected(self):
        from repro.api import run

        payload = result_to_dict(run(FED))
        payload["schema"] = "0000000000000000"
        with pytest.raises(ValueError, match="schema mismatch"):
            result_from_dict(payload)


class TestCampaignCache:
    def test_second_submission_hits_the_cache(self, tmp_path):
        first = Campaign(cache_dir=tmp_path).submit([FED])
        assert first.stats.executed == 1
        second = Campaign(cache_dir=tmp_path).submit([FED])
        assert second.stats.cache_hits == 1
        assert second.stats.executed == 0
        assert federation_report_digest(second.results[0].report) == (
            federation_report_digest(first.results[0].report)
        )

    def test_cache_is_keyed_by_fleet_config(self, tmp_path):
        Campaign(cache_dir=tmp_path).submit([FED])
        submission = Campaign(cache_dir=tmp_path).submit(
            [FED.with_(global_policy="round-robin")]
        )
        assert submission.stats.cache_hits == 0
        assert submission.stats.executed == 1

    def test_salt_bump_invalidates_federation_entries(self, tmp_path):
        cache = ResultCache(tmp_path, salt="v1")
        from repro.api import run

        cache.put(run(FED))
        assert ResultCache(tmp_path, salt="v1").get(FED) is not None
        assert ResultCache(tmp_path, salt="v2").get(FED) is None

    def test_mixed_kind_submission(self, tmp_path):
        experiment = ExperimentConfig(
            queue_length=5, horizon_s=5_000.0, tape_count=4, capacity_mb=500.0
        )
        submission = Campaign(cache_dir=tmp_path).submit([FED, experiment])
        assert len(submission.results) == 2
        assert submission.require(FED).report.size == 2
        assert submission.require(experiment).report.completed > 0


class TestCampaignResume:
    def test_journal_resume_skips_the_finished_point(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        campaign = Campaign(cache_dir=tmp_path / "cache", journal_path=journal)
        campaign.submit([FED])
        resumed = Campaign(
            cache_dir=tmp_path / "cache", journal_path=journal
        ).submit([FED, FED.with_(seed=7)], resume=True)
        assert resumed.stats.executed == 1  # only the new seed runs
        assert len(resumed.results) == 2
