"""FederationConfig / LibraryConfig validation and JSON round trips."""

import json

import pytest

from repro.experiments.store import (
    federation_config_from_dict,
    federation_config_to_dict,
)
from repro.faults import FaultConfig
from repro.federation import FederationConfig, LibraryConfig
from repro.qos import QoSConfig


class TestLibraryValidation:
    def test_defaults_are_valid(self):
        library = LibraryConfig()
        assert library.tape_count == 10
        assert library.drive_count == 1

    @pytest.mark.parametrize(
        "overrides",
        [
            {"tape_count": 0},
            {"capacity_mb": 0.0},
            {"drive_count": 0},
            {"drive_speedup": 0.0},
            {"drive_technology": "laser"},
        ],
    )
    def test_rejects_bad_fields(self, overrides):
        with pytest.raises(ValueError):
            LibraryConfig(**overrides)


class TestFederationValidation:
    def test_defaults_are_a_homogeneous_pair(self):
        config = FederationConfig()
        assert config.size == 2
        assert config.libraries[0] == config.libraries[1]
        assert config.is_closed

    def test_libraries_sequence_is_normalized_to_tuple(self):
        config = FederationConfig(libraries=[LibraryConfig()], queue_length=60)
        assert isinstance(config.libraries, tuple)
        hash(config)  # stays usable as a campaign submission key

    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError, match="at least one library"):
            FederationConfig(libraries=())

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown global policy"):
            FederationConfig(global_policy="clairvoyant")

    def test_rejects_unknown_placement(self):
        with pytest.raises(ValueError, match="placement"):
            FederationConfig(placement="nearby")

    def test_spread_caps_replicas_at_size_minus_one(self):
        FederationConfig(placement="spread", fleet_replicas=1)
        with pytest.raises(ValueError, match="spread placement"):
            FederationConfig(placement="spread", fleet_replicas=2)

    def test_home_caps_replicas_below_smallest_tape_count(self):
        FederationConfig(placement="home", fleet_replicas=9)
        with pytest.raises(ValueError, match="home placement"):
            FederationConfig(placement="home", fleet_replicas=10)

    def test_queue_must_cover_every_library(self):
        with pytest.raises(ValueError, match="queue_length"):
            FederationConfig(queue_length=1)

    def test_describe_mentions_fleet_shape(self):
        text = FederationConfig(fleet_replicas=1).describe()
        assert text.startswith("FED-2 ")
        assert "NR-1/spread" in text

    def test_with_returns_modified_copy(self):
        base = FederationConfig()
        other = base.with_(queue_length=90)
        assert other.queue_length == 90
        assert base.queue_length == 60


class TestJsonRoundTrip:
    def test_plain_config(self):
        config = FederationConfig(
            libraries=(
                LibraryConfig(drive_count=2, drive_speedup=1.5),
                LibraryConfig(drive_technology="serpentine"),
            ),
            global_policy="least-queue",
            placement="home",
            fleet_replicas=2,
        )
        payload = json.loads(json.dumps(federation_config_to_dict(config)))
        assert federation_config_from_dict(payload) == config

    def test_nested_faults_and_qos(self):
        config = FederationConfig(
            faults=FaultConfig(media_error_rate=0.01),
            qos=QoSConfig(),
        )
        payload = json.loads(json.dumps(federation_config_to_dict(config)))
        restored = federation_config_from_dict(payload)
        assert restored == config
        assert isinstance(restored.faults, FaultConfig)
        assert isinstance(restored.qos, QoSConfig)

    def test_library_heterogeneity_survives(self):
        config = FederationConfig(
            libraries=(
                LibraryConfig(tape_count=4, capacity_mb=500.0),
                LibraryConfig(tape_count=16, scheduler="fifo"),
            )
        )
        restored = federation_config_from_dict(
            json.loads(json.dumps(federation_config_to_dict(config)))
        )
        assert restored.libraries == config.libraries
        assert restored.libraries[1].scheduler == "fifo"
