"""Tests for the durable campaign journal (``repro-journal/1``)."""

import json
import os

import pytest

from repro.campaign import (
    JOURNAL_SCHEMA,
    CampaignJournal,
    JournalCompatError,
)


def _lines(path):
    return [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]


class TestFormat:
    def test_fresh_open_writes_header(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl", salt="s1")
        journal.open(fresh=True)
        journal.close()
        header = _lines(tmp_path / "j.jsonl")[0]
        assert header["schema"] == JOURNAL_SCHEMA
        assert header["salt"] == "s1"

    def test_append_open_keeps_existing_records(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            journal.record_start("aa", 1)
        with CampaignJournal(path) as journal:
            journal.record_done("aa", 1, 0.5)
        events = [line.get("event") for line in _lines(path)]
        assert events == [None, "start", "done"]  # header has no event

    def test_fresh_open_truncates(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            journal.record_start("aa", 1)
        journal = CampaignJournal(path)
        journal.open(fresh=True)
        journal.close()
        assert [line.get("event") for line in _lines(path)] == [None]

    def test_records_are_single_lines(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            journal.record_start("aa", 1)
            journal.record_done("aa", 1, 1.234567)
            journal.record_failed("bb", 3, "RuntimeError")
            journal.record_requeued("cc", 1, "WorkerCrashError")
            journal.record_resume(done=1, in_flight=1, failed=0)
            journal.record_interrupted(2)
            journal.record_abort("testing")
        assert len(_lines(path)) == 8  # header + 7 records


class TestReplay:
    def test_lifecycle_last_event_wins(self, tmp_path):
        with CampaignJournal(tmp_path / "j.jsonl") as journal:
            journal.record_start("done-pt", 1)
            journal.record_done("done-pt", 1, 2.0)
            journal.record_start("flight-pt", 1)
            journal.record_requeued("flight-pt", 1, "WorkerCrashError")
            journal.record_start("failed-pt", 1)
            journal.record_failed("failed-pt", 2, "ValueError")
            state = journal.load_state()
        assert state.classify("done-pt") == "done"
        assert state.done["done-pt"] == 2.0
        assert state.classify("flight-pt") == "in-flight"
        assert state.classify("failed-pt") == "failed"
        assert state.failed["failed-pt"] == "ValueError"
        assert state.classify("never-seen") == "unknown"

    def test_attempts_carry_the_maximum(self, tmp_path):
        with CampaignJournal(tmp_path / "j.jsonl") as journal:
            journal.record_start("aa", 1)
            journal.record_requeued("aa", 1, "WorkerCrashError")
            journal.record_start("aa", 2)
            state = journal.load_state()
        assert state.attempts["aa"] == 2
        assert state.in_flight["aa"] == 2

    def test_interrupt_and_abort_flags(self, tmp_path):
        with CampaignJournal(tmp_path / "j.jsonl") as journal:
            journal.record_interrupted(3)
            journal.record_abort("breaker")
            state = journal.load_state()
        assert state.interrupted and state.aborted

    def test_missing_journal_loads_empty(self, tmp_path):
        state = CampaignJournal(tmp_path / "absent.jsonl").load_state()
        assert not state.done and not state.in_flight
        assert not CampaignJournal(tmp_path / "absent.jsonl").exists()


class TestCorruptionTolerance:
    def test_garbage_and_torn_lines_are_counted_not_fatal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            journal.record_done("aa", 1, 1.0)
        with open(path, "ab") as handle:
            handle.write(b"\x00\xffnot json at all\n")
            handle.write(b'{"event":"done","digest":42,"attempt":1}\n')
            handle.write(b'["event", "not-a-dict"]\n')
            handle.write(b'{"event":"start","digest":"bb","attempt":1')
        state = CampaignJournal(path).load_state()
        assert state.classify("aa") == "done"
        assert state.corrupt_lines == 4
        assert "bb" not in state.in_flight  # the torn tail never replays

    def test_unknown_event_counts_as_corrupt(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            journal.record_done("aa", 1, 1.0)
        with open(path, "ab") as handle:
            handle.write(b'{"event":"teleported","digest":"aa"}\n')
        state = CampaignJournal(path).load_state()
        assert state.corrupt_lines == 1
        assert state.classify("aa") == "done"

    def test_failed_append_degrades_to_broken_not_raise(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path)
        journal.open(fresh=True)
        os.close(journal._fd)
        # Point the journal at a read-only descriptor: every append now
        # fails the way a full disk would.
        journal._fd = os.open(path, os.O_RDONLY)
        journal.record_done("aa", 1, 1.0)
        assert journal.broken is not None
        journal.record_done("bb", 1, 1.0)  # still a no-op, still no raise
        journal.close()
        assert [line.get("event") for line in _lines(path)] == [None]


class TestCompatibility:
    def test_salt_mismatch_is_refused(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path, salt="old") as journal:
            journal.record_done("aa", 1, 1.0)
        with pytest.raises(JournalCompatError, match="salt"):
            CampaignJournal(path, salt="new").load_state()

    def test_schema_mismatch_is_refused(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"schema": "repro-journal/999", "salt": "s"}\n')
        with pytest.raises(JournalCompatError, match="schema"):
            CampaignJournal(path, salt="s").load_state()

    def test_non_strict_load_salvages_other_salt(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path, salt="old") as journal:
            journal.record_done("aa", 1, 1.0)
        state = CampaignJournal(path, salt="new").load_state(
            strict_salt=False
        )
        assert state.classify("aa") == "done"

    def test_headerless_journal_is_salvage_not_refusal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"event":"done","digest":"aa","attempt":1}\n')
        state = CampaignJournal(path).load_state()
        assert state.classify("aa") == "done"
