"""Per-point wall-clock timeouts: a hung worker becomes an error record."""

import time

import pytest

from repro.campaign import Campaign, PointTimeoutError
from repro.campaign.engine import _wall_clock_limit
from repro.experiments import ExperimentConfig, run_experiment

BASE = ExperimentConfig(
    queue_length=5, horizon_s=5_000.0, tape_count=4, capacity_mb=500.0
)


def _hanging_runner(config):
    """Module-level (hence picklable) runner that hangs on one point."""
    if config.queue_length == 10:
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:  # un-cooperative busy loop
            pass
    return run_experiment(config)


def _grid(count: int = 3):
    return [BASE.with_(queue_length=5 * (index + 1)) for index in range(count)]


class TestWallClockLimit:
    def test_interrupts_a_busy_loop(self):
        with pytest.raises(PointTimeoutError):
            with _wall_clock_limit(0.05):
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    pass

    def test_no_timeout_is_a_no_op(self):
        with _wall_clock_limit(None):
            pass

    def test_fast_work_passes_and_disarms(self):
        with _wall_clock_limit(5.0):
            value = 1 + 1
        # The timer must be disarmed: sleeping past nothing raises nothing.
        time.sleep(0.01)
        assert value == 2

    def test_off_main_thread_warns_and_degrades_to_no_op(self):
        # SIGALRM can only be armed on the Unix main thread; elsewhere
        # the limit must degrade loudly instead of raising ValueError
        # (the supervisor's deadline kill is the backstop there).
        import threading
        import warnings

        outcome = {}

        def run():
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                try:
                    with _wall_clock_limit(0.05):
                        time.sleep(0.15)  # well past the "limit"
                    outcome["raised"] = False
                except PointTimeoutError:
                    outcome["raised"] = True
                outcome["warnings"] = [str(w.message) for w in caught]

        thread = threading.Thread(target=run)
        thread.start()
        thread.join(timeout=10.0)
        assert outcome["raised"] is False
        assert any(
            "off the main thread" in message
            for message in outcome["warnings"]
        )


class TestCampaignTimeouts:
    def test_rejects_non_positive_timeout(self):
        with pytest.raises(ValueError):
            Campaign(point_timeout_s=0.0)

    def test_hung_point_becomes_error_record(self):
        campaign = Campaign(runner=_hanging_runner, point_timeout_s=0.5)
        configs = _grid(3)
        submission = campaign.submit(configs)
        hung = configs[1]
        failure = submission.failure_for(hung)
        assert failure is not None
        assert failure.error == "PointTimeoutError"
        # The other points still ran to completion.
        assert submission.result_for(configs[0]) is not None
        assert submission.result_for(configs[2]) is not None
        assert submission.stats.failures == 1

    def test_hung_point_in_parallel_batch(self):
        campaign = Campaign(
            jobs=2, runner=_hanging_runner, point_timeout_s=0.5
        )
        configs = _grid(3)
        submission = campaign.submit(configs)
        assert submission.failure_for(configs[1]).error == "PointTimeoutError"
        assert len(submission.results) == 2

    def test_timeouts_are_not_cached(self, tmp_path):
        campaign = Campaign(
            runner=_hanging_runner, point_timeout_s=0.5, cache_dir=tmp_path
        )
        configs = _grid(3)
        campaign.submit(configs)
        # Re-submit without the hang: the timed-out point must re-run
        # (a cache hit would replay the failure forever).
        retry = Campaign(runner=run_experiment, cache_dir=tmp_path)
        submission = retry.submit(configs)
        assert submission.stats.cache_hits == 2
        assert submission.stats.executed == 1
        assert submission.result_for(configs[1]) is not None

    def test_generous_timeout_changes_nothing(self):
        configs = _grid(2)
        plain = Campaign().submit(configs)
        timed = Campaign(point_timeout_s=300.0).submit(configs)
        for config in configs:
            assert (
                timed.require(config).report == plain.require(config).report
            )
