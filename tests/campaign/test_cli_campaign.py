"""Tests for the shared CLI campaign flags (--jobs/--cache-dir/--no-cache/--progress)."""

from repro.cli import main

SWEEP = [
    "sweep", "--tapes", "4", "--queues", "5,10", "--horizon", "5000",
]


class TestSweepFlags:
    def test_parallel_sweep_matches_serial(self, capsys):
        assert main(SWEEP) == 0
        serial_out = capsys.readouterr().out
        assert main(SWEEP + ["--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out

    def test_cache_dir_serves_second_invocation(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(SWEEP + ["--cache-dir", cache, "--progress"]) == 0
        first = capsys.readouterr()
        assert "2 executed" in first.err
        assert main(SWEEP + ["--cache-dir", cache, "--progress"]) == 0
        second = capsys.readouterr()
        assert "2 cache hits" in second.err
        assert "0 executed" in second.err
        assert second.out == first.out

    def test_no_cache_overrides_cache_dir(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(SWEEP + ["--cache-dir", cache, "--no-cache"]) == 0
        capsys.readouterr()
        assert not (tmp_path / "cache").exists()

    def test_progress_lines_on_stderr(self, capsys):
        assert main(SWEEP + ["--progress"]) == 0
        captured = capsys.readouterr()
        assert "[1/2]" in captured.err
        assert "[2/2]" in captured.err
        assert "[1/2]" not in captured.out


class TestRunFlags:
    RUN = ["run", "--tapes", "4", "--queue", "5", "--horizon", "5000"]

    def test_run_accepts_campaign_flags(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(self.RUN + ["--cache-dir", cache]) == 0
        first = capsys.readouterr().out
        assert main(self.RUN + ["--cache-dir", cache, "--progress"]) == 0
        second = capsys.readouterr()
        assert second.out == first
        assert "1 cache hits" in second.err

    def test_env_cache_dir_respected(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        assert main(self.RUN) == 0
        capsys.readouterr()
        assert (tmp_path / "envcache").exists()
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "ignored"))
        assert main(self.RUN + ["--no-cache"]) == 0
        capsys.readouterr()
        assert not (tmp_path / "ignored").exists()


class TestFigureFlags:
    def test_analytic_figure_accepts_campaign_flags(self, capsys):
        assert main(["figure", "10a", "--jobs", "2"]) == 0
        assert "PH-10" in capsys.readouterr().out

    def test_simulated_figure_with_cache(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        argv = [
            "figure", "3", "--horizon", "5000",
            "--jobs", "2", "--cache-dir", cache, "--progress",
        ]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert main(argv) == 0
        second = capsys.readouterr()
        assert second.out == first.out
        assert "0 executed" in second.err
