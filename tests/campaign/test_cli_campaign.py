"""Tests for the shared CLI campaign flags (--jobs/--cache-dir/--no-cache/--progress)."""

import pytest

from repro.campaign import Campaign
from repro.cli import main
from repro.experiments import run_experiment

SWEEP = [
    "sweep", "--tapes", "4", "--queues", "5,10", "--horizon", "5000",
]


class TestSweepFlags:
    def test_parallel_sweep_matches_serial(self, capsys):
        assert main(SWEEP) == 0
        serial_out = capsys.readouterr().out
        assert main(SWEEP + ["--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out

    def test_cache_dir_serves_second_invocation(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(SWEEP + ["--cache-dir", cache, "--progress"]) == 0
        first = capsys.readouterr()
        assert "2 executed" in first.err
        assert main(SWEEP + ["--cache-dir", cache, "--progress"]) == 0
        second = capsys.readouterr()
        assert "2 cache hits" in second.err
        assert "0 executed" in second.err
        assert second.out == first.out

    def test_no_cache_overrides_cache_dir(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(SWEEP + ["--cache-dir", cache, "--no-cache"]) == 0
        capsys.readouterr()
        assert not (tmp_path / "cache").exists()

    def test_progress_lines_on_stderr(self, capsys):
        assert main(SWEEP + ["--progress"]) == 0
        captured = capsys.readouterr()
        assert "[1/2]" in captured.err
        assert "[2/2]" in captured.err
        assert "[1/2]" not in captured.out


class TestRunFlags:
    RUN = ["run", "--tapes", "4", "--queue", "5", "--horizon", "5000"]

    def test_run_accepts_campaign_flags(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(self.RUN + ["--cache-dir", cache]) == 0
        first = capsys.readouterr().out
        assert main(self.RUN + ["--cache-dir", cache, "--progress"]) == 0
        second = capsys.readouterr()
        assert second.out == first
        assert "1 cache hits" in second.err

    def test_env_cache_dir_respected(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        assert main(self.RUN) == 0
        capsys.readouterr()
        assert (tmp_path / "envcache").exists()
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "ignored"))
        assert main(self.RUN + ["--no-cache"]) == 0
        capsys.readouterr()
        assert not (tmp_path / "ignored").exists()


def _failing_runner(config):
    if config.queue_length == 10:
        raise RuntimeError("synthetic point failure")
    return run_experiment(config)


class _FailingCampaign(Campaign):
    """A Campaign whose runner fails one point (injected under the CLI)."""

    def __init__(self, **kwargs):
        kwargs["runner"] = _failing_runner
        super().__init__(**kwargs)


class TestFailureExit:
    def test_failed_point_exits_nonzero_with_summary(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setattr("repro.campaign.Campaign", _FailingCampaign)
        cache = str(tmp_path / "cache")
        assert main(SWEEP + ["--cache-dir", cache]) != 0
        err = capsys.readouterr().err
        assert "campaign failed: 1 of 2 point(s) did not complete" in err
        assert "campaign-journal.jsonl" in err

    def test_journal_failure_summary_without_cache(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setattr("repro.campaign.Campaign", _FailingCampaign)
        journal = str(tmp_path / "j.jsonl")
        assert main(SWEEP + ["--no-cache", "--journal", journal]) != 0
        err = capsys.readouterr().err
        assert f"journal: {journal}" in err


class TestJournalFlags:
    def test_sweep_writes_journal_next_to_cache(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(SWEEP + ["--cache-dir", str(cache)]) == 0
        capsys.readouterr()
        assert (cache / "campaign-journal.jsonl").exists()

    def test_no_journal_suppresses_it(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(
            SWEEP + ["--cache-dir", str(cache), "--no-journal"]
        ) == 0
        capsys.readouterr()
        assert not (cache / "campaign-journal.jsonl").exists()

    def test_resume_reuses_cached_points(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(SWEEP + ["--cache-dir", cache]) == 0
        first = capsys.readouterr().out
        argv = SWEEP + ["--cache-dir", cache, "--resume", "--progress"]
        assert main(argv) == 0
        second = capsys.readouterr()
        assert second.out == first
        assert "2 cache hits" in second.err

    def test_resume_without_journal_is_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(SWEEP + ["--no-cache", "--resume"])


class TestCacheSubcommand:
    def test_stats_and_clean(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(SWEEP + ["--cache-dir", str(cache)]) == 0
        capsys.readouterr()
        shard = next(cache.glob("*/"))
        (shard / ".dead.json.1.tmp").write_text("{ torn")

        assert main(["cache", "stats", "--cache-dir", str(cache)]) == 0
        assert "2 cached result(s)" in capsys.readouterr().out
        assert main(["cache", "clean", "--cache-dir", str(cache)]) == 0
        assert "removed 1 orphaned temp file(s)" in capsys.readouterr().out
        assert not (shard / ".dead.json.1.tmp").exists()

    def test_cache_without_dir_is_rejected(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        with pytest.raises(SystemExit):
            main(["cache", "stats"])


class TestFigureFlags:
    def test_analytic_figure_accepts_campaign_flags(self, capsys):
        assert main(["figure", "10a", "--jobs", "2"]) == 0
        assert "PH-10" in capsys.readouterr().out

    def test_simulated_figure_with_cache(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        argv = [
            "figure", "3", "--horizon", "5000",
            "--jobs", "2", "--cache-dir", cache, "--progress",
        ]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert main(argv) == 0
        second = capsys.readouterr()
        assert second.out == first.out
        assert "0 executed" in second.err
