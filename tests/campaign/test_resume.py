"""Tests for journaled campaigns: resume, interrupts, and the breaker."""

import pytest

from repro.campaign import (
    Campaign,
    CampaignJournal,
    JournalCompatError,
    config_digest,
)
from repro.experiments import ExperimentConfig, run_experiment

BASE = ExperimentConfig(
    queue_length=5, horizon_s=5_000.0, tape_count=4, capacity_mb=500.0
)


def _grid(count: int = 4):
    return [BASE.with_(queue_length=5 * (index + 1)) for index in range(count)]


class _InterruptOn:
    """Raises KeyboardInterrupt (once per instance) on the victim point."""

    def __init__(self, victim_queue_length):
        self.victim_queue_length = victim_queue_length
        self.fired = False

    def __call__(self, config):
        if config.queue_length == self.victim_queue_length and not self.fired:
            self.fired = True
            raise KeyboardInterrupt
        return run_experiment(config)


def _failing_runner(config):
    if config.queue_length == 10:
        raise RuntimeError("synthetic point failure")
    return run_experiment(config)


class TestJournaling:
    def test_submit_writes_a_replayable_journal(self, tmp_path):
        configs = _grid(2)
        journal_path = tmp_path / "journal.jsonl"
        campaign = Campaign(
            cache_dir=tmp_path / "cache", journal_path=journal_path
        )
        submission = campaign.submit(configs)
        assert submission.journal_path == journal_path
        state = CampaignJournal(journal_path).load_state()
        for config in configs:
            assert state.classify(config_digest(config)) == "done"
        assert state.done and not state.in_flight and not state.failed

    def test_failures_are_journaled_as_failed(self, tmp_path):
        configs = _grid(2)  # queue 10 fails deterministically
        campaign = Campaign(
            journal_path=tmp_path / "journal.jsonl", runner=_failing_runner
        )
        campaign.submit(configs)
        state = CampaignJournal(tmp_path / "journal.jsonl").load_state()
        assert state.failed[config_digest(configs[1])] == "RuntimeError"

    def test_fresh_submission_truncates_the_journal(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        Campaign(journal_path=journal_path).submit(_grid(2))
        Campaign(journal_path=journal_path).submit(_grid(1))
        state = CampaignJournal(journal_path).load_state()
        assert len(state.done) == 1


class TestInterruptAndResume:
    def test_keyboard_interrupt_flushes_journal_and_cache(self, tmp_path):
        configs = _grid(4)
        cache_dir = tmp_path / "cache"
        journal_path = tmp_path / "journal.jsonl"
        campaign = Campaign(
            cache_dir=cache_dir,
            journal_path=journal_path,
            runner=_InterruptOn(victim_queue_length=15),
        )
        with pytest.raises(KeyboardInterrupt):
            campaign.submit(configs)
        assert campaign.metrics.count("campaign.interrupts") == 1
        assert campaign.last_stats.interrupted

        state = CampaignJournal(journal_path).load_state()
        assert state.interrupted
        # Points 0 and 1 completed and were cached incrementally; the
        # victim is journaled in flight; point 3 never started.
        assert len(state.done) == 2
        assert config_digest(configs[2]) in state.in_flight
        assert state.classify(config_digest(configs[3])) == "unknown"

    def test_resume_completes_without_rerunning_done_points(self, tmp_path):
        configs = _grid(4)
        cache_dir = tmp_path / "cache"
        journal_path = tmp_path / "journal.jsonl"
        with pytest.raises(KeyboardInterrupt):
            Campaign(
                cache_dir=cache_dir,
                journal_path=journal_path,
                runner=_InterruptOn(victim_queue_length=15),
            ).submit(configs)

        resumed = Campaign(
            cache_dir=cache_dir, journal_path=journal_path
        )
        submission = resumed.submit(configs, resume=True)
        assert len(submission.results) == 4
        assert submission.stats.cache_hits == 2
        assert submission.stats.resumed_done == 2
        assert submission.stats.executed == 2  # victim + never-started
        assert resumed.metrics.count("campaign.resume.done_skipped") == 2
        assert (
            resumed.metrics.count("campaign.resume.requeued_in_flight") == 1
        )
        # Resumed results are bit-identical to an undisturbed run.
        fresh = Campaign().submit([configs[2]])
        assert (
            submission.require(configs[2]).report
            == fresh.require(configs[2]).report
        )

    def test_resume_reruns_journaled_failures(self, tmp_path):
        configs = _grid(2)
        cache_dir = tmp_path / "cache"
        journal_path = tmp_path / "journal.jsonl"
        Campaign(
            cache_dir=cache_dir,
            journal_path=journal_path,
            runner=_failing_runner,
        ).submit(configs)
        healed = Campaign(cache_dir=cache_dir, journal_path=journal_path)
        submission = healed.submit(configs, resume=True)
        assert submission.stats.failures == 0
        assert len(submission.results) == 2
        assert healed.metrics.count("campaign.resume.failed_retried") == 1

    def test_journal_done_without_cache_entry_reruns(self, tmp_path):
        # The journal alone can never substitute for a verifiable
        # cached result: done-but-missing-cache points re-execute.
        configs = _grid(2)
        journal_path = tmp_path / "journal.jsonl"
        Campaign(journal_path=journal_path).submit(configs)  # no cache
        resumed = Campaign(
            cache_dir=tmp_path / "cache", journal_path=journal_path
        )
        submission = resumed.submit(configs, resume=True)
        assert submission.stats.executed == 2
        assert (
            resumed.metrics.count("campaign.resume.done_missing_cache") == 2
        )

    def test_resume_refuses_a_foreign_salt(self, tmp_path):
        configs = _grid(1)
        journal_path = tmp_path / "journal.jsonl"
        Campaign(journal_path=journal_path, salt="old").submit(configs)
        with pytest.raises(JournalCompatError):
            Campaign(journal_path=journal_path, salt="new").submit(
                configs, resume=True
            )

    def test_resume_without_prior_journal_just_runs(self, tmp_path):
        configs = _grid(2)
        campaign = Campaign(
            cache_dir=tmp_path / "cache",
            journal_path=tmp_path / "journal.jsonl",
        )
        submission = campaign.submit(configs, resume=True)
        assert len(submission.results) == 2
        assert submission.stats.resumed_done == 0


class TestAbortBreaker:
    def test_consecutive_failures_trip_the_breaker(self, tmp_path):
        configs = _grid(4)

        journal_path = tmp_path / "journal.jsonl"
        campaign = Campaign(
            journal_path=journal_path,
            runner=_always_failing,
            abort_after=2,
        )
        submission = campaign.submit(configs)
        assert submission.stats.aborted
        assert campaign.metrics.count("campaign.aborts") == 1
        errors = [failure.error for failure in submission.failures]
        assert errors.count("RuntimeError") == 2
        assert errors.count("CampaignAborted") == 2
        state = CampaignJournal(journal_path).load_state()
        assert state.aborted

    def test_success_resets_the_consecutive_counter(self):
        configs = _grid(4)  # only queue 10 fails
        campaign = Campaign(runner=_failing_runner, abort_after=2)
        submission = campaign.submit(configs)
        assert not submission.stats.aborted
        assert submission.stats.failures == 1


def _always_failing(config):
    raise RuntimeError("every point fails")
