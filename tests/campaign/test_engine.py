"""Tests for the campaign engine: dedup, parallelism, isolation, resume."""

import multiprocessing
import os

import pytest

from repro.campaign import Campaign, CampaignPointError, PointFailure
from repro.experiments import ExperimentConfig, run_experiment
from repro.faults import FaultConfig
from repro.rng import derive_seed

BASE = ExperimentConfig(
    queue_length=5, horizon_s=5_000.0, tape_count=4, capacity_mb=500.0
)

FAULTED = BASE.with_(
    replicas=2,
    faults=FaultConfig(media_error_rate=0.05, bad_replica_rate=0.02),
)


def _grid(count: int = 4):
    return [BASE.with_(queue_length=5 * (index + 1)) for index in range(count)]


def _failing_runner(config):
    """Module-level (hence picklable) runner that fails one point."""
    if config.queue_length == 10:
        raise RuntimeError("synthetic point failure")
    return run_experiment(config)


def _hard_crash_runner(config):
    """Dies without a traceback in workers; raises when run in-process."""
    if multiprocessing.parent_process() is not None:
        os._exit(13)
    raise RuntimeError("crashed hard in a worker")


class TestSubmitBasics:
    def test_dedup_preserves_order(self):
        configs = _grid(3)
        submission = Campaign().submit(configs + [configs[0], configs[2]])
        assert submission.stats.submitted == 5
        assert submission.stats.unique == 3
        assert submission.configs == tuple(configs)
        assert len(submission.results) == 3

    def test_require_unknown_config_raises_keyerror(self):
        submission = Campaign().submit(_grid(1))
        with pytest.raises(KeyError):
            submission.require(BASE.with_(seed=777))

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            Campaign(jobs=0)

    def test_result_iteration_matches_results(self):
        submission = Campaign().submit(_grid(2))
        assert tuple(submission) == submission.results


class TestParallelBitIdentical:
    def test_parallel_equals_serial(self):
        configs = _grid(4)
        serial = Campaign(jobs=1).submit(configs)
        parallel = Campaign(jobs=4).submit(configs)
        for config in configs:
            assert serial.require(config).report == parallel.require(config).report

    def test_parallel_equals_serial_with_faults(self):
        configs = [FAULTED, FAULTED.with_(seed=7), FAULTED.with_(seed=8)]
        serial = Campaign(jobs=1).submit(configs)
        parallel = Campaign(jobs=3).submit(configs)
        for config in configs:
            serial_report = serial.require(config).report
            parallel_report = parallel.require(config).report
            assert serial_report == parallel_report
            assert serial_report.fault_counts == parallel_report.fault_counts


class TestFailureIsolation:
    def test_failed_point_becomes_error_record(self):
        configs = _grid(3)  # queue 10 fails under _failing_runner
        submission = Campaign(runner=_failing_runner).submit(configs)
        assert submission.stats.failures == 1
        assert len(submission.results) == 2
        failure = submission.failure_for(configs[1])
        assert isinstance(failure, PointFailure)
        assert failure.error == "RuntimeError"
        assert "synthetic point failure" in failure.message
        with pytest.raises(CampaignPointError, match="RuntimeError"):
            submission.require(configs[1])

    def test_worker_exception_does_not_kill_parallel_batch(self):
        configs = _grid(4)
        submission = Campaign(jobs=2, runner=_failing_runner).submit(configs)
        assert submission.stats.failures == 1
        assert len(submission.results) == 3
        serial = Campaign().submit([configs[0]])
        assert (
            submission.require(configs[0]).report
            == serial.require(configs[0]).report
        )

    def test_hard_worker_crash_degrades_to_error_records(self):
        # os._exit in a worker must never surface as a raised exception
        # at the caller: the supervisor retries each point (worker death
        # is transient) and, once attempts are exhausted, reports a
        # WorkerCrashError failure record per point.
        configs = _grid(3)
        campaign = Campaign(
            jobs=2,
            runner=_hard_crash_runner,
            max_attempts=2,
            backoff_base_s=0.01,
        )
        submission = campaign.submit(configs)
        assert len(submission.configs) == 3
        assert submission.stats.failures == 3
        assert all(
            failure.error == "WorkerCrashError"
            for failure in submission.failures
        )
        assert all(
            failure.attempts == 2 for failure in submission.failures
        )
        assert submission.stats.retried == 3
        assert campaign.metrics.count("campaign.workers.died") >= 3


class TestCacheIntegration:
    def test_second_submission_is_all_hits(self, tmp_path):
        configs = _grid(3)
        first = Campaign(cache_dir=tmp_path).submit(configs)
        assert first.stats.cache_hits == 0 and first.stats.executed == 3
        second = Campaign(cache_dir=tmp_path).submit(configs)
        assert second.stats.cache_hits == 3 and second.stats.executed == 0
        for config in configs:
            assert first.require(config).report == second.require(config).report

    def test_interrupted_campaign_resumes_from_cached_points(self, tmp_path):
        configs = _grid(4)
        Campaign(cache_dir=tmp_path).submit(configs[:2])  # "interrupted" half
        resumed = Campaign(cache_dir=tmp_path).submit(configs)
        assert resumed.stats.cache_hits == 2
        assert resumed.stats.executed == 2

    def test_cached_hits_equal_fresh_runs(self, tmp_path):
        config = _grid(1)[0]
        Campaign(cache_dir=tmp_path).submit([config])
        cached = Campaign(cache_dir=tmp_path).submit([config]).require(config)
        fresh = Campaign().submit([config]).require(config)
        assert cached.report == fresh.report

    def test_failures_are_not_cached(self, tmp_path):
        configs = _grid(2)
        broken = Campaign(cache_dir=tmp_path, runner=_failing_runner).submit(configs)
        assert broken.stats.failures == 1
        healed = Campaign(cache_dir=tmp_path).submit(configs)
        assert healed.stats.failures == 0
        assert healed.stats.cache_hits == 1  # only the successful point


class TestProgress:
    def test_events_cover_every_point(self, tmp_path):
        configs = _grid(3)
        Campaign(cache_dir=tmp_path).submit(configs[:1])
        events = []
        campaign = Campaign(cache_dir=tmp_path, progress=events.append)
        campaign.submit(configs)
        assert len(events) == 3
        assert [event.completed for event in events] == [1, 2, 3]
        assert all(event.total == 3 for event in events)
        kinds = sorted(event.kind for event in events)
        assert kinds == ["done", "done", "hit"]

    def test_error_events(self):
        events = []
        Campaign(runner=_failing_runner, progress=events.append).submit(_grid(2))
        assert sorted(event.kind for event in events) == ["done", "error"]


class TestSeedDerivation:
    def test_derive_variants_is_deterministic(self):
        first = Campaign.derive_variants(BASE, 3)
        second = Campaign.derive_variants(BASE, 3)
        assert first == second
        assert len({variant.seed for variant in first}) == 3

    def test_derivation_matches_replication_stream(self):
        # replicate() historically used derive_seed(seed, "replication:i");
        # the campaign derivation must stay bit-compatible with it.
        variants = Campaign.derive_variants(BASE, 2)
        for index, variant in enumerate(variants):
            assert variant.seed == derive_seed(BASE.seed, f"replication:{index}") % (
                2**31
            )

    def test_count_must_be_positive(self):
        with pytest.raises(ValueError):
            Campaign.derive_variants(BASE, 0)


class TestShimEquivalence:
    def test_queue_sweep_matches_direct_submission(self, tmp_path):
        from repro.experiments import queue_sweep
        from repro.experiments.sweeps import CurvePoint, queue_sweep_configs

        campaign = Campaign(jobs=2, cache_dir=tmp_path)
        points = queue_sweep(BASE, (5, 10), campaign=campaign)
        configs = queue_sweep_configs(BASE, (5, 10))
        submission = Campaign(cache_dir=tmp_path).submit(configs)
        assert points == [
            CurvePoint.from_result(submission.require(config)) for config in configs
        ]

    def test_replicate_matches_legacy_seeds(self):
        from repro.experiments import replicate

        serial = replicate(BASE, replications=2)
        parallel = replicate(BASE, replications=2, campaign=Campaign(jobs=2))
        assert serial.throughput_kb_s.values == parallel.throughput_kb_s.values
        assert serial.mean_response_s.values == parallel.mean_response_s.values
