"""Tests for the supervised worker pool (crash/stall/retry/drain)."""

import os
import signal
import threading
import time

import pytest

from repro.campaign import (
    SupervisedPool,
    SupervisorHooks,
    TRANSIENT_ERRORS,
    is_transient_error,
)

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="supervisor tests need fork + SIGKILL"
)


# ----------------------------------------------------------------------
# Module-level (hence fork/pickle-safe) runners.  Pool tests do not need
# real experiment configs: any picklable value works as a "config".
# ----------------------------------------------------------------------
def _square(value):
    return value * value


def _fail_on_7(value):
    if value == 7:
        raise ValueError("deterministic failure on 7")
    return value


def _always_die(value):
    os._exit(5)


def _sleepy(value):
    time.sleep(0.3)
    return value


def _defeat_sigalrm_and_hang(value):
    # Defeat the in-worker SIGALRM so only the supervisor's deadline
    # kill (the portable backstop) can end this point.
    signal.signal(signal.SIGALRM, signal.SIG_IGN)
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        pass
    return value


class _DieOnceOn:
    """SIGKILL-equivalent death on ``victim``, exactly once (marker file)."""

    def __init__(self, marker_dir, victim):
        self.marker = os.path.join(marker_dir, "died-once")
        self.victim = victim

    def __call__(self, value):
        if value == self.victim:
            try:
                fd = os.open(self.marker, os.O_CREAT | os.O_EXCL)
            except FileExistsError:
                pass
            else:
                os.close(fd)
                os._exit(11)
        return value


class _Recorder:
    """Hook implementation that captures every supervisor callback."""

    def __init__(self, abort_on_error=False):
        self.started = []
        self.retried = []
        self.finals = {}
        self.attempts = {}
        self.abandoned = []
        self.abort_on_error = abort_on_error

    def hooks(self):
        return SupervisorHooks(
            on_start=lambda index, attempt: self.started.append(
                (index, attempt)
            ),
            on_retry=lambda index, attempt, error, message: (
                self.retried.append((index, attempt, error))
            ),
            on_final=self.on_final,
            on_abandoned=lambda index, reason: self.abandoned.append(
                (index, reason)
            ),
        )

    def on_final(self, index, status, payload, attempts):
        self.finals[index] = (status, payload)
        self.attempts[index] = attempts
        return not (self.abort_on_error and status == "error")


def _pool(runner, **kwargs):
    kwargs.setdefault("jobs", 2)
    kwargs.setdefault("backoff_base_s", 0.01)
    return SupervisedPool(runner=runner, **kwargs)


class TestHappyPath:
    def test_every_point_reaches_a_final(self):
        recorder = _Recorder()
        _pool(_square).run(
            [(index, index, 0) for index in range(5)], recorder.hooks()
        )
        assert recorder.finals == {
            index: ("ok", index * index) for index in range(5)
        }
        assert all(attempt == 1 for attempt in recorder.attempts.values())
        assert recorder.retried == [] and recorder.abandoned == []

    def test_empty_batch_is_a_no_op(self):
        _pool(_square).run([], _Recorder().hooks())


class TestFailureClassification:
    def test_taxonomy(self):
        assert TRANSIENT_ERRORS == {
            "WorkerCrashError", "WorkerStallError", "PointTimeoutError"
        }
        assert is_transient_error("WorkerCrashError")
        assert not is_transient_error("ValueError")

    def test_deterministic_exception_is_never_retried(self):
        recorder = _Recorder()
        _pool(_fail_on_7, max_attempts=3).run(
            [(0, 7, 0), (1, 2, 0)], recorder.hooks()
        )
        status, payload = recorder.finals[0]
        assert status == "error"
        assert payload[0] == "ValueError"
        assert recorder.attempts[0] == 1  # no attempt was wasted
        assert recorder.retried == []
        assert recorder.finals[1] == ("ok", 2)

    def test_worker_death_is_retried_then_succeeds(self, tmp_path):
        recorder = _Recorder()
        runner = _DieOnceOn(str(tmp_path), victim=3)
        pool = _pool(runner, max_attempts=3)
        pool.run([(index, index, 0) for index in range(4)], recorder.hooks())
        assert recorder.finals == {
            index: ("ok", index) for index in range(4)
        }
        assert [entry[2] for entry in recorder.retried] == [
            "WorkerCrashError"
        ]
        assert recorder.attempts[3] == 2

    def test_persistent_death_exhausts_attempts(self):
        recorder = _Recorder()
        _pool(_always_die, jobs=1, max_attempts=2).run(
            [(0, 0, 0)], recorder.hooks()
        )
        status, payload = recorder.finals[0]
        assert status == "error"
        assert payload[0] == "WorkerCrashError"
        assert recorder.attempts[0] == 2
        assert len(recorder.retried) == 1

    def test_prior_attempts_shrink_the_retry_budget(self):
        # A resumed point that already consumed 1 attempt gets only one
        # more under max_attempts=2.
        recorder = _Recorder()
        _pool(_always_die, jobs=1, max_attempts=2).run(
            [(0, 0, 1)], recorder.hooks()
        )
        assert recorder.attempts[0] == 2
        assert recorder.retried == []  # no budget left for a retry


class TestDeadlineKill:
    def test_supervisor_kills_past_deadline_when_sigalrm_cannot(self):
        recorder = _Recorder()
        pool = _pool(
            _defeat_sigalrm_and_hang,
            jobs=1,
            point_timeout_s=0.3,
            hang_grace_s=0.2,
            max_attempts=1,
        )
        started = time.monotonic()
        pool.run([(0, 0, 0)], recorder.hooks())
        assert time.monotonic() - started < 20.0
        status, payload = recorder.finals[0]
        assert status == "error"
        assert payload[0] == "WorkerStallError"
        assert "point budget" in payload[1]


class TestAbort:
    def test_on_final_false_abandons_the_rest(self):
        recorder = _Recorder(abort_on_error=True)
        points = [(0, 7, 0)] + [(index, index, 0) for index in (1, 2, 3)]
        _pool(_fail_on_7, jobs=1).run(points, recorder.hooks())
        assert recorder.finals[0][0] == "error"
        finished = set(recorder.finals)
        abandoned = {index for index, _reason in recorder.abandoned}
        assert finished | abandoned == {0, 1, 2, 3}
        assert all(
            reason == "campaign aborted"
            for _index, reason in recorder.abandoned
        )
        assert len(abandoned) >= 1


class TestInterruptDrain:
    def test_sigint_drains_running_points_and_abandons_the_rest(self):
        recorder = _Recorder()
        pool = _pool(_sleepy, jobs=2, drain_grace_s=10.0)

        def fire():
            time.sleep(0.15)  # mid first wave
            os.kill(os.getpid(), signal.SIGINT)

        threading.Thread(target=fire, daemon=True).start()
        with pytest.raises(KeyboardInterrupt):
            pool.run(
                [(index, index, 0) for index in range(4)], recorder.hooks()
            )
        # The two in-flight points finished inside the grace period and
        # their results were recorded; the undispatched two were
        # abandoned as interrupted, not silently dropped.
        ok = {
            index
            for index, (status, _payload) in recorder.finals.items()
            if status == "ok"
        }
        abandoned = {index for index, _reason in recorder.abandoned}
        assert ok == {0, 1}
        assert abandoned == {2, 3}
        assert all(
            reason == "interrupted" for _index, reason in recorder.abandoned
        )

    def test_drain_that_finishes_everything_is_not_an_interrupt(self):
        # When every point was already running and all of them finish
        # inside the grace period, the campaign is complete — no
        # KeyboardInterrupt, nothing abandoned.
        recorder = _Recorder()
        pool = _pool(_sleepy, jobs=2, drain_grace_s=10.0)

        def fire():
            time.sleep(0.15)
            os.kill(os.getpid(), signal.SIGINT)

        threading.Thread(target=fire, daemon=True).start()
        pool.run([(0, 0, 0), (1, 1, 0)], recorder.hooks())
        assert recorder.finals == {0: ("ok", 0), 1: ("ok", 1)}
        assert recorder.abandoned == []
