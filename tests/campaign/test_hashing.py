"""Tests for stable content addressing of experiment configurations."""

from repro.campaign.hashing import (
    CODE_VERSION,
    canonical_config_json,
    config_digest,
)
from repro.experiments import ExperimentConfig
from repro.faults import FaultConfig


class TestCanonicalJson:
    def test_deterministic(self):
        config = ExperimentConfig()
        assert canonical_config_json(config) == canonical_config_json(config)

    def test_covers_every_field(self):
        import dataclasses
        import json

        rendered = json.loads(canonical_config_json(ExperimentConfig()))
        assert rendered["kind"] == "experiment"
        for field in dataclasses.fields(ExperimentConfig):
            assert field.name in rendered["config"]

    def test_kind_keeps_address_spaces_disjoint(self):
        from repro.federation import FederationConfig, LibraryConfig

        experiment = canonical_config_json(ExperimentConfig())
        federation = canonical_config_json(
            FederationConfig(libraries=(LibraryConfig(),), queue_length=60)
        )
        import json

        assert json.loads(federation)["kind"] == "federation"
        assert experiment != federation


class TestConfigDigest:
    def test_is_hex_sha256(self):
        digest = config_digest(ExperimentConfig())
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")

    def test_equal_configs_equal_digests(self):
        a = ExperimentConfig().with_(replicas=2, start_position=1.0)
        b = ExperimentConfig().with_(replicas=2, start_position=1.0)
        assert config_digest(a) == config_digest(b)

    def test_any_field_change_changes_digest(self):
        base = ExperimentConfig()
        assert config_digest(base) != config_digest(base.with_(seed=43))
        assert config_digest(base) != config_digest(base.with_(queue_length=61))

    def test_faults_are_part_of_the_address(self):
        base = ExperimentConfig()
        faulted = base.with_(faults=FaultConfig(media_error_rate=0.01))
        assert config_digest(base) != config_digest(faulted)
        # Same fault rates, list vs tuple input: one address.
        listy = base.with_(
            faults=FaultConfig(tape_media_error_rates=[(1, 0.2)])
        )
        tupley = base.with_(
            faults=FaultConfig(tape_media_error_rates=((1, 0.2),))
        )
        assert config_digest(listy) == config_digest(tupley)

    def test_salt_changes_digest(self):
        config = ExperimentConfig()
        assert config_digest(config, salt=CODE_VERSION) != config_digest(
            config, salt="different-code-version"
        )
