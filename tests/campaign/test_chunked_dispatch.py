"""Chunked dispatch: batching, mid-chunk death, overhead accounting.

The supervised pool ships points to workers in chunks (one pickle per
chunk, results streamed back per point).  These tests pin the contract
that batching must not change: per-point retry/journal semantics, a
worker death requeues *only* the unfinished remainder of its chunk,
and resume sees exactly the per-point lifecycle it always did.
"""

import math
import os
import pickle
import time

import pytest

from repro.campaign import (
    Campaign,
    CampaignJournal,
    SupervisedPool,
    SupervisorHooks,
    config_digest,
)
from repro.campaign.supervisor import auto_chunk_size
from repro.experiments import ExperimentConfig, run_experiment
from repro.obs import MetricRegistry

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="supervisor tests need fork + SIGKILL"
)


# ----------------------------------------------------------------------
# Module-level (fork/pickle-safe) runners.
# ----------------------------------------------------------------------
def _identity(value):
    return value


class _DieOnceOn:
    """SIGKILL-equivalent death on ``victim``, exactly once (marker file)."""

    def __init__(self, marker_dir, victim):
        self.marker = os.path.join(marker_dir, "died-once")
        self.victim = victim

    def __call__(self, value):
        if value == self.victim and not os.path.exists(self.marker):
            with open(self.marker, "w"):
                pass
            os._exit(11)
        return value


class _Recorder:
    """Captures every supervisor callback, including streamed walls."""

    def __init__(self):
        self.started = []
        self.retried = []
        self.finals = {}
        self.attempts = {}
        self.abandoned = []
        self.walls = {}

    def hooks(self):
        return SupervisorHooks(
            on_start=lambda index, attempt: self.started.append((index, attempt)),
            on_retry=lambda index, attempt, error, message: self.retried.append(
                (index, attempt, error)
            ),
            on_final=self.on_final,
            on_abandoned=lambda index, reason: self.abandoned.append(
                (index, reason)
            ),
            on_wall=lambda index, wall_s: self.walls.setdefault(index, wall_s),
        )

    def on_final(self, index, status, payload, attempts):
        self.finals[index] = (status, payload)
        self.attempts[index] = attempts
        return True


class TestAutoChunkSize:
    def test_small_batches_degrade_to_per_point(self):
        assert auto_chunk_size(0, 4) == 1
        assert auto_chunk_size(4, 2) == 1
        assert auto_chunk_size(5, 1) == 2

    def test_large_batches_are_capped(self):
        assert auto_chunk_size(100, 2) == math.ceil(100 / 8)
        assert auto_chunk_size(10_000, 4) == 16


class TestMidChunkDeath:
    def test_kill_requeues_only_the_unfinished_points(self, tmp_path):
        """Streamed results survive; only the chunk's tail retries."""
        recorder = _Recorder()
        pool = SupervisedPool(
            jobs=1,
            runner=_DieOnceOn(str(tmp_path), victim=2),
            chunk_size=4,
            backoff_base_s=0.01,
        )
        pool.run([(index, index, 0) for index in range(4)], recorder.hooks())
        assert recorder.finals == {index: ("ok", index) for index in range(4)}
        # Points 0 and 1 streamed back before the death: one attempt,
        # never retried.  The victim and the point behind it in the
        # chunk were requeued exactly once each.
        assert recorder.attempts[0] == 1 and recorder.attempts[1] == 1
        assert recorder.attempts[2] == 2 and recorder.attempts[3] == 2
        assert sorted(index for index, _a, _e in recorder.retried) == [2, 3]
        assert all(error == "WorkerCrashError" for _i, _a, error in recorder.retried)

    def test_streamed_results_are_not_rerun(self, tmp_path):
        """on_start fires once per surviving point, twice per requeued."""
        recorder = _Recorder()
        pool = SupervisedPool(
            jobs=1,
            runner=_DieOnceOn(str(tmp_path), victim=1),
            chunk_size=3,
            backoff_base_s=0.01,
        )
        pool.run([(index, index, 0) for index in range(3)], recorder.hooks())
        starts = {}
        for index, _attempt in recorder.started:
            starts[index] = starts.get(index, 0) + 1
        assert starts == {0: 1, 1: 2, 2: 2}


class TestStreamingAndOverhead:
    def test_results_stream_with_worker_measured_walls(self):
        recorder = _Recorder()
        pool = SupervisedPool(jobs=2, runner=_identity, chunk_size=3)
        pool.run([(index, index, 0) for index in range(8)], recorder.hooks())
        assert len(recorder.finals) == 8
        assert set(recorder.walls) == set(range(8))
        assert all(wall >= 0.0 for wall in recorder.walls.values())

    def test_overhead_accounting(self):
        metrics = MetricRegistry()
        pool = SupervisedPool(
            jobs=2, runner=_identity, chunk_size=3, metrics=metrics
        )
        pool.run([(index, index, 0) for index in range(8)], _Recorder().hooks())
        overhead = pool.overhead
        assert overhead["chunk_size"] == 3
        assert overhead["points_dispatched"] == 8
        assert overhead["chunks_dispatched"] == math.ceil(8 / 3)
        assert overhead["payload_bytes"] > 0
        assert overhead["dispatch_s"] >= 0.0
        assert 1 <= len(overhead["worker_startup_ms"]) <= 2
        assert metrics.count("campaign.chunks.dispatched") == 3
        assert (
            metrics.count("campaign.dispatch.payload_bytes")
            == overhead["payload_bytes"]
        )

    def test_chunk_pickle_dedups_shared_subobjects(self):
        """One chunk pickle ships a shared sub-config once, not per point."""
        shared = tuple(range(2000))
        points = [(index, ("config", index, shared), 0) for index in range(8)]
        per_point_bytes = sum(
            len(pickle.dumps(("chunk", [(index, config)])))
            for index, config, _attempts in points
        )
        pool = SupervisedPool(jobs=1, runner=_identity, chunk_size=8)
        pool.run(points, _Recorder().hooks())
        assert pool.overhead["chunks_dispatched"] == 1
        assert pool.overhead["payload_bytes"] < per_point_bytes / 4


def _warm_marker(path):
    with open(path, "w") as handle:
        handle.write("warm")


def _broken_initializer():
    raise RuntimeError("initializer exploded")


class TestInitializer:
    def test_initializer_runs_before_first_chunk(self, tmp_path):
        marker = str(tmp_path / "warm")
        recorder = _Recorder()
        pool = SupervisedPool(
            jobs=1,
            runner=_identity,
            chunk_size=2,
            initializer=_warm_marker,
            initializer_args=(marker,),
        )
        pool.run([(0, 0, 0), (1, 1, 0)], recorder.hooks())
        assert os.path.exists(marker)
        assert recorder.finals == {0: ("ok", 0), 1: ("ok", 1)}
        assert len(pool.overhead["worker_initializer_ms"]) == 1

    def test_initializer_failure_is_not_fatal(self):
        metrics = MetricRegistry()
        recorder = _Recorder()
        pool = SupervisedPool(
            jobs=1,
            runner=_identity,
            chunk_size=2,
            initializer=_broken_initializer,
            metrics=metrics,
        )
        pool.run([(0, 0, 0), (1, 1, 0)], recorder.hooks())
        assert recorder.finals == {0: ("ok", 0), 1: ("ok", 1)}
        assert metrics.count("campaign.workers.init_errors") == 1


# ----------------------------------------------------------------------
# Engine-level: journal/resume semantics survive batching.
# ----------------------------------------------------------------------
BASE = ExperimentConfig(
    queue_length=5, horizon_s=5_000.0, tape_count=4, capacity_mb=500.0
)


def _grid(count=4):
    return [BASE.with_(queue_length=5 * (index + 1)) for index in range(count)]


class _DieOnceOnQueue:
    """Worker death (once) on a specific config, else a real run."""

    def __init__(self, marker_dir, victim_queue_length):
        self.marker = os.path.join(marker_dir, "died-once")
        self.victim_queue_length = victim_queue_length

    def __call__(self, config):
        if (
            config.queue_length == self.victim_queue_length
            and not os.path.exists(self.marker)
        ):
            with open(self.marker, "w"):
                pass
            os._exit(9)
        return run_experiment(config)


class _DieAlwaysOnQueues:
    """Unconditional worker death on the victim configs."""

    def __init__(self, victims):
        self.victims = victims

    def __call__(self, config):
        if config.queue_length in self.victims:
            os._exit(9)
        return run_experiment(config)


class TestEngineChunking:
    def test_journal_requeues_only_the_dead_workers_chunk_tail(self, tmp_path):
        configs = _grid(4)
        campaign = Campaign(
            jobs=2,
            chunk_size=2,
            cache_dir=tmp_path / "cache",
            journal_path=tmp_path / "journal.jsonl",
            runner=_DieOnceOnQueue(str(tmp_path), victim_queue_length=5),
            backoff_base_s=0.01,
        )
        submission = campaign.submit(configs)
        assert len(submission.results) == 4
        # The first worker's chunk was [q5, q10]; it died on q5 before
        # either streamed back, so exactly those two were requeued.
        # The second worker's chunk [q15, q20] never retried.
        assert submission.stats.retried == 2
        state = CampaignJournal(tmp_path / "journal.jsonl").load_state()
        for config in configs:
            assert state.classify(config_digest(config)) == "done"

    def test_resume_skips_finished_points_of_a_dead_chunk(self, tmp_path):
        configs = _grid(4)
        cache_dir = tmp_path / "cache"
        journal_path = tmp_path / "journal.jsonl"
        broken = Campaign(
            jobs=2,
            chunk_size=2,
            cache_dir=cache_dir,
            journal_path=journal_path,
            runner=_DieAlwaysOnQueues(victims={15, 20}),
            max_attempts=1,
        )
        first = broken.submit(configs)
        # One worker's chunk [q5, q10] completed and was cached; the
        # other chunk's points died terminally (no attempts left).
        assert len(first.results) == 2
        assert len(first.failures) == 2

        resumed = Campaign(
            jobs=2,
            chunk_size=2,
            cache_dir=cache_dir,
            journal_path=journal_path,
        )
        submission = resumed.submit(configs, resume=True)
        assert len(submission.results) == 4
        # Resume honors the chunk boundary: the finished chunk is
        # served from cache, only the failed chunk re-executes.
        assert submission.stats.cache_hits == 2
        assert submission.stats.executed == 2
        assert resumed.metrics.count("campaign.resume.failed_retried") == 2

    def test_chunked_results_match_serial(self, tmp_path):
        configs = _grid(3)
        serial = Campaign().submit(configs)
        chunked = Campaign(jobs=2, chunk_size=3).submit(configs)
        for config in configs:
            assert (
                serial.require(config).report == chunked.require(config).report
            )

    def test_last_overhead_exposed(self, tmp_path):
        campaign = Campaign(jobs=2, chunk_size=2)
        campaign.submit(_grid(4))
        overhead = campaign.last_overhead
        assert overhead is not None
        assert overhead["points_dispatched"] == 4
        assert overhead["payload_bytes"] > 0
        # The worker initializer pre-warmed the catalog cache.
        assert len(overhead["worker_initializer_ms"]) >= 1
        serial = Campaign()
        serial.submit(_grid(2))
        assert serial.last_overhead is None
