"""The chaos harness's scenarios, run as tests.

Each test drives one scenario from ``tools/chaos_campaign.py`` against
a small real campaign grid and asserts the crash-safety invariant the
harness encodes: the campaign completes bit-identical to an undisturbed
serial baseline, or fails loudly with a resumable journal — and a
resume never re-executes a point the journal marked done whose cache
entry is intact.  CI additionally runs the tool directly (the
``chaos-smoke`` job) so the command-line entry point stays honest.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent.parent / "tools")
)
try:
    import chaos_campaign
finally:
    sys.path.pop(0)


@pytest.fixture(scope="module")
def grid():
    return chaos_campaign.chaos_grid(points=4)


@pytest.fixture(scope="module")
def golden(grid):
    return chaos_campaign.baseline_digests(grid)


def test_worker_kill_is_retried_bit_identically(grid, golden, tmp_path):
    outcome = chaos_campaign.scenario_worker_kill(
        grid, golden, str(tmp_path), False
    )
    assert outcome["ok"], outcome


def test_killed_campaign_resumes_and_quarantines_corruption(
    grid, golden, tmp_path
):
    outcome = chaos_campaign.scenario_crash_resume_corrupt(
        grid, golden, str(tmp_path), False
    )
    assert outcome["ok"], outcome
    assert outcome["rerun_of_intact_done_points"] == 0
    assert outcome["corrupted_entry_requeued"]


def test_corrupt_journal_degrades_resume_not_correctness(
    grid, golden, tmp_path
):
    outcome = chaos_campaign.scenario_corrupt_journal(
        grid, golden, str(tmp_path), False
    )
    assert outcome["ok"], outcome
    assert outcome["corrupt_lines"] >= 3


def test_disk_full_cache_writes_warn_but_results_stand(
    grid, golden, tmp_path
):
    outcome = chaos_campaign.scenario_disk_full(
        grid, golden, str(tmp_path), False
    )
    assert outcome["ok"], outcome


def test_orphaned_temp_files_are_swept(grid, golden, tmp_path):
    outcome = chaos_campaign.scenario_orphan_gc(
        grid, golden, str(tmp_path), False
    )
    assert outcome["ok"], outcome
