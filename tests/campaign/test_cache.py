"""Tests for the content-addressed on-disk result cache."""

import json

import pytest

from repro.campaign import ResultCache
from repro.experiments import ExperimentConfig, run_experiment

CONFIG = ExperimentConfig(
    queue_length=5, horizon_s=5_000.0, tape_count=4, capacity_mb=500.0
)


@pytest.fixture(scope="module")
def result():
    return run_experiment(CONFIG)


class TestCacheHitMiss:
    def test_empty_cache_misses(self, tmp_path):
        assert ResultCache(tmp_path).get(CONFIG) is None

    def test_put_then_get_round_trips(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        path = cache.put(result)
        assert path.exists()
        restored = cache.get(CONFIG)
        assert restored is not None
        assert restored.config == result.config
        assert restored.report == result.report

    def test_other_config_still_misses(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        cache.put(result)
        assert cache.get(CONFIG.with_(seed=99)) is None

    def test_len_counts_entries(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        cache.put(result)
        assert len(cache) == 1


class TestCacheInvalidation:
    def test_explicit_invalidate(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        cache.put(result)
        assert cache.invalidate(CONFIG) is True
        assert cache.get(CONFIG) is None
        assert cache.invalidate(CONFIG) is False

    def test_corrupt_entry_is_a_miss(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        path = cache.put(result)
        path.write_text("{not json")
        assert cache.get(CONFIG) is None

    def test_version_mismatch_is_a_miss_not_a_load(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        path = cache.put(result)
        payload = json.loads(path.read_text())
        payload["version"] = 999
        path.write_text(json.dumps(payload))
        assert cache.get(CONFIG) is None

    def test_schema_mismatch_is_a_miss(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        path = cache.put(result)
        payload = json.loads(path.read_text())
        payload["schema"] = "0000000000000000"
        path.write_text(json.dumps(payload))
        assert cache.get(CONFIG) is None

    def test_salt_change_invalidates_everything(self, tmp_path, result):
        ResultCache(tmp_path, salt="v1").put(result)
        assert ResultCache(tmp_path, salt="v1").get(CONFIG) is not None
        assert ResultCache(tmp_path, salt="v2").get(CONFIG) is None

    def test_wrong_config_in_entry_is_a_miss(self, tmp_path, result):
        # Paranoia guard: an entry whose stored config differs from the
        # requested one (collision, manual tampering) must not load.
        cache = ResultCache(tmp_path)
        path = cache.put(result)
        payload = json.loads(path.read_text())
        payload["config"]["seed"] = 12345
        path.write_text(json.dumps(payload))
        assert cache.get(CONFIG) is None
