"""Tests for the content-addressed on-disk result cache."""

import json

import pytest

from repro.campaign import ResultCache
from repro.experiments import ExperimentConfig, run_experiment

CONFIG = ExperimentConfig(
    queue_length=5, horizon_s=5_000.0, tape_count=4, capacity_mb=500.0
)


@pytest.fixture(scope="module")
def result():
    return run_experiment(CONFIG)


class TestCacheHitMiss:
    def test_empty_cache_misses(self, tmp_path):
        assert ResultCache(tmp_path).get(CONFIG) is None

    def test_put_then_get_round_trips(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        path = cache.put(result)
        assert path.exists()
        restored = cache.get(CONFIG)
        assert restored is not None
        assert restored.config == result.config
        assert restored.report == result.report

    def test_other_config_still_misses(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        cache.put(result)
        assert cache.get(CONFIG.with_(seed=99)) is None

    def test_len_counts_entries(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        cache.put(result)
        assert len(cache) == 1


class TestCacheInvalidation:
    def test_explicit_invalidate(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        cache.put(result)
        assert cache.invalidate(CONFIG) is True
        assert cache.get(CONFIG) is None
        assert cache.invalidate(CONFIG) is False

    def test_corrupt_entry_is_a_miss(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        path = cache.put(result)
        path.write_text("{not json")
        assert cache.get(CONFIG) is None

    def test_version_mismatch_is_a_miss_not_a_load(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        path = cache.put(result)
        payload = json.loads(path.read_text())
        payload["version"] = 999
        path.write_text(json.dumps(payload))
        assert cache.get(CONFIG) is None

    def test_schema_mismatch_is_a_miss(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        path = cache.put(result)
        payload = json.loads(path.read_text())
        payload["schema"] = "0000000000000000"
        path.write_text(json.dumps(payload))
        assert cache.get(CONFIG) is None

    def test_salt_change_invalidates_everything(self, tmp_path, result):
        ResultCache(tmp_path, salt="v1").put(result)
        assert ResultCache(tmp_path, salt="v1").get(CONFIG) is not None
        assert ResultCache(tmp_path, salt="v2").get(CONFIG) is None

    def test_corrupt_entry_is_quarantined_with_evidence(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        path = cache.put(result)
        path.write_text("{torn write \x00")
        assert cache.get(CONFIG) is None
        assert not path.exists()  # moved aside, not overwritten in place
        assert cache.quarantined == 1
        corrupt = cache.corrupt_entries()
        assert len(corrupt) == 1
        assert corrupt[0].name == path.name + ".corrupt"
        assert "torn write" in corrupt[0].read_text()
        # A fresh put fills the slot again and reads back cleanly.
        cache.put(result)
        assert cache.get(CONFIG) is not None

    def test_quarantine_counts_into_metrics(self, tmp_path, result):
        from repro.obs import MetricRegistry

        registry = MetricRegistry()
        cache = ResultCache(tmp_path, metrics=registry)
        cache.put(result).write_text("{not json")
        cache.get(CONFIG)
        assert registry.count("campaign.cache.quarantined") == 1

    def test_wrong_config_in_entry_is_a_miss(self, tmp_path, result):
        # Paranoia guard: an entry whose stored config differs from the
        # requested one (collision, manual tampering) must not load.
        cache = ResultCache(tmp_path)
        path = cache.put(result)
        payload = json.loads(path.read_text())
        payload["config"]["seed"] = 12345
        path.write_text(json.dumps(payload))
        assert cache.get(CONFIG) is None


class TestOrphanSweep:
    def _orphan(self, cache, result, name=".deadbeef.json.999.tmp"):
        path = cache.put(result)
        orphan = path.parent / name
        orphan.write_text("{ torn")
        return orphan

    def test_clean_removes_orphaned_temp_files(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        orphan = self._orphan(cache, result)
        assert cache.clean() == 1
        assert not orphan.exists()
        assert cache.orphans_removed == 1
        assert len(cache) == 1  # the real entry is untouched

    def test_construction_sweep_spares_recent_temp_files(self, tmp_path, result):
        # The age guard protects a *live* writer in another process:
        # a just-written temp file survives construction-time sweeping.
        orphan = self._orphan(ResultCache(tmp_path), result)
        ResultCache(tmp_path)
        assert orphan.exists()

    def test_construction_sweep_removes_aged_temp_files(self, tmp_path, result):
        import os

        orphan = self._orphan(ResultCache(tmp_path), result)
        two_hours_ago = orphan.stat().st_mtime - 7200
        os.utime(orphan, (two_hours_ago, two_hours_ago))
        ResultCache(tmp_path)
        assert not orphan.exists()

    def test_sweep_counts_into_metrics(self, tmp_path, result):
        from repro.obs import MetricRegistry

        cache = ResultCache(tmp_path)
        self._orphan(cache, result)
        registry = MetricRegistry()
        cache.metrics = registry
        cache.clean()
        assert registry.count("campaign.cache.orphans_removed") == 1

    def test_clean_on_missing_root_is_zero(self, tmp_path):
        assert ResultCache(tmp_path / "absent").clean() == 0
