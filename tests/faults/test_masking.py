"""Tests for the fault-masked catalog view."""

from repro.faults import FaultMaskedCatalog
from repro.layout import PlacementSpec, build_catalog


def make_catalog(replicas=1):
    spec = PlacementSpec(percent_hot=10, replicas=replicas, block_mb=16.0)
    return build_catalog(spec, 4, 1000.0)


class TestFaultMaskedCatalog:
    def test_empty_mask_is_transparent(self):
        catalog = make_catalog()
        masked = FaultMaskedCatalog(catalog, set())
        assert masked.n_blocks == catalog.n_blocks
        assert masked.block_mb == catalog.block_mb
        assert masked.replicas_of(0) == tuple(catalog.replicas_of(0))
        assert list(masked.tape_ids) == list(catalog.tape_ids)
        assert masked.total_copies() == catalog.total_copies()

    def test_failed_tape_vanishes(self):
        catalog = make_catalog()
        replicas = catalog.replicas_of(0)
        dead = replicas[0].tape_id
        masked = FaultMaskedCatalog(catalog, {dead})
        assert dead not in list(masked.tape_ids)
        assert masked.tape_contents(dead) == ()
        assert masked.blocks_on_tape(dead) == []
        assert not masked.has_replica_on(0, dead)
        assert all(r.tape_id != dead for r in masked.replicas_of(0))

    def test_mask_is_live(self):
        """Mutating the shared set updates the view immediately."""
        catalog = make_catalog()
        failed = set()
        masked = FaultMaskedCatalog(catalog, failed)
        before = masked.replication_degree(0)
        failed.add(catalog.replicas_of(0)[0].tape_id)
        assert masked.replication_degree(0) == before - 1

    def test_known_bad_copy_vanishes(self):
        catalog = make_catalog()
        replica = catalog.replicas_of(0)[0]
        known_bad = {(replica.tape_id, 0)}
        masked = FaultMaskedCatalog(catalog, set(), known_bad)
        assert all(r.tape_id != replica.tape_id for r in masked.replicas_of(0))
        assert not masked.has_replica_on(0, replica.tape_id)
        # Only that (tape, block) pair is hidden, not the whole tape.
        assert replica.tape_id in list(masked.tape_ids)
        assert 0 not in masked.blocks_on_tape(replica.tape_id)

    def test_fully_masked_block_has_no_replicas(self):
        catalog = make_catalog(replicas=0)
        replica = catalog.replicas_of(0)[0]
        masked = FaultMaskedCatalog(catalog, set(), {(replica.tape_id, 0)})
        assert masked.replicas_of(0) == ()
        assert masked.replication_degree(0) == 0
