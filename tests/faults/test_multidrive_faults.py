"""Degraded-mode tests for the multi-drive extension under faults."""

import random

from repro.core import make_scheduler
from repro.des import Environment
from repro.faults import FaultConfig, FaultInjector, RetryPolicy
from repro.layout import Layout, PlacementSpec, build_catalog
from repro.service import MetricsCollector, MultiDriveSimulator
from repro.workload import ClosedSource, HotColdSkew, OpenSource

HORIZON = 40_000.0


def make_simulator(fault_config=None, drive_count=2, replicas=2, closed=True):
    spec = PlacementSpec(
        percent_hot=10, replicas=replicas, block_mb=16.0,
        layout=Layout.VERTICAL if replicas else Layout.HORIZONTAL,
    )
    catalog = build_catalog(spec, 6, 1000.0)
    rng = random.Random(11)
    skew = HotColdSkew(80.0)
    source = (
        ClosedSource(12, skew, catalog, rng)
        if closed
        else OpenSource(120.0, skew, catalog, rng)
    )
    faults = (
        FaultInjector(fault_config, catalog, drive_count=drive_count)
        if fault_config is not None
        else None
    )
    return MultiDriveSimulator(
        env=Environment(),
        catalog=catalog,
        source=source,
        metrics=MetricsCollector(block_mb=16.0, warmup_s=0.0),
        scheduler_factory=lambda: make_scheduler("dynamic-max-bandwidth"),
        drive_count=drive_count,
        tape_count=6,
        capacity_mb=1000.0,
        faults=faults,
    )


class TestMultiDriveDegradedMode:
    def test_surviving_drives_keep_serving_through_failures(self):
        simulator = make_simulator(
            FaultConfig(drive_mtbf_s=4_000.0, drive_mttr_s=2_000.0, seed=3)
        )
        report = simulator.run(HORIZON)
        assert report.drive_failures > 0
        assert report.completed > 0
        # A failed drive must not strand its claimed tape.
        for tape_id, owner in simulator.claims.items():
            assert simulator.drives[owner].mounted_id == tape_id

    def test_failed_drive_releases_claim(self):
        simulator = make_simulator(
            FaultConfig(drive_mtbf_s=2_000.0, drive_mttr_s=10_000.0, seed=3)
        )
        simulator.run(HORIZON)
        # Claims only ever point at mounted tapes; repairs drop the rest.
        mounted = {
            drive.mounted_id
            for drive in simulator.drives
            if drive.mounted_id is not None
        }
        assert set(simulator.claims) <= mounted

    def test_failover_uses_shared_pending(self):
        report = make_simulator(
            FaultConfig(bad_replica_rate=0.05, seed=13)
        ).run(HORIZON)
        assert report.fault_counts.get("bad-block", 0) > 0
        assert report.failovers > 0
        assert report.served_fraction > 0.9

    def test_robot_pick_retries_under_contention(self):
        report = make_simulator(
            FaultConfig(
                robot_pick_error_rate=0.3,
                seed=3,
                retry=RetryPolicy(max_attempts=4, base_backoff_s=1.0),
            )
        ).run(HORIZON)
        assert report.fault_counts.get("robot-pick", 0) > 0
        assert report.completed > 0

    def test_open_model_under_faults(self):
        report = make_simulator(
            FaultConfig(media_error_rate=0.05, drive_mtbf_s=8_000.0, seed=3),
            closed=False,
        ).run(HORIZON)
        assert report.completed > 0
        assert report.retries > 0

    def test_fault_free_multidrive_unchanged(self):
        clean = make_simulator(None).run(HORIZON)
        assert clean.fault_counts == {}
        assert clean.served_fraction == 1.0
