"""Tests for the fault injector's typed, seeded fault decisions."""

import pytest

from repro.faults import (
    BadBlockError,
    DriveFailureError,
    FaultConfig,
    FaultError,
    FaultInjector,
    MediaError,
    RobotPickError,
)
from repro.layout import PlacementSpec, build_catalog


def make_catalog(tape_count=4, replicas=0):
    spec = PlacementSpec(percent_hot=10, replicas=replicas, block_mb=16.0)
    return build_catalog(spec, tape_count, 1000.0)


class TestFaultTypes:
    def test_typed_hierarchy(self):
        for cls in (MediaError, BadBlockError, DriveFailureError, RobotPickError):
            assert issubclass(cls, FaultError)
            assert issubclass(cls, RuntimeError)

    def test_transient_flags(self):
        assert MediaError("x").transient
        assert RobotPickError("x").transient
        assert not BadBlockError("x").transient
        assert not DriveFailureError("x").transient

    def test_faults_carry_location(self):
        fault = MediaError("soft error", tape_id=3, block_id=17)
        assert fault.tape_id == 3
        assert fault.block_id == 17
        assert fault.kind == "media-error"


class TestMediaErrors:
    def test_zero_rate_never_faults(self):
        injector = FaultInjector(FaultConfig(), make_catalog())
        for block_id in range(50):
            assert injector.read_fault(0, block_id) is None
        assert injector.injected == {}

    def test_rate_one_always_faults(self):
        injector = FaultInjector(
            FaultConfig(media_error_rate=1.0), make_catalog()
        )
        fault = injector.read_fault(0, 1)
        assert isinstance(fault, MediaError)
        assert injector.injected["media-error"] == 1

    def test_per_tape_override(self):
        config = FaultConfig(
            media_error_rate=0.0, tape_media_error_rates=((2, 1.0),)
        )
        injector = FaultInjector(config, make_catalog())
        assert injector.read_fault(0, 1) is None
        assert isinstance(injector.read_fault(2, 1), MediaError)

    def test_same_seed_same_faults(self):
        def pattern(seed):
            injector = FaultInjector(
                FaultConfig(media_error_rate=0.3, seed=seed), make_catalog()
            )
            return [injector.read_fault(0, b) is not None for b in range(100)]

        assert pattern(5) == pattern(5)
        assert pattern(5) != pattern(6)


class TestBadReplicas:
    def test_sampled_once_from_seed(self):
        catalog = make_catalog(replicas=2)
        first = FaultInjector(FaultConfig(bad_replica_rate=0.1, seed=9), catalog)
        second = FaultInjector(FaultConfig(bad_replica_rate=0.1, seed=9), catalog)
        assert first.bad_replicas == second.bad_replicas
        assert first.bad_replicas  # 10% of hundreds of copies

    def test_bad_copy_faults_permanently(self):
        catalog = make_catalog(replicas=2)
        injector = FaultInjector(FaultConfig(bad_replica_rate=0.1, seed=9), catalog)
        tape_id, block_id = next(iter(injector.bad_replicas))
        fault = injector.read_fault(tape_id, block_id)
        assert isinstance(fault, BadBlockError)
        assert not fault.transient

    def test_discovery_is_not_clairvoyant(self):
        """Undiscovered bad copies still count as survivors."""
        catalog = make_catalog(replicas=2)
        injector = FaultInjector(FaultConfig(bad_replica_rate=0.1, seed=9), catalog)
        tape_id, block_id = next(iter(injector.bad_replicas))
        survivors = {r.tape_id for r in injector.surviving_replicas(block_id)}
        assert tape_id in survivors  # not yet discovered
        injector.condemn_replica(tape_id, block_id)
        survivors = {r.tape_id for r in injector.surviving_replicas(block_id)}
        assert tape_id not in survivors

    def test_block_lost_when_all_copies_condemned(self):
        catalog = make_catalog(replicas=0)
        injector = FaultInjector(FaultConfig(media_error_rate=0.1), catalog)
        replica = catalog.replicas_of(0)[0]
        assert not injector.block_lost(0)
        injector.condemn_replica(replica.tape_id, 0)
        assert injector.block_lost(0)


class TestRobotAndDrives:
    def test_robot_pick_fault(self):
        injector = FaultInjector(
            FaultConfig(robot_pick_error_rate=1.0), make_catalog()
        )
        fault = injector.robot_pick_fault(3)
        assert isinstance(fault, RobotPickError)
        assert fault.tape_id == 3

    def test_failed_tape_masks_survivors(self):
        catalog = make_catalog(replicas=1)
        injector = FaultInjector(FaultConfig(media_error_rate=0.1), catalog)
        replicas = catalog.replicas_of(0)
        assert len(replicas) == 2
        injector.fail_tape(replicas[0].tape_id)
        assert injector.tape_failed(replicas[0].tape_id)
        survivors = injector.surviving_replicas(0)
        assert [r.tape_id for r in survivors] == [replicas[1].tape_id]

    def test_no_mtbf_means_no_drive_failures(self):
        injector = FaultInjector(FaultConfig(media_error_rate=0.1), make_catalog())
        assert not injector.drive_failure_due(0, 1e12)

    def test_drive_failure_clock_rearms_after_repair(self):
        injector = FaultInjector(
            FaultConfig(drive_mtbf_s=1000.0, drive_mttr_s=100.0), make_catalog()
        )
        due_at = injector._next_failure_s[0]
        assert injector.drive_failure_due(0, due_at)
        repair_s = injector.begin_repair(0, due_at)
        assert repair_s > 0
        assert not injector.drive_failure_due(0, due_at + repair_s)
        assert injector.injected["drive-failure"] == 1

    def test_per_drive_clocks_are_independent(self):
        injector = FaultInjector(
            FaultConfig(drive_mtbf_s=1000.0), make_catalog(), drive_count=3
        )
        assert len(set(injector._next_failure_s)) == 3

    def test_drive_count_validated(self):
        with pytest.raises(ValueError):
            FaultInjector(FaultConfig(), make_catalog(), drive_count=0)


class TestFaultConfig:
    def test_default_is_inert(self):
        assert not FaultConfig().enabled

    def test_any_rate_enables(self):
        assert FaultConfig(media_error_rate=0.01).enabled
        assert FaultConfig(bad_replica_rate=0.01).enabled
        assert FaultConfig(robot_pick_error_rate=0.01).enabled
        assert FaultConfig(drive_mtbf_s=1e6).enabled
        assert FaultConfig(tape_media_error_rates=((0, 0.5),)).enabled

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultConfig(media_error_rate=-0.1)
        with pytest.raises(ValueError):
            FaultConfig(bad_replica_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(robot_pick_error_rate=-1.0)
        with pytest.raises(ValueError):
            FaultConfig(drive_mtbf_s=0.0)
        with pytest.raises(ValueError):
            FaultConfig(drive_mttr_s=-5.0)
        with pytest.raises(ValueError):
            FaultConfig(tape_media_error_rates=((0, 2.0),))

    def test_config_is_hashable(self):
        config = FaultConfig(tape_media_error_rates=((1, 0.5),))
        assert hash(config) == hash(FaultConfig(tape_media_error_rates=((1, 0.5),)))
