"""Determinism: one seed pins the whole faulted, noisy simulation."""

import random

from repro.core import make_scheduler
from repro.des import Environment
from repro.faults import FaultConfig, FaultInjector
from repro.layout import Layout, PlacementSpec, build_catalog
from repro.service import JukeboxSimulator, MetricsCollector
from repro.service.oplog import OperationLog
from repro.tape import EXB_8505XL, Jukebox, NoisyTimingModel, RobotArm, TapeDrive, TapePool

HORIZON = 20_000.0


def run_noisy_faulted(workload_seed, noise_seed, fault_seed):
    """One run combining noisy timing with fault injection."""
    spec = PlacementSpec(
        layout=Layout.VERTICAL, percent_hot=10, replicas=2, block_mb=16.0
    )
    catalog = build_catalog(spec, 4, 1000.0)
    timing = NoisyTimingModel(
        EXB_8505XL,
        random.Random(noise_seed),
        locate_amplitude=0.02,
        read_amplitude=0.10,
    )
    jukebox = Jukebox(
        pool=TapePool.uniform(4, 1000.0),
        drive=TapeDrive(timing=timing),
        robot=RobotArm(timing=timing, slot_count=4),
    )
    faults = FaultInjector(
        FaultConfig(
            media_error_rate=0.05,
            bad_replica_rate=0.03,
            robot_pick_error_rate=0.05,
            drive_mtbf_s=8_000.0,
            drive_mttr_s=500.0,
            seed=fault_seed,
        ),
        catalog,
    )
    log = OperationLog()
    from repro.workload import ClosedSource, HotColdSkew

    simulator = JukeboxSimulator(
        env=Environment(),
        jukebox=jukebox,
        catalog=catalog,
        scheduler=make_scheduler("dynamic-max-bandwidth"),
        source=ClosedSource(
            12, HotColdSkew(80.0), catalog, random.Random(workload_seed)
        ),
        metrics=MetricsCollector(block_mb=16.0, warmup_s=0.0),
        oplog=log,
        faults=faults,
    )
    report = simulator.run(HORIZON)
    return report, list(log)


class TestDeterministicSeeding:
    def test_same_seeds_identical_operation_log(self):
        first_report, first_log = run_noisy_faulted(1, 2, 3)
        second_report, second_log = run_noisy_faulted(1, 2, 3)
        assert first_log == second_log
        assert first_report == second_report
        # The run actually exercised the fault machinery.
        assert first_report.fault_counts

    def test_fault_seed_changes_fault_pattern_only_at_source(self):
        _, base_log = run_noisy_faulted(1, 2, 3)
        _, other_log = run_noisy_faulted(1, 2, 4)
        assert base_log != other_log

    def test_noise_seed_changes_timings(self):
        _, base_log = run_noisy_faulted(1, 2, 3)
        _, other_log = run_noisy_faulted(1, 5, 3)
        assert base_log != other_log
