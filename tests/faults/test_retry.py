"""Tests for the bounded exponential-backoff retry policy."""

import pytest

from repro.faults import RetryPolicy


class TestRetryPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(
            max_attempts=6, base_backoff_s=2.0, multiplier=2.0, max_backoff_s=10.0
        )
        assert policy.backoff_s(0) == 2.0
        assert policy.backoff_s(1) == 4.0
        assert policy.backoff_s(2) == 8.0
        assert policy.backoff_s(3) == 10.0  # capped
        assert policy.backoff_s(4) == 10.0

    def test_allows_counts_attempts(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.allows(1)
        assert policy.allows(2)
        assert not policy.allows(3)

    def test_single_attempt_means_no_retries(self):
        policy = RetryPolicy(max_attempts=1)
        assert not policy.allows(1)
        assert policy.total_backoff_s() == 0.0

    def test_total_backoff_sums_the_schedule(self):
        policy = RetryPolicy(
            max_attempts=4, base_backoff_s=1.0, multiplier=2.0, max_backoff_s=100.0
        )
        # Three retries: 1 + 2 + 4.
        assert policy.total_backoff_s() == pytest.approx(7.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_backoff_s=-1.0)

    def test_policy_is_frozen_and_hashable(self):
        policy = RetryPolicy()
        with pytest.raises(AttributeError):
            policy.max_attempts = 5
        assert hash(policy) == hash(RetryPolicy())
