"""Simulator-level fault recovery: retries, failover, degraded service."""

import dataclasses
import random

import pytest

from repro.core import make_scheduler
from repro.des import Environment
from repro.experiments import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.faults import FaultConfig, FaultInjector, RetryPolicy
from repro.layout import Layout, PlacementSpec, build_catalog
from repro.service import JukeboxSimulator, MetricsCollector
from repro.service.oplog import OpKind, OperationLog
from repro.tape import Jukebox
from repro.workload import ClosedSource, HotColdSkew

HORIZON = 30_000.0


def make_simulator(
    fault_config=None,
    scheduler_name="dynamic-max-bandwidth",
    replicas=0,
    tape_count=4,
    queue_length=12,
    seed=1,
    oplog=None,
):
    spec = PlacementSpec(
        percent_hot=10, replicas=replicas, block_mb=16.0,
        layout=Layout.VERTICAL if replicas else Layout.HORIZONTAL,
    )
    catalog = build_catalog(spec, tape_count, 1000.0)
    faults = (
        FaultInjector(fault_config, catalog) if fault_config is not None else None
    )
    return JukeboxSimulator(
        env=Environment(),
        jukebox=Jukebox.build(tape_count=tape_count, capacity_mb=1000.0),
        catalog=catalog,
        scheduler=make_scheduler(scheduler_name),
        source=ClosedSource(
            queue_length, HotColdSkew(80.0), catalog, random.Random(seed)
        ),
        metrics=MetricsCollector(block_mb=16.0, warmup_s=0.0),
        oplog=oplog,
        faults=faults,
    )


class TestTransientRecovery:
    def test_media_errors_are_retried_and_absorbed(self):
        log = OperationLog()
        report = make_simulator(
            FaultConfig(
                media_error_rate=0.1,
                retry=RetryPolicy(max_attempts=10, base_backoff_s=1.0),
            ),
            oplog=log,
        ).run(HORIZON)
        assert report.retries > 0
        assert report.fault_counts["media-error"] > 0
        # A generous retry budget absorbs every transient fault.
        assert report.failed_requests == 0
        assert report.served_fraction == 1.0
        kinds = {op.kind for op in log}
        assert OpKind.FAULT in kinds
        assert OpKind.BACKOFF in kinds

    def test_retries_cost_simulated_time(self):
        clean = make_simulator(None).run(HORIZON)
        faulted = make_simulator(
            FaultConfig(media_error_rate=0.2, retry=RetryPolicy(max_attempts=8))
        ).run(HORIZON)
        assert faulted.mean_response_s > clean.mean_response_s


class TestReplicaFailover:
    def test_failover_serves_from_surviving_copy(self):
        report = make_simulator(
            FaultConfig(bad_replica_rate=0.05, seed=13), replicas=2
        ).run(HORIZON)
        assert report.fault_counts.get("bad-block", 0) > 0
        assert report.failovers > 0
        # Hot blocks carry 3 copies here; the workload is hot-heavy, so
        # nearly everything fails over successfully.
        assert report.served_fraction > 0.95

    def test_unreplicated_bad_block_fails_requests(self):
        report = make_simulator(
            FaultConfig(bad_replica_rate=0.05, seed=13), replicas=0
        ).run(HORIZON)
        assert report.fault_counts.get("bad-block", 0) > 0
        assert report.failed_requests > 0
        assert report.served_fraction < 1.0
        assert report.failovers == 0  # nowhere to fail over to

    def test_condemned_copy_is_not_replanned(self):
        """Each bad copy is discovered at most once, then masked."""
        simulator = make_simulator(
            FaultConfig(bad_replica_rate=0.05, seed=13), replicas=2
        )
        report = simulator.run(HORIZON)
        discovered = len(simulator.faults.known_bad)
        assert report.fault_counts["bad-block"] == discovered

    def test_every_scheduler_family_survives_faults(self):
        config = FaultConfig(
            media_error_rate=0.05, bad_replica_rate=0.03,
            robot_pick_error_rate=0.02, seed=13,
        )
        for name in (
            "fifo",
            "static-max-requests",
            "dynamic-max-bandwidth",
            "envelope-max-requests",
        ):
            report = make_simulator(
                config, scheduler_name=name, replicas=2
            ).run(HORIZON)
            assert report.completed > 0, name


class TestDriveFailures:
    def test_drive_failure_pauses_service_and_recovers(self):
        log = OperationLog()
        report = make_simulator(
            FaultConfig(drive_mtbf_s=5_000.0, drive_mttr_s=500.0, seed=3),
            oplog=log,
        ).run(HORIZON)
        assert report.drive_failures > 0
        assert report.mean_repair_s > 0
        assert any(op.kind is OpKind.REPAIR for op in log)
        # Service continues after repairs.
        assert report.completed > 0

    def test_stuck_cartridge_takes_tape_out_of_service(self):
        simulator = make_simulator(
            FaultConfig(
                robot_pick_error_rate=0.9,
                seed=3,
                retry=RetryPolicy(max_attempts=2, base_backoff_s=1.0),
            ),
            replicas=2,
        )
        report = simulator.run(HORIZON)
        assert simulator.faults.failed_tapes
        assert report.fault_counts["robot-pick"] > 0
        # The masked catalog steered later sweeps around the dead tapes.
        for tape_id in simulator.faults.failed_tapes:
            assert not simulator.context.catalog.has_replica_on(0, tape_id)


class TestPayForWhatYouUse:
    def test_disabled_faults_bit_identical_via_runner(self):
        base = ExperimentConfig(
            scheduler="dynamic-max-bandwidth", tape_count=4, capacity_mb=1000.0,
            horizon_s=HORIZON, queue_length=12, seed=5, warmup_fraction=0.0,
        )
        clean = run_experiment(base).report
        inert = run_experiment(base.with_(faults=FaultConfig())).report
        assert dataclasses.asdict(clean) == dataclasses.asdict(inert)

    def test_no_injector_means_no_fault_state(self):
        simulator = make_simulator(None)
        assert simulator.faults is None
        report = simulator.run(HORIZON)
        assert report.fault_counts == {}
        assert report.retries == 0
        assert report.served_fraction == 1.0
