"""Unit and property tests for layout builders."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.layout import (
    Layout,
    PlacementSpec,
    build_catalog,
    expansion_factor,
    logical_block_budget,
    validate_catalog,
)

CAPACITY_MB = 7.0 * 1024
TAPES = 10
SLOTS = int(CAPACITY_MB // 16) * TAPES  # 4480 sixteen-MB slots


class TestSpecValidation:
    def test_percent_hot_bounds(self):
        with pytest.raises(ValueError):
            PlacementSpec(percent_hot=-1)
        with pytest.raises(ValueError):
            PlacementSpec(percent_hot=101)

    def test_negative_replicas(self):
        with pytest.raises(ValueError):
            PlacementSpec(replicas=-1)

    def test_start_position_bounds(self):
        with pytest.raises(ValueError):
            PlacementSpec(start_position=1.5)

    def test_block_size_positive(self):
        with pytest.raises(ValueError):
            PlacementSpec(block_mb=0)

    def test_expansion_factor(self):
        assert PlacementSpec(percent_hot=10, replicas=9).expansion_factor == pytest.approx(1.9)
        assert expansion_factor(0, 10) == 1.0
        assert expansion_factor(4, 25) == pytest.approx(2.0)


class TestBudget:
    def test_no_replication_uses_all_slots(self):
        n_logical, n_hot = logical_block_budget(SLOTS, replicas=0, percent_hot=10)
        assert n_logical == SLOTS
        assert n_hot == SLOTS // 10

    def test_full_replication_budget_fits(self):
        n_logical, n_hot = logical_block_budget(SLOTS, replicas=9, percent_hot=10)
        assert n_logical + 9 * n_hot <= SLOTS
        # Within one block of the analytic capacity / E.
        assert n_logical == pytest.approx(SLOTS / 1.9, abs=2)

    def test_zero_slots_rejected(self):
        with pytest.raises(ValueError):
            logical_block_budget(0, 0, 10)

    @given(
        replicas=st.integers(min_value=0, max_value=9),
        percent_hot=st.floats(min_value=0, max_value=50, allow_nan=False),
    )
    def test_budget_always_feasible(self, replicas, percent_hot):
        n_logical, n_hot = logical_block_budget(SLOTS, replicas, percent_hot)
        assert n_logical + replicas * n_hot <= SLOTS
        assert 0 <= n_hot <= n_logical


class TestHorizontalLayout:
    def test_no_replication_fills_jukebox(self):
        spec = PlacementSpec(layout=Layout.HORIZONTAL, percent_hot=10, replicas=0)
        catalog = build_catalog(spec, TAPES, CAPACITY_MB)
        validate_catalog(catalog, TAPES, CAPACITY_MB, expected_replicas=0)
        assert catalog.n_blocks == SLOTS
        assert catalog.n_hot == SLOTS // 10

    def test_hot_blocks_spread_over_all_tapes(self):
        spec = PlacementSpec(layout=Layout.HORIZONTAL, percent_hot=10, replicas=0)
        catalog = build_catalog(spec, TAPES, CAPACITY_MB)
        hot_per_tape = {tape_id: 0 for tape_id in range(TAPES)}
        for block_id in range(catalog.n_hot):
            replica = catalog.replicas_of(block_id)[0]
            hot_per_tape[replica.tape_id] += 1
        counts = set(hot_per_tape.values())
        assert max(counts) - min(counts) <= 1  # even spread

    def test_sp0_places_hot_at_beginning(self):
        spec = PlacementSpec(percent_hot=10, replicas=0, start_position=0.0)
        catalog = build_catalog(spec, TAPES, CAPACITY_MB)
        slots_per_tape = int(CAPACITY_MB // 16)
        hot_slots = catalog.n_hot // TAPES
        for tape_id in range(TAPES):
            contents = catalog.tape_contents(tape_id)
            leading = [block for _pos, block in contents[:hot_slots]]
            assert all(catalog.is_hot(block) for block in leading)

    def test_sp1_places_hot_at_end(self):
        spec = PlacementSpec(percent_hot=10, replicas=0, start_position=1.0)
        catalog = build_catalog(spec, TAPES, CAPACITY_MB)
        hot_slots = catalog.n_hot // TAPES
        for tape_id in range(TAPES):
            contents = catalog.tape_contents(tape_id)
            trailing = [block for _pos, block in contents[-hot_slots:]]
            assert all(catalog.is_hot(block) for block in trailing)

    def test_sp_half_places_hot_in_middle(self):
        spec = PlacementSpec(percent_hot=10, replicas=0, start_position=0.5)
        catalog = build_catalog(spec, TAPES, CAPACITY_MB)
        contents = catalog.tape_contents(0)
        hot_positions = [
            position for position, block in contents if catalog.is_hot(block)
        ]
        tape_extent = contents[-1][0]
        center = sum(hot_positions) / len(hot_positions)
        assert 0.3 * tape_extent < center < 0.7 * tape_extent

    def test_full_replication_every_tape_has_every_hot_block(self):
        spec = PlacementSpec(percent_hot=10, replicas=9, start_position=1.0)
        catalog = build_catalog(spec, TAPES, CAPACITY_MB)
        validate_catalog(catalog, TAPES, CAPACITY_MB, expected_replicas=9)
        for block_id in range(catalog.n_hot):
            tapes = {replica.tape_id for replica in catalog.replicas_of(block_id)}
            assert tapes == set(range(TAPES))

    def test_replicas_exceeding_tapes_rejected(self):
        spec = PlacementSpec(percent_hot=10, replicas=10)
        with pytest.raises(ValueError):
            build_catalog(spec, TAPES, CAPACITY_MB)

    def test_block_too_large_rejected(self):
        spec = PlacementSpec(block_mb=CAPACITY_MB * 2)
        with pytest.raises(ValueError):
            build_catalog(spec, TAPES, CAPACITY_MB)


class TestVerticalLayout:
    def test_no_replication_dedicates_one_tape(self):
        """PH-10 on 10 tapes: the hot tape is completely hot (paper 4.3)."""
        spec = PlacementSpec(layout=Layout.VERTICAL, percent_hot=10, replicas=0)
        catalog = build_catalog(spec, TAPES, CAPACITY_MB)
        validate_catalog(catalog, TAPES, CAPACITY_MB, expected_replicas=0)
        hot_tape_blocks = catalog.blocks_on_tape(0)
        assert len(hot_tape_blocks) == int(CAPACITY_MB // 16)
        assert all(catalog.is_hot(block) for block in hot_tape_blocks)

    def test_replicas_distributed_round_robin(self):
        spec = PlacementSpec(
            layout=Layout.VERTICAL, percent_hot=10, replicas=9, start_position=1.0
        )
        catalog = build_catalog(spec, TAPES, CAPACITY_MB)
        validate_catalog(catalog, TAPES, CAPACITY_MB, expected_replicas=9)
        # Every hot block: primary on tape 0, replicas on all others.
        for block_id in range(catalog.n_hot):
            tapes = sorted(replica.tape_id for replica in catalog.replicas_of(block_id))
            assert tapes == list(range(TAPES))

    def test_partial_replication_counts(self):
        spec = PlacementSpec(
            layout=Layout.VERTICAL, percent_hot=10, replicas=3, start_position=1.0
        )
        catalog = build_catalog(spec, TAPES, CAPACITY_MB)
        validate_catalog(catalog, TAPES, CAPACITY_MB, expected_replicas=3)

    def test_replicas_at_tape_end_under_sp1(self):
        spec = PlacementSpec(
            layout=Layout.VERTICAL, percent_hot=10, replicas=9, start_position=1.0
        )
        catalog = build_catalog(spec, TAPES, CAPACITY_MB)
        contents = catalog.tape_contents(5)
        # The trailing region of a replica tape holds only hot blocks.
        tail = [block for _pos, block in contents[len(contents) // 2 :]]
        assert all(catalog.is_hot(block) for block in tail)


class TestPackedLayout:
    def test_pack_cold_concentrates_data(self):
        spec = PlacementSpec(
            layout=Layout.VERTICAL, percent_hot=10, replicas=0, pack_cold=True
        )
        catalog = build_catalog(spec, TAPES, CAPACITY_MB)
        validate_catalog(catalog, TAPES, CAPACITY_MB, expected_replicas=0)
        per_tape = [len(catalog.blocks_on_tape(tape_id)) for tape_id in range(TAPES)]
        # Everything full here (no spare), but packing keeps order dense.
        assert sum(per_tape) == catalog.total_copies()


@settings(max_examples=25, deadline=None)
@given(
    layout=st.sampled_from([Layout.HORIZONTAL, Layout.VERTICAL]),
    percent_hot=st.sampled_from([5.0, 10.0, 20.0]),
    replicas=st.integers(min_value=0, max_value=8),
    start_position=st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0]),
)
def test_every_layout_satisfies_invariants(layout, percent_hot, replicas, start_position):
    """Any spec in the paper's parameter space builds a valid catalog."""
    spec = PlacementSpec(
        layout=layout,
        percent_hot=percent_hot,
        replicas=replicas,
        start_position=start_position,
        block_mb=16.0,
    )
    catalog = build_catalog(spec, TAPES, CAPACITY_MB)
    validate_catalog(catalog, TAPES, CAPACITY_MB, expected_replicas=replicas)
    # The jukebox is nearly full: slack below one block per tape per stream.
    assert catalog.total_copies() >= SLOTS - 2 * TAPES
