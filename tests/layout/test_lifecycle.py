"""Tests for the Section 4.8 jukebox-filling lifecycle planner."""

import pytest

from repro.layout import Layout, build_catalog, validate_catalog
from repro.layout.lifecycle import LifecyclePlanner, LifecycleStage

TAPES = 10
CAPACITY = 7 * 1024.0
SLOTS = int(CAPACITY // 16) * TAPES  # 4480


@pytest.fixture
def planner():
    return LifecyclePlanner(tape_count=TAPES, capacity_mb=CAPACITY)


class TestValidation:
    def test_needs_two_tapes(self):
        with pytest.raises(ValueError):
            LifecyclePlanner(tape_count=1, capacity_mb=CAPACITY)

    def test_percent_hot_bounds(self):
        with pytest.raises(ValueError):
            LifecyclePlanner(tape_count=5, capacity_mb=CAPACITY, percent_hot=0.0)

    def test_data_volume_bounds(self, planner):
        with pytest.raises(ValueError):
            planner.max_replicas_for(0)
        with pytest.raises(ValueError):
            planner.max_replicas_for(SLOTS + 1)

    def test_schedule_fraction_bounds(self, planner):
        with pytest.raises(ValueError):
            planner.schedule([1.5])


class TestMaxReplicas:
    def test_half_full_jukebox_fits_full_replication(self, planner):
        """At ~53% fill, spare capacity covers 9 replicas of the hot 10%."""
        data_blocks = int(SLOTS * 0.52)
        assert planner.max_replicas_for(data_blocks) == TAPES - 1

    def test_tape_count_caps_replicas(self, planner):
        """A nearly empty jukebox is capped by one-copy-per-tape."""
        assert planner.max_replicas_for(100) == TAPES - 1

    def test_full_jukebox_fits_none(self, planner):
        assert planner.max_replicas_for(SLOTS) == 0

    def test_replicas_shrink_monotonically_with_fill(self, planner):
        previous = TAPES
        for fraction in (0.3, 0.5, 0.7, 0.85, 0.95, 1.0):
            replicas = planner.max_replicas_for(int(SLOTS * fraction))
            assert replicas <= previous
            previous = replicas


class TestStages:
    def test_filling_stage_while_replicas_fit(self, planner):
        assert planner.stage_of(int(SLOTS * 0.5)) is LifecycleStage.FILLING

    def test_near_overflow_keeps_vertical_until_cold_overflows(self, planner):
        """Just past the last replica slot but cold still fits on 9 tapes."""
        data_blocks = int(SLOTS * 0.95)
        assert planner.max_replicas_for(data_blocks) == 0
        assert planner.stage_of(data_blocks) is LifecycleStage.NEAR_OVERFLOW

    def test_recaptured_at_the_brim(self, planner):
        assert planner.stage_of(SLOTS) is LifecycleStage.RECAPTURED


class TestPlans:
    def test_filling_plan_matches_paper(self, planner):
        plan = planner.plan(int(SLOTS * 0.5))
        assert plan.stage is LifecycleStage.FILLING
        assert plan.spec.layout is Layout.VERTICAL
        assert plan.spec.start_position == 1.0  # replicas at tape ends
        assert plan.replicas == TAPES - 1

    def test_recaptured_plan_is_paper_baseline(self, planner):
        plan = planner.plan(SLOTS)
        assert plan.spec.layout is Layout.HORIZONTAL
        assert plan.spec.replicas == 0
        assert plan.spec.start_position == 0.0  # hot at beginnings
        assert plan.base_utilization == pytest.approx(1.0)

    def test_every_plan_builds_a_valid_catalog(self, planner):
        """The planner's specs must be realizable on the hardware."""
        for fraction in (0.3, 0.6, 0.8, 1.0):
            plan = planner.plan(int(SLOTS * fraction))
            catalog = build_catalog(plan.spec, TAPES, CAPACITY)
            validate_catalog(
                catalog, TAPES, CAPACITY, expected_replicas=plan.spec.replicas
            )

    def test_schedule_traces_the_lifecycle(self, planner):
        plans = planner.schedule((0.4, 0.7, 0.9, 1.0))
        stages = [plan.stage for plan in plans]
        assert stages[0] is LifecycleStage.FILLING
        assert stages[-1] is LifecycleStage.RECAPTURED
        # Stages never regress as the jukebox fills.
        order = [LifecycleStage.FILLING, LifecycleStage.NEAR_OVERFLOW,
                 LifecycleStage.RECAPTURED]
        indices = [order.index(stage) for stage in stages]
        assert indices == sorted(indices)

    def test_replica_count_decreases_along_schedule(self, planner):
        plans = planner.schedule((0.3, 0.5, 0.7, 0.9))
        replica_counts = [plan.replicas for plan in plans]
        assert replica_counts == sorted(replica_counts, reverse=True)
