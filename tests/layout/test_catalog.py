"""Unit tests for the block catalog."""

import pytest

from repro.layout import BlockCatalog, Replica


def make_catalog():
    """3 blocks: block 0 hot with 2 copies, blocks 1-2 cold singletons."""
    return BlockCatalog(
        block_mb=16.0,
        n_hot=1,
        replicas_by_block=[
            [Replica(0, 0.0), Replica(1, 32.0)],
            [Replica(0, 16.0)],
            [Replica(1, 0.0)],
        ],
    )


class TestConstruction:
    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            BlockCatalog(block_mb=0, n_hot=0, replicas_by_block=[])

    def test_n_hot_out_of_range(self):
        with pytest.raises(ValueError):
            BlockCatalog(block_mb=1, n_hot=2, replicas_by_block=[[Replica(0, 0.0)]])

    def test_block_without_replicas_rejected(self):
        with pytest.raises(ValueError):
            BlockCatalog(block_mb=1, n_hot=0, replicas_by_block=[[]])

    def test_two_copies_on_one_tape_rejected(self):
        with pytest.raises(ValueError):
            BlockCatalog(
                block_mb=1,
                n_hot=0,
                replicas_by_block=[[Replica(0, 0.0), Replica(0, 5.0)]],
            )


class TestQueries:
    def test_counts(self):
        catalog = make_catalog()
        assert catalog.n_blocks == 3
        assert catalog.n_hot == 1
        assert catalog.n_cold == 2
        assert catalog.total_copies() == 4

    def test_hotness(self):
        catalog = make_catalog()
        assert catalog.is_hot(0)
        assert not catalog.is_hot(1)
        assert not catalog.is_hot(2)

    def test_replicas_sorted(self):
        catalog = make_catalog()
        replicas = catalog.replicas_of(0)
        assert [replica.tape_id for replica in replicas] == [0, 1]

    def test_replica_on(self):
        catalog = make_catalog()
        assert catalog.replica_on(0, 1) == Replica(1, 32.0)
        with pytest.raises(KeyError):
            catalog.replica_on(1, 1)

    def test_has_replica_on(self):
        catalog = make_catalog()
        assert catalog.has_replica_on(0, 0)
        assert catalog.has_replica_on(0, 1)
        assert not catalog.has_replica_on(2, 0)

    def test_replication_degree(self):
        catalog = make_catalog()
        assert catalog.replication_degree(0) == 2
        assert catalog.replication_degree(1) == 1

    def test_tape_contents_sorted_by_position(self):
        catalog = make_catalog()
        assert catalog.tape_contents(0) == ((0.0, 0), (16.0, 1))
        assert catalog.tape_contents(1) == ((0.0, 2), (32.0, 0))
        assert catalog.tape_contents(7) == ()

    def test_blocks_on_tape(self):
        catalog = make_catalog()
        assert catalog.blocks_on_tape(1) == [2, 0]

    def test_as_mapping(self):
        catalog = make_catalog()
        mapping = catalog.as_mapping()
        assert set(mapping) == {0, 1, 2}
        assert mapping[2] == (Replica(1, 0.0),)
