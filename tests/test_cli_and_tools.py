"""Tests for the remaining CLI subcommands and the doc generator."""

import pytest


class TestLifecycleCommand:
    def test_default_schedule(self, capsys):
        from repro.cli import main

        assert main(["lifecycle"]) == 0
        out = capsys.readouterr().out
        assert "filling" in out
        assert "recaptured" in out
        assert "vertical" in out

    def test_custom_parameters(self, capsys):
        from repro.cli import main

        assert main(["lifecycle", "--tapes", "5", "--fills", "0.5,1.0"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 3  # header + separator + 2 rows


class TestChaosCommand:
    CHAOS_BASE = [
        "chaos", "--tapes", "4", "--queue", "10", "--horizon", "12000",
        "--seed", "5",
    ]

    def test_single_run_prints_fault_table(self, capsys):
        from repro.cli import main

        assert main(
            self.CHAOS_BASE
            + [
                "--replicas", "2",
                "--media-error-rate", "0.1",
                "--bad-replica-rate", "0.02",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "media-error" in out
        assert "retries" in out
        assert "served fraction" in out

    def test_compare_replicas_table(self, capsys):
        from repro.cli import main

        assert main(
            self.CHAOS_BASE
            + ["--bad-replica-rate", "0.05", "--compare-replicas", "0,2"]
        ) == 0
        out = capsys.readouterr().out
        assert "NR-0" in out
        assert "NR-2" in out
        assert "served_frac" in out

    def test_fault_free_chaos_run(self, capsys):
        from repro.cli import main

        assert main(self.CHAOS_BASE + ["--media-error-rate", "0"]) == 0
        out = capsys.readouterr().out
        assert "served fraction: 1.0000" in out


class TestApiDocGenerator:
    def test_render_covers_all_packages(self):
        import sys
        from pathlib import Path

        sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
        try:
            import gen_api_docs
        finally:
            sys.path.pop(0)

        text = gen_api_docs.render()
        for section in (
            "## `repro.core.envelope`",
            "## `repro.tape.timing`",
            "## `repro.des`",
            "## `repro.hierarchy`",
        ):
            assert section in text
        assert "EnvelopeScheduler" in text
        assert "(undocumented)" not in text, "every public item needs a docstring"

    def test_first_line_helper(self):
        import sys
        from pathlib import Path

        sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
        try:
            import gen_api_docs
        finally:
            sys.path.pop(0)

        def documented():
            """One line.

            More detail.
            """

        assert gen_api_docs.first_line(documented) == "One line."
        assert gen_api_docs.first_line(type("X", (), {})()) != ""


class TestQosCommand:
    QOS_BASE = [
        "qos", "--tapes", "4", "--queue", "10", "--horizon", "20000",
        "--seed", "5",
    ]

    def test_run_prints_slo_table(self, capsys):
        from repro.cli import main

        assert main(
            self.QOS_BASE
            + [
                "--deadline", "1500",
                "--admission", "bounded-queue",
                "--max-pending", "8",
                "--starvation-age", "4000",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "slo metric" in out
        assert "deadline miss rate" in out
        assert "expired requests" in out

    def test_csv_output(self, capsys):
        from repro.cli import main

        assert main(self.QOS_BASE + ["--deadline", "1500", "--csv"]) == 0
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        assert lines[0].startswith("config,completed,p50_s")
        assert len(lines) == 2

    def test_invalid_combination_raises(self):
        from repro.cli import main

        # max-pending without bounded-queue is a QoSConfig validation error.
        with pytest.raises(ValueError, match="max_pending"):
            main(self.QOS_BASE + ["--max-pending", "8"])

    def test_inert_qos_run_is_fine(self, capsys):
        from repro.cli import main

        assert main(self.QOS_BASE) == 0
        out = capsys.readouterr().out
        assert "saturated" in out


class TestPointTimeoutFlag:
    def test_run_accepts_point_timeout(self, capsys):
        from repro.cli import main

        assert main(
            [
                "run", "--tapes", "4", "--queue", "5", "--horizon", "5000",
                "--point-timeout", "300",
            ]
        ) == 0
        assert "throughput" in capsys.readouterr().out
