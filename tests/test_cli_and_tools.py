"""Tests for the remaining CLI subcommands and the doc generator."""

import pytest


class TestLifecycleCommand:
    def test_default_schedule(self, capsys):
        from repro.cli import main

        assert main(["lifecycle"]) == 0
        out = capsys.readouterr().out
        assert "filling" in out
        assert "recaptured" in out
        assert "vertical" in out

    def test_custom_parameters(self, capsys):
        from repro.cli import main

        assert main(["lifecycle", "--tapes", "5", "--fills", "0.5,1.0"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 3  # header + separator + 2 rows


class TestApiDocGenerator:
    def test_render_covers_all_packages(self):
        import sys
        from pathlib import Path

        sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
        try:
            import gen_api_docs
        finally:
            sys.path.pop(0)

        text = gen_api_docs.render()
        for section in (
            "## `repro.core.envelope`",
            "## `repro.tape.timing`",
            "## `repro.des`",
            "## `repro.hierarchy`",
        ):
            assert section in text
        assert "EnvelopeScheduler" in text
        assert "(undocumented)" not in text, "every public item needs a docstring"

    def test_first_line_helper(self):
        import sys
        from pathlib import Path

        sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
        try:
            import gen_api_docs
        finally:
            sys.path.pop(0)

        def documented():
            """One line.

            More detail.
            """

        assert gen_api_docs.first_line(documented) == "One line."
        assert gen_api_docs.first_line(type("X", (), {})()) != ""
