"""QoS threaded through the service loops: deadlines, shedding, breaker."""

import dataclasses

from repro.experiments import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.faults import FaultConfig, RetryPolicy
from repro.qos import QoSConfig
from repro.service.metrics import report_digest as report_hash

HORIZON = 60_000.0

BASE = ExperimentConfig(
    scheduler="dynamic-max-bandwidth",
    tape_count=4,
    capacity_mb=1000.0,
    horizon_s=HORIZON,
    queue_length=12,
    seed=5,
    warmup_fraction=0.0,
)


class TestPayForWhatYouUse:
    def test_inert_qos_bit_identical_single_drive(self):
        clean = run_experiment(BASE).report
        inert = run_experiment(BASE.with_(qos=QoSConfig())).report
        assert dataclasses.asdict(clean) == dataclasses.asdict(inert)
        assert report_hash(clean) == report_hash(inert)

    def test_inert_qos_bit_identical_multidrive(self):
        base = BASE.with_(drive_count=2)
        clean = run_experiment(base).report
        inert = run_experiment(base.with_(qos=QoSConfig())).report
        assert report_hash(clean) == report_hash(inert)

    def test_inert_qos_bit_identical_under_faults(self):
        base = BASE.with_(
            replicas=2,
            faults=FaultConfig(media_error_rate=0.05, retry=RetryPolicy()),
        )
        clean = run_experiment(base).report
        inert = run_experiment(base.with_(qos=QoSConfig())).report
        assert report_hash(clean) == report_hash(inert)

    def test_no_manager_without_qos(self):
        from repro.experiments.runner import build_simulator

        assert build_simulator(BASE).qos is None
        assert build_simulator(BASE.with_(qos=QoSConfig())).qos is None
        assert (
            build_simulator(BASE.with_(qos=QoSConfig(deadline_s=10.0))).qos
            is not None
        )


class TestDeadlines:
    def test_tight_deadline_expires_requests(self):
        report = run_experiment(BASE.with_(qos=QoSConfig(deadline_s=300.0))).report
        assert report.expired_requests > 0
        assert report.deadline_misses >= report.expired_requests
        assert 0.0 < report.deadline_miss_rate <= 1.0

    def test_closed_population_survives_expiry(self):
        # Expired requests spawn replacements, so the closed source keeps
        # offering work and the run keeps completing requests throughout.
        report = run_experiment(BASE.with_(qos=QoSConfig(deadline_s=300.0))).report
        assert report.completed > 0
        assert report.arrivals > BASE.queue_length

    def test_loose_deadline_changes_nothing_material(self):
        clean = run_experiment(BASE).report
        loose = run_experiment(
            BASE.with_(qos=QoSConfig(deadline_s=10.0 * HORIZON))
        ).report
        assert loose.expired_requests == 0
        assert loose.deadline_misses == 0
        assert loose.completed == clean.completed
        assert loose.mean_response_s == clean.mean_response_s

    def test_deadline_stamped_at_admission(self):
        from repro.des import Environment
        from repro.qos.manager import QoSManager
        from repro.service.metrics import MetricsCollector
        from repro.workload.requests import Request

        env = Environment()
        metrics = MetricsCollector(block_mb=16.0)
        manager = QoSManager(QoSConfig(deadline_s=50.0), env, metrics)
        request = Request(request_id=0, block_id=0, arrival_s=0.0)
        metrics.on_arrival(request, 0.0)
        assert manager.admit(request, pending_len=0)
        assert request.deadline_s == 50.0
        assert not request.is_expired(50.0)
        assert request.is_expired(50.0001)


class TestAdmissionInTheLoop:
    def test_bounded_queue_sheds_at_overload(self):
        # Open model at ~4x a loaded jukebox's service rate.
        config = BASE.with_(
            queue_length=None,
            mean_interarrival_s=20.0,
            qos=QoSConfig(admission="bounded-queue", max_pending=15),
        )
        report = run_experiment(config).report
        assert report.shed_requests > 0
        assert report.shed_by_reason.get("queue-full", 0) == report.shed_requests
        # What was admitted still flows through to completion.
        assert report.completed > 0

    def test_token_bucket_caps_admission_rate(self):
        config = BASE.with_(
            queue_length=None,
            mean_interarrival_s=30.0,
            qos=QoSConfig(
                admission="token-bucket", rate_limit_per_s=1 / 300.0, burst=2
            ),
        )
        report = run_experiment(config).report
        assert report.shed_by_reason.get("rate-limit", 0) > 0
        admitted = report.arrivals - report.shed_requests
        # Sustained admissions stay at or under rate * horizon + burst.
        assert admitted <= HORIZON / 300.0 + 2


class TestBreakerInTheLoop:
    def test_fault_storm_trips_breaker(self):
        config = BASE.with_(
            replicas=2,
            faults=FaultConfig(
                media_error_rate=0.5,
                retry=RetryPolicy(max_attempts=6, base_backoff_s=1.0),
            ),
            qos=QoSConfig(storm_fault_threshold=3),
        )
        report = run_experiment(config).report
        assert report.breaker_trips > 0

    def test_stall_watchdog_trips_and_sheds(self):
        # A drive down for most of the horizon stalls sweeps while open
        # arrivals keep pressure on; the watchdog must flip to shedding.
        config = BASE.with_(
            queue_length=None,
            mean_interarrival_s=200.0,
            faults=FaultConfig(drive_mtbf_s=5_000.0, drive_mttr_s=20_000.0),
            qos=QoSConfig(watchdog_stall_s=2_000.0),
        )
        report = run_experiment(config).report
        assert report.breaker_trips > 0
        assert report.shed_by_reason.get("degraded", 0) > 0

    def test_breaker_closes_after_recovery(self):
        from repro.qos import CircuitBreaker

        breaker = CircuitBreaker(QoSConfig(watchdog_stall_s=10.0))
        breaker.evaluate(20.0, pending_len=4)
        assert breaker.is_open
        breaker.note_progress(30.0, pending_len=0)
        assert not breaker.is_open
