"""Unit tests of the admission policies."""

import pytest

from repro.qos import QoSConfig, make_admission
from repro.qos.admission import (
    BoundedQueueAdmission,
    TokenBucketAdmission,
    UnboundedAdmission,
)


class TestUnbounded:
    def test_always_admits(self):
        policy = UnboundedAdmission()
        assert all(policy.admit(now, pending) for now in (0.0, 1e9) for pending in (0, 10**6))


class TestBoundedQueue:
    def test_sheds_at_cap(self):
        policy = BoundedQueueAdmission(max_pending=3)
        assert policy.admit(0.0, 0)
        assert policy.admit(0.0, 2)
        assert not policy.admit(0.0, 3)
        assert not policy.admit(0.0, 10)

    def test_reason_label(self):
        assert BoundedQueueAdmission(1).shed_reason == "queue-full"

    def test_rejects_bad_cap(self):
        with pytest.raises(ValueError):
            BoundedQueueAdmission(0)


class TestTokenBucket:
    def test_burst_then_rate(self):
        policy = TokenBucketAdmission(rate_per_s=1.0, burst=2)
        # The full burst is available at t=0...
        assert policy.admit(0.0, 0)
        assert policy.admit(0.0, 0)
        # ...then the bucket is empty until a token accrues.
        assert not policy.admit(0.5, 0)
        assert policy.admit(1.6, 0)

    def test_tokens_cap_at_burst(self):
        policy = TokenBucketAdmission(rate_per_s=10.0, burst=1)
        # A long quiet period accrues at most `burst` tokens.
        assert policy.admit(1000.0, 0)
        assert not policy.admit(1000.0, 0)

    def test_deterministic_under_replay(self):
        times = [0.0, 0.1, 0.4, 0.4, 2.0, 2.05, 9.0]
        def run():
            policy = TokenBucketAdmission(rate_per_s=0.5, burst=2)
            return [policy.admit(t, 0) for t in times]
        assert run() == run()

    def test_time_never_runs_backwards(self):
        policy = TokenBucketAdmission(rate_per_s=1.0, burst=1)
        assert policy.admit(10.0, 0)
        # An out-of-order call must not mint tokens from negative elapsed.
        assert not policy.admit(5.0, 0)
        assert policy.admit(11.0, 0)

    def test_reason_label(self):
        assert TokenBucketAdmission(1.0).shed_reason == "rate-limit"


class TestFactory:
    def test_builds_each_policy(self):
        assert isinstance(make_admission(QoSConfig()), UnboundedAdmission)
        assert isinstance(
            make_admission(QoSConfig(admission="bounded-queue", max_pending=4)),
            BoundedQueueAdmission,
        )
        bucket = make_admission(
            QoSConfig(admission="token-bucket", rate_limit_per_s=2.0, burst=5)
        )
        assert isinstance(bucket, TokenBucketAdmission)
        assert bucket.rate_per_s == 2.0
        assert bucket.burst == 5
