"""Starvation guard: bounded tails without touching scheduler internals."""

import pytest

from repro.core import make_scheduler
from repro.experiments import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.qos import QoSConfig, StarvationGuardScheduler

HORIZON = 120_000.0

#: A starvation-prone setup: strong skew concentrates the greedy
#: max-requests policy on hot tapes, deferring cold-tape requests.
BASE = ExperimentConfig(
    scheduler="dynamic-max-requests",
    tape_count=8,
    capacity_mb=1000.0,
    percent_hot=10.0,
    percent_requests_hot=90.0,
    horizon_s=HORIZON,
    queue_length=40,
    seed=11,
    warmup_fraction=0.0,
)


class TestWrapper:
    def test_preserves_inner_name(self):
        inner = make_scheduler("dynamic-max-bandwidth")
        wrapped = StarvationGuardScheduler(
            inner, age_threshold_s=100.0, now_fn=lambda: 0.0
        )
        assert wrapped.name == inner.name

    def test_rejects_non_positive_threshold(self):
        inner = make_scheduler("fifo")
        with pytest.raises(ValueError):
            StarvationGuardScheduler(inner, 0.0, now_fn=lambda: 0.0)


class TestGuardInTheLoop:
    def test_guard_fires_and_bounds_the_tail(self):
        threshold = 3_000.0
        unguarded = run_experiment(BASE).report
        guarded = run_experiment(
            BASE.with_(qos=QoSConfig(starvation_age_s=threshold))
        ).report
        assert guarded.forced_promotions > 0
        # The guard trades throughput for tail latency; the worst case
        # must come down relative to the greedy policy alone.
        assert guarded.max_response_s < unguarded.max_response_s

    @pytest.mark.parametrize(
        "scheduler",
        ["fifo", "static-max-requests", "dynamic-max-bandwidth",
         "envelope-max-bandwidth"],
    )
    def test_guard_works_across_scheduler_families(self, scheduler):
        report = run_experiment(
            BASE.with_(
                scheduler=scheduler,
                qos=QoSConfig(starvation_age_s=2_000.0),
            )
        ).report
        assert report.completed > 0

    def test_envelope_tail_capped(self):
        # The acceptance criterion's headline case: the guard caps the
        # envelope scheduler's worst-case response time.
        threshold = 3_000.0
        base = BASE.with_(scheduler="envelope-max-bandwidth")
        unguarded = run_experiment(base).report
        guarded = run_experiment(
            base.with_(qos=QoSConfig(starvation_age_s=threshold))
        ).report
        assert guarded.max_response_s <= unguarded.max_response_s

    def test_no_promotions_when_nothing_starves(self):
        report = run_experiment(
            BASE.with_(qos=QoSConfig(starvation_age_s=10.0 * HORIZON))
        ).report
        assert report.forced_promotions == 0
