"""QoSConfig validation, hashability, and cache addressing."""

import pytest

from repro.campaign.hashing import config_digest
from repro.experiments import ExperimentConfig
from repro.qos import QoSConfig


class TestValidation:
    def test_default_is_inert(self):
        config = QoSConfig()
        assert not config.enabled
        assert not config.has_breaker

    def test_each_knob_enables(self):
        assert QoSConfig(deadline_s=10.0).enabled
        assert QoSConfig(admission="bounded-queue", max_pending=5).enabled
        assert QoSConfig(admission="token-bucket", rate_limit_per_s=1.0).enabled
        assert QoSConfig(starvation_age_s=100.0).enabled
        assert QoSConfig(watchdog_stall_s=100.0).enabled
        assert QoSConfig(storm_fault_threshold=3).enabled

    def test_unknown_admission_rejected(self):
        with pytest.raises(ValueError, match="admission"):
            QoSConfig(admission="lifo")

    def test_bounded_queue_requires_max_pending(self):
        with pytest.raises(ValueError, match="max_pending"):
            QoSConfig(admission="bounded-queue")
        with pytest.raises(ValueError, match="max_pending"):
            QoSConfig(admission="bounded-queue", max_pending=0)

    def test_max_pending_only_with_bounded_queue(self):
        with pytest.raises(ValueError, match="max_pending"):
            QoSConfig(max_pending=5)

    def test_token_bucket_requires_rate(self):
        with pytest.raises(ValueError, match="rate_limit_per_s"):
            QoSConfig(admission="token-bucket")
        with pytest.raises(ValueError, match="rate_limit_per_s"):
            QoSConfig(admission="token-bucket", rate_limit_per_s=0.0)

    def test_rate_only_with_token_bucket(self):
        with pytest.raises(ValueError, match="rate_limit_per_s"):
            QoSConfig(rate_limit_per_s=1.0)

    @pytest.mark.parametrize(
        "name", ["deadline_s", "starvation_age_s", "watchdog_stall_s"]
    )
    def test_durations_must_be_positive(self, name):
        with pytest.raises(ValueError, match=name):
            QoSConfig(**{name: 0.0})
        with pytest.raises(ValueError, match=name):
            QoSConfig(**{name: -1.0})

    def test_resume_pending_requires_breaker(self):
        with pytest.raises(ValueError, match="resume_pending"):
            QoSConfig(resume_pending=5)
        # Fine once some breaker condition exists.
        QoSConfig(watchdog_stall_s=100.0, resume_pending=5)

    def test_storm_threshold_must_be_at_least_one(self):
        with pytest.raises(ValueError, match="storm_fault_threshold"):
            QoSConfig(storm_fault_threshold=0)


class TestHashability:
    def test_hashable_and_equal(self):
        a = QoSConfig(deadline_s=100.0, admission="bounded-queue", max_pending=9)
        b = QoSConfig(deadline_s=100.0, admission="bounded-queue", max_pending=9)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_experiment_config_with_qos_still_hashable(self):
        config = ExperimentConfig(qos=QoSConfig(deadline_s=50.0))
        assert isinstance(hash(config), int)


class TestCacheAddressing:
    def test_qos_is_part_of_the_address(self):
        base = ExperimentConfig()
        with_qos = base.with_(qos=QoSConfig(deadline_s=500.0))
        assert config_digest(base) != config_digest(with_qos)
        # Different knob values get different addresses too.
        other = base.with_(qos=QoSConfig(deadline_s=600.0))
        assert config_digest(with_qos) != config_digest(other)

    def test_equal_qos_equal_digest(self):
        a = ExperimentConfig(qos=QoSConfig(starvation_age_s=900.0))
        b = ExperimentConfig(qos=QoSConfig(starvation_age_s=900.0))
        assert config_digest(a) == config_digest(b)
