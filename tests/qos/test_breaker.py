"""Unit tests of the watchdog / circuit breaker."""

from repro.qos import CircuitBreaker, QoSConfig
from repro.qos.breaker import BreakerState


def make_breaker(**knobs) -> CircuitBreaker:
    return CircuitBreaker(QoSConfig(**knobs))


class TestStallDetection:
    def test_trips_after_stall_with_pending_work(self):
        breaker = make_breaker(watchdog_stall_s=100.0)
        assert not breaker.evaluate(50.0, pending_len=5)
        assert breaker.evaluate(101.0, pending_len=5)
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 1

    def test_idle_is_not_a_stall(self):
        breaker = make_breaker(watchdog_stall_s=100.0)
        # No pending work: a quiet jukebox is idle, not wedged.
        assert not breaker.evaluate(1e6, pending_len=0)
        assert breaker.state is BreakerState.CLOSED

    def test_progress_resets_the_stall_clock(self):
        breaker = make_breaker(watchdog_stall_s=100.0)
        breaker.note_progress(90.0, pending_len=3)
        assert not breaker.evaluate(150.0, pending_len=3)
        assert breaker.evaluate(191.0, pending_len=3)


class TestStormDetection:
    def test_trips_at_threshold(self):
        breaker = make_breaker(storm_fault_threshold=3)
        assert not breaker.note_fault(1.0)
        assert not breaker.note_fault(2.0)
        # The tripping fault reports True exactly once.
        assert breaker.note_fault(3.0)
        assert not breaker.note_fault(4.0)
        assert breaker.trips == 1

    def test_progress_resets_the_fault_count(self):
        breaker = make_breaker(storm_fault_threshold=3)
        breaker.note_fault(1.0)
        breaker.note_fault(2.0)
        breaker.note_progress(3.0, pending_len=0)
        assert not breaker.note_fault(4.0)
        assert breaker.state is BreakerState.CLOSED


class TestRecovery:
    def test_any_progress_closes_without_resume_threshold(self):
        breaker = make_breaker(watchdog_stall_s=10.0)
        breaker.evaluate(20.0, pending_len=1)
        assert breaker.is_open
        breaker.note_progress(25.0, pending_len=100)
        assert not breaker.is_open

    def test_resume_pending_gates_the_close(self):
        breaker = make_breaker(watchdog_stall_s=10.0, resume_pending=2)
        breaker.evaluate(20.0, pending_len=1)
        assert breaker.is_open
        breaker.note_progress(25.0, pending_len=10)
        assert breaker.is_open  # still too much backlog
        breaker.note_progress(30.0, pending_len=2)
        assert not breaker.is_open
