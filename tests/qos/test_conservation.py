"""Request conservation: every arrival reaches exactly one terminal state.

The property: over any run, each request that entered the system is
completed, permanently failed, expired, or shed at most once — never
twice, never in two different ways — and whatever remains outstanding at
the horizon accounts exactly for the difference.  Holds across scheduler
families, with and without fault injection, and with and without QoS.
"""

import pytest

import repro.experiments.runner as runner_mod
from repro.experiments import ExperimentConfig
from repro.faults import FaultConfig, RetryPolicy
from repro.layout import Layout
from repro.qos import QoSConfig
from repro.service.metrics import MetricsCollector

HORIZON = 40_000.0

FAULTS = FaultConfig(
    media_error_rate=0.08,
    bad_replica_rate=0.02,
    robot_pick_error_rate=0.02,
    drive_mtbf_s=15_000.0,
    drive_mttr_s=1_000.0,
    retry=RetryPolicy(max_attempts=3, base_backoff_s=1.0),
)

QOS = QoSConfig(
    deadline_s=2_500.0,
    admission="bounded-queue",
    max_pending=20,
    starvation_age_s=5_000.0,
    watchdog_stall_s=8_000.0,
    storm_fault_threshold=10,
)


class RecordingCollector(MetricsCollector):
    """Tracks per-request-id terminal events for the conservation check."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.seen_arrivals = set()
        self.terminal = {}  # request_id -> terminal kind

    def _arrive(self, request):
        assert request.request_id not in self.seen_arrivals, (
            f"request {request.request_id} arrived twice"
        )
        self.seen_arrivals.add(request.request_id)

    def _terminate(self, request, kind):
        assert request.request_id in self.seen_arrivals, (
            f"request {request.request_id} reached {kind} without arriving"
        )
        previous = self.terminal.setdefault(request.request_id, kind)
        assert previous == kind and self.terminal[request.request_id] == kind, (
            f"request {request.request_id}: {kind} after {previous}"
        )
        assert list(self.terminal).count(request.request_id) == 1

    def on_arrival(self, request, now):
        self._arrive(request)
        super().on_arrival(request, now)

    def on_completion(self, request, now, service_s=None):
        assert request.request_id not in self.terminal, (
            f"request {request.request_id} terminated twice "
            f"(completion after {self.terminal.get(request.request_id)})"
        )
        self._terminate(request, "completed")
        super().on_completion(request, now, service_s=service_s)

    def on_request_failed(self, request, now):
        assert request.request_id not in self.terminal
        self._terminate(request, "failed")
        super().on_request_failed(request, now)

    def on_expired(self, request, now):
        assert request.request_id not in self.terminal
        self._terminate(request, "expired")
        super().on_expired(request, now)

    def on_shed(self, request, now, reason="admission"):
        assert request.request_id not in self.terminal
        self._terminate(request, "shed")
        super().on_shed(request, now, reason=reason)


def run_with_recording(config: ExperimentConfig) -> RecordingCollector:
    # Swap the collector class for the build so every consumer (the
    # simulator, the QoS manager, the starvation guard's promotion
    # callback) is bound to the recording instance from the start.
    original = runner_mod.MetricsCollector
    runner_mod.MetricsCollector = RecordingCollector
    try:
        simulator = runner_mod.build_simulator(config)
    finally:
        runner_mod.MetricsCollector = original
    simulator.run(config.horizon_s)
    return simulator.metrics


SCHEDULERS = [
    "fifo",
    "static-max-requests",
    "dynamic-max-bandwidth",
    "envelope-max-bandwidth",
]


@pytest.mark.parametrize("scheduler", SCHEDULERS)
@pytest.mark.parametrize(
    "faults,qos",
    [(None, None), (None, QOS), (FAULTS, None), (FAULTS, QOS)],
    ids=["plain", "qos", "faults", "faults+qos"],
)
def test_every_arrival_terminates_exactly_once(scheduler, faults, qos):
    config = ExperimentConfig(
        scheduler=scheduler,
        tape_count=4,
        capacity_mb=1000.0,
        replicas=2,
        layout=Layout.VERTICAL,
        horizon_s=HORIZON,
        queue_length=15,
        seed=9,
        warmup_fraction=0.0,
        faults=faults,
        qos=qos,
    )
    metrics = run_with_recording(config)
    terminals = len(metrics.terminal)
    # No request terminated without arriving, none terminated twice
    # (asserted inline), and the books balance at the horizon:
    assert set(metrics.terminal) <= metrics.seen_arrivals
    assert metrics.arrivals == len(metrics.seen_arrivals)
    assert terminals == (
        metrics.total_completed
        + metrics.total_failed
        + metrics.total_expired
        + metrics.total_shed
    )
    assert metrics.outstanding == metrics.arrivals - terminals
    assert metrics.outstanding >= 0
    # The scenario actually exercised something.
    assert metrics.total_completed > 0


@pytest.mark.parametrize(
    "qos", [None, QOS], ids=["plain", "qos"]
)
def test_conservation_holds_multidrive(qos):
    config = ExperimentConfig(
        scheduler="dynamic-max-bandwidth",
        drive_count=2,
        tape_count=4,
        capacity_mb=1000.0,
        replicas=1,
        layout=Layout.VERTICAL,
        horizon_s=HORIZON,
        queue_length=15,
        seed=9,
        warmup_fraction=0.0,
        faults=FAULTS,
        qos=qos,
    )
    metrics = run_with_recording(config)
    terminals = len(metrics.terminal)
    assert set(metrics.terminal) <= metrics.seen_arrivals
    assert metrics.outstanding == metrics.arrivals - terminals
    assert metrics.total_completed > 0
