"""Tests for named random streams."""

from repro.rng import RandomStreams, derive_seed


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(42, "skew") == derive_seed(42, "skew")

    def test_differs_by_name(self):
        assert derive_seed(42, "skew") != derive_seed(42, "arrivals")

    def test_differs_by_root(self):
        assert derive_seed(1, "skew") != derive_seed(2, "skew")

    def test_64_bit_range(self):
        seed = derive_seed(123456789, "anything")
        assert 0 <= seed < 2**64


class TestRandomStreams:
    def test_same_name_same_object(self):
        streams = RandomStreams(7)
        assert streams.stream("a") is streams.stream("a")

    def test_streams_are_independent_of_consumption(self):
        """Stream 'b' yields the same values no matter how much 'a' consumed."""
        lonely = RandomStreams(7)
        expected = [lonely.stream("b").random() for _ in range(5)]

        busy = RandomStreams(7)
        for _ in range(1000):
            busy.stream("a").random()
        actual = [busy.stream("b").random() for _ in range(5)]
        assert actual == expected

    def test_different_names_differ(self):
        streams = RandomStreams(7)
        assert streams.stream("a").random() != streams.stream("b").random()

    def test_fork_is_stable_and_distinct(self):
        parent = RandomStreams(7)
        child_one = parent.fork("jukebox-1")
        child_two = parent.fork("jukebox-2")
        again = RandomStreams(7).fork("jukebox-1")
        assert child_one.root_seed == again.root_seed
        assert child_one.root_seed != child_two.root_seed
        assert child_one.root_seed != parent.root_seed
