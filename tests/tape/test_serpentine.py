"""Tests for the serpentine (DLT-style) timing model extension."""

import pytest

from repro.tape import DLT_STYLE, Jukebox, SerpentineTimingModel, Tape, TapeDrive


class TestGeometry:
    def test_capacity(self):
        assert DLT_STYLE.capacity_mb == pytest.approx(64 * 112.0)

    def test_wrap_of(self):
        assert DLT_STYLE.wrap_of(0.0) == 0
        assert DLT_STYLE.wrap_of(111.9) == 0
        assert DLT_STYLE.wrap_of(112.0) == 1
        # Positions at the very end clamp into the last wrap.
        assert DLT_STYLE.wrap_of(DLT_STYLE.capacity_mb) == 63

    def test_longitudinal_is_boustrophedon(self):
        # Even wrap: x grows with offset.
        assert DLT_STYLE.longitudinal(10.0) == pytest.approx(10.0)
        # Odd wrap: x runs backwards.
        assert DLT_STYLE.longitudinal(112.0 + 10.0) == pytest.approx(112.0 - 10.0)
        # End of wrap 0 and start of wrap 1 are physically adjacent.
        assert DLT_STYLE.longitudinal(111.99) == pytest.approx(
            DLT_STYLE.longitudinal(112.01), abs=0.05
        )

    def test_negative_position_rejected(self):
        with pytest.raises(ValueError):
            DLT_STYLE.wrap_of(-1.0)


class TestExactLocate:
    def test_same_position_free(self):
        assert DLT_STYLE.locate(100.0, 100.0) == 0.0

    def test_adjacent_wraps_cost_is_tiny(self):
        """The serpentine killer feature: logically distant blocks can be
        physically adjacent.  Locating across 112 MB (one full wrap)
        costs almost nothing."""
        cost = DLT_STYLE.locate(111.0, 113.0)
        assert cost < DLT_STYLE.locate_startup_s + 2.0

    def test_long_logical_distance_bounded_by_wrap_length(self):
        """Even a 6 GB logical jump costs at most a full longitudinal
        pass — orders cheaper than the helical model."""
        from repro.tape import EXB_8505XL

        serpentine = DLT_STYLE.locate(0.0, 6000.0)
        helical = EXB_8505XL.locate(0.0, 6000.0)
        upper = (
            DLT_STYLE.locate_startup_s
            + DLT_STYLE.longitudinal_s_per_mb * DLT_STYLE.wrap_mb
            + DLT_STYLE.wrap_step_s
        )
        assert serpentine <= upper + 1e-9
        assert serpentine < helical / 10

    def test_rewind_is_free(self):
        assert DLT_STYLE.rewind(5000.0) == 0.0
        with pytest.raises(ValueError):
            DLT_STYLE.rewind(-1.0)

    def test_switch_has_no_rewind_component(self):
        assert DLT_STYLE.switch_with_rewind(5000.0) == DLT_STYLE.switch()
        assert DLT_STYLE.switch() == pytest.approx(81.0)


class TestHeuristicCosts:
    def test_zero_distance_free(self):
        assert DLT_STYLE.locate_forward(0.0) == 0.0

    def test_expectation_saturates_at_wrap_scale(self):
        near = DLT_STYLE.locate_forward(5.0)
        far = DLT_STYLE.locate_forward(5000.0)
        very_far = DLT_STYLE.locate_forward(6500.0)
        assert near < far
        assert far == pytest.approx(very_far, rel=0.05)

    def test_reverse_symmetric_no_bot_overhead(self):
        assert DLT_STYLE.locate_reverse(500.0) == DLT_STYLE.locate_forward(500.0)
        assert DLT_STYLE.locate_reverse(500.0, lands_on_bot=True) == (
            DLT_STYLE.locate_reverse(500.0)
        )

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DLT_STYLE.locate_forward(-1.0)

    def test_scaled(self):
        fast = DLT_STYLE.scaled(2.0)
        assert fast.locate(0.0, 50.0) == pytest.approx(DLT_STYLE.locate(0.0, 50.0) / 2)
        assert fast.switch() == pytest.approx(DLT_STYLE.switch() / 2)
        with pytest.raises(ValueError):
            DLT_STYLE.scaled(0)


class TestDriveIntegration:
    def test_drive_runs_on_serpentine_timing(self):
        drive = TapeDrive(timing=DLT_STYLE)
        drive.load(Tape(0, capacity_mb=DLT_STYLE.capacity_mb))
        drive.locate(300.0)
        assert drive.read(16.0) > 0
        assert drive.rewind() == 0.0  # free
        drive.eject()

    def test_jukebox_switch_cheap(self):
        jukebox = Jukebox.build(
            capacity_mb=DLT_STYLE.capacity_mb, timing=DLT_STYLE
        )
        jukebox.switch_to(0)
        jukebox.access(5000.0, 16.0)
        # No rewind: a switch costs exactly eject + swap + load.
        assert jukebox.switch_to(1) == pytest.approx(81.0)


class TestEndToEnd:
    def test_experiment_runs_with_serpentine(self):
        from repro.experiments import ExperimentConfig, run_experiment

        result = run_experiment(
            ExperimentConfig(
                drive_technology="serpentine",
                queue_length=20,
                horizon_s=20_000.0,
            )
        )
        assert result.report.total_completed > 0

    def test_serpentine_beats_helical_on_random_reads(self):
        """Cheap positioning and free rewinds should dominate."""
        from repro.experiments import ExperimentConfig, run_experiment

        helical = run_experiment(
            ExperimentConfig(queue_length=60, horizon_s=40_000.0)
        )
        serpentine = run_experiment(
            ExperimentConfig(
                drive_technology="serpentine", queue_length=60, horizon_s=40_000.0
            )
        )
        assert serpentine.throughput_kb_s > 1.3 * helical.throughput_kb_s

    def test_invalid_technology_rejected(self):
        from repro.experiments import ExperimentConfig

        with pytest.raises(ValueError):
            ExperimentConfig(drive_technology="quantum-entangled")
