"""Timing-table boundary coverage: bisect lookup == original linear scan.

The cached-segment-table/bisect path in :mod:`repro.tape.timing` must
return bit-identical floats to the original ``distance <= threshold``
branch at every input — exact piecewise breakpoints, zero distance,
end-of-tape, and a dense grid straddling the threshold.
"""

import pytest

from repro.tape.serpentine import DLT_STYLE, SerpentineTimingModel
from repro.tape.timing import EXB_8505XL, DriveTimingModel, LinearSegment

#: The paper's tape extent (7 GB of 1 MB blocks).
END_OF_TAPE_MB = 7 * 1024.0


def reference_locate_forward(model: DriveTimingModel, distance_mb: float) -> float:
    """The original linear-scan implementation, kept as the oracle."""
    if distance_mb == 0:
        return 0.0
    if distance_mb <= model.short_threshold_mb:
        return model.forward_short.cost(distance_mb)
    return model.forward_long.cost(distance_mb)


def reference_locate_reverse(
    model: DriveTimingModel, distance_mb: float, lands_on_bot: bool = False
) -> float:
    if distance_mb == 0:
        return 0.0
    if distance_mb <= model.short_threshold_mb:
        seconds = model.reverse_short.cost(distance_mb)
    else:
        seconds = model.reverse_long.cost(distance_mb)
    if lands_on_bot:
        seconds += model.bot_overhead_s
    return seconds


#: A second model with different constants, exercising per-instance tables.
SCALED = EXB_8505XL.scaled(3.0)


@pytest.mark.parametrize("model", [EXB_8505XL, SCALED], ids=["exb", "scaled3x"])
class TestBreakpoints:
    def test_exact_threshold_uses_short_segment(self, model):
        threshold = model.short_threshold_mb
        assert model.locate_forward(threshold) == model.forward_short.cost(threshold)
        assert model.locate_reverse(threshold) == model.reverse_short.cost(threshold)

    def test_just_past_threshold_uses_long_segment(self, model):
        past = model.short_threshold_mb + 1e-9
        assert model.locate_forward(past) == model.forward_long.cost(past)
        assert model.locate_reverse(past) == model.reverse_long.cost(past)

    def test_zero_distance_is_free(self, model):
        assert model.locate_forward(0.0) == 0.0
        assert model.locate_reverse(0.0) == 0.0
        assert model.locate_reverse(0.0, lands_on_bot=True) == 0.0
        assert model.rewind(0.0) == 0.0
        assert model.locate(100.0, 100.0) == 0.0

    def test_end_of_tape(self, model):
        assert model.locate_forward(END_OF_TAPE_MB) == reference_locate_forward(
            model, END_OF_TAPE_MB
        )
        assert model.rewind(END_OF_TAPE_MB) == reference_locate_reverse(
            model, END_OF_TAPE_MB, lands_on_bot=True
        )

    def test_negative_distance_rejected(self, model):
        with pytest.raises(ValueError):
            model.locate_forward(-1.0)
        with pytest.raises(ValueError):
            model.locate_reverse(-0.5)


class TestDenseGridEquivalence:
    """Bisect-based lookup equals the linear scan on a dense grid."""

    def _grid(self):
        # 0..end-of-tape in fractional steps, densified around the
        # threshold so both segment boundaries are straddled repeatedly.
        grid = [i * 0.37 for i in range(int(END_OF_TAPE_MB / 0.37) + 1)]
        threshold = EXB_8505XL.short_threshold_mb
        grid += [threshold + k * 1e-6 for k in range(-5, 6)]
        grid += [0.0, 1.0, threshold, END_OF_TAPE_MB]
        return [g for g in grid if g >= 0]

    def test_forward_matches_reference(self):
        for distance in self._grid():
            assert EXB_8505XL.locate_forward(distance) == reference_locate_forward(
                EXB_8505XL, distance
            ), distance

    def test_reverse_matches_reference(self):
        for distance in self._grid():
            for bot in (False, True):
                assert EXB_8505XL.locate_reverse(
                    distance, lands_on_bot=bot
                ) == reference_locate_reverse(EXB_8505XL, distance, bot), (
                    distance,
                    bot,
                )

    def test_memo_hit_is_bit_identical(self):
        # Second call must return the identical float object semantics:
        # same value, computed once, cached thereafter.
        fresh = DriveTimingModel()
        first = fresh.locate_forward(123.456)
        second = fresh.locate_forward(123.456)
        assert first == second == reference_locate_forward(fresh, 123.456)


class TestPerInstanceIsolation:
    def test_scaled_model_gets_fresh_tables(self):
        base = DriveTimingModel()
        base.locate_forward(50.0)  # populate base's memo
        fast = base.scaled(2.0)
        assert fast.locate_forward(50.0) == pytest.approx(
            base.locate_forward(50.0) / 2.0
        )
        # And the scaled model's cached value matches its own segments.
        assert fast.locate_forward(50.0) == fast.forward_long.cost(50.0)

    def test_custom_segments_respected(self):
        custom = DriveTimingModel(
            forward_short=LinearSegment(1.0, 0.5),
            forward_long=LinearSegment(3.0, 0.1),
            short_threshold_mb=10.0,
        )
        assert custom.locate_forward(10.0) == 1.0 + 0.5 * 10.0
        assert custom.locate_forward(10.0 + 1e-9) == 3.0 + 0.1 * (10.0 + 1e-9)

    def test_dataclass_semantics_survive_caching(self):
        left = DriveTimingModel()
        right = DriveTimingModel()
        left.locate_forward(5.0)  # builds left's lazy tables
        assert left == right  # caches are invisible to __eq__


class TestSerpentineMemos:
    def test_exact_locate_memo_matches_recompute(self):
        model = SerpentineTimingModel()
        pairs = [(0.0, 500.0), (500.0, 0.0), (100.0, 100.0), (6000.0, 6100.0)]
        fresh = SerpentineTimingModel()
        for from_mb, to_mb in pairs:
            assert model.locate(from_mb, to_mb) == fresh.locate(from_mb, to_mb)
            # memo hit equals first computation
            assert model.locate(from_mb, to_mb) == fresh.locate(from_mb, to_mb)

    def test_expected_locate_boundaries(self):
        model = DLT_STYLE
        assert model.locate_forward(0.0) == 0.0
        wrap = model.wrap_mb
        # At/above one wrap the expectation saturates at wrap/3.
        assert model.locate_forward(wrap) == model.locate_forward(2 * wrap)
        with pytest.raises(ValueError):
            model.locate_forward(-1.0)

    def test_rewind_free_and_scaled_isolated(self):
        model = SerpentineTimingModel()
        model.locate(0.0, 500.0)
        fast = model.scaled(2.0)
        assert fast.locate(0.0, 500.0) == pytest.approx(model.locate(0.0, 500.0) / 2.0)
        assert fast.rewind(1234.0) == 0.0
