"""Tests pinning the paper's Section 2.1 timing model constants."""

import pytest
from hypothesis import given, strategies as st

from repro.tape import Direction, DriveTimingModel, EXB_8505XL

distances = st.floats(min_value=0.0, max_value=7168.0, allow_nan=False)


class TestPaperConstants:
    """The fitted Exabyte EXB-8505XL functions, verbatim from the paper."""

    def test_forward_short_segment(self):
        # 4.834 + 0.378k for k <= 28
        assert EXB_8505XL.locate_forward(1) == pytest.approx(4.834 + 0.378)
        assert EXB_8505XL.locate_forward(28) == pytest.approx(4.834 + 0.378 * 28)

    def test_forward_long_segment(self):
        # 14.342 + 0.028k for k > 28
        assert EXB_8505XL.locate_forward(29) == pytest.approx(14.342 + 0.028 * 29)
        assert EXB_8505XL.locate_forward(1000) == pytest.approx(14.342 + 0.028 * 1000)

    def test_reverse_short_segment(self):
        # 4.99 + 0.328k for k <= 28
        assert EXB_8505XL.locate_reverse(1) == pytest.approx(4.99 + 0.328)
        assert EXB_8505XL.locate_reverse(28) == pytest.approx(4.99 + 0.328 * 28)

    def test_reverse_long_segment(self):
        # 13.74 + 0.0286k for k > 28
        assert EXB_8505XL.locate_reverse(100) == pytest.approx(13.74 + 0.0286 * 100)

    def test_bot_overhead(self):
        # Locating to the physical beginning of tape adds 21 seconds.
        plain = EXB_8505XL.locate_reverse(500)
        to_bot = EXB_8505XL.locate_reverse(500, lands_on_bot=True)
        assert to_bot - plain == pytest.approx(21.0)

    def test_read_after_forward_locate(self):
        # 0.38 + 1.77k
        assert EXB_8505XL.read(16, startup=True) == pytest.approx(0.38 + 1.77 * 16)

    def test_read_after_reverse_locate(self):
        # 1.77k
        assert EXB_8505XL.read(16, startup=False) == pytest.approx(1.77 * 16)

    def test_switch_is_81_seconds(self):
        # 19 eject + 20 robot + 42 load.
        assert EXB_8505XL.switch() == pytest.approx(81.0)

    def test_switch_with_rewind_includes_rewind(self):
        expected = EXB_8505XL.rewind(1000.0) + 81.0
        assert EXB_8505XL.switch_with_rewind(1000.0) == pytest.approx(expected)

    def test_theorem2_constants(self):
        assert EXB_8505XL.short_forward_startup_s == pytest.approx(4.834)
        assert EXB_8505XL.long_short_startup_gap_s == pytest.approx(14.342 - 4.834)
        assert EXB_8505XL.block_transfer_s(16) == pytest.approx(1.77 * 16)


class TestModelSemantics:
    def test_zero_distance_locates_are_free(self):
        assert EXB_8505XL.locate_forward(0) == 0.0
        assert EXB_8505XL.locate_reverse(0) == 0.0

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            EXB_8505XL.locate_forward(-1)
        with pytest.raises(ValueError):
            EXB_8505XL.locate_reverse(-1)

    def test_negative_read_rejected(self):
        with pytest.raises(ValueError):
            EXB_8505XL.read(-1)

    def test_locate_dispatches_on_direction(self):
        assert EXB_8505XL.locate(100, 150) == EXB_8505XL.locate_forward(50)
        assert EXB_8505XL.locate(150, 100) == EXB_8505XL.locate_reverse(50)
        assert EXB_8505XL.locate(100, 0) == EXB_8505XL.locate_reverse(
            100, lands_on_bot=True
        )

    def test_rewind_from_zero_is_free(self):
        assert EXB_8505XL.rewind(0.0) == 0.0

    def test_rewind_includes_bot_overhead(self):
        assert EXB_8505XL.rewind(500.0) == pytest.approx(
            EXB_8505XL.locate_reverse(500.0) + 21.0
        )

    def test_rewind_negative_rejected(self):
        with pytest.raises(ValueError):
            EXB_8505XL.rewind(-1.0)

    # The paper's short and long segments were fitted independently, so
    # the model is slightly non-monotone across the k=28 seam (short fit
    # at 28 gives 15.418 s, long fit at 29 gives 15.154 s).  We keep the
    # published constants verbatim; monotonicity holds within segments
    # and to within the ~0.3 s seam discontinuity across it.
    SEAM_SLACK_S = 0.3

    @given(distances)
    def test_forward_locate_monotone_within_seam_slack(self, distance):
        longer = EXB_8505XL.locate_forward(distance + 1.0)
        assert longer >= EXB_8505XL.locate_forward(distance) - self.SEAM_SLACK_S

    @given(distances)
    def test_reverse_locate_monotone_within_seam_slack(self, distance):
        longer = EXB_8505XL.locate_reverse(distance + 1.0)
        assert longer >= EXB_8505XL.locate_reverse(distance) - self.SEAM_SLACK_S

    def test_segments_nearly_continuous_at_threshold(self):
        """The paper's fits meet closely (not exactly) at k=28."""
        short = EXB_8505XL.forward_short.cost(28)
        long_ = EXB_8505XL.forward_long.cost(28)
        assert abs(short - long_) < 1.0  # fits measured independently


class TestScaled:
    def test_invalid_speedup(self):
        with pytest.raises(ValueError):
            EXB_8505XL.scaled(0)

    def test_scaled_halves_every_cost(self):
        fast = EXB_8505XL.scaled(2.0)
        assert fast.locate_forward(100) == pytest.approx(
            EXB_8505XL.locate_forward(100) / 2
        )
        assert fast.locate_reverse(100) == pytest.approx(
            EXB_8505XL.locate_reverse(100) / 2
        )
        assert fast.read(16) == pytest.approx(EXB_8505XL.read(16) / 2)
        assert fast.switch() == pytest.approx(EXB_8505XL.switch() / 2)
        assert fast.rewind(200) == pytest.approx(EXB_8505XL.rewind(200) / 2)

    def test_identity_scaling(self):
        same = EXB_8505XL.scaled(1.0)
        assert same.locate_forward(50) == pytest.approx(EXB_8505XL.locate_forward(50))

    def test_default_model_is_paper_model(self):
        assert DriveTimingModel() == EXB_8505XL
