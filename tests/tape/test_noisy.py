"""Tests for the noisy drive model and the Section 2.1 validation."""

import random

import pytest

from repro.tape import EXB_8505XL, Jukebox, Tape, TapeDrive, TapePool
from repro.tape.noisy import NoisyTimingModel, random_walk_validation
from repro.tape.robot import RobotArm


def make_noisy(seed=1, **kwargs):
    return NoisyTimingModel(EXB_8505XL, random.Random(seed), **kwargs)


class TestNoisyTimingModel:
    def test_amplitude_validation(self):
        with pytest.raises(ValueError):
            make_noisy(locate_amplitude=1.0)
        with pytest.raises(ValueError):
            make_noisy(read_amplitude=-0.1)

    def test_zero_amplitude_is_exact(self):
        noisy = make_noisy(
            locate_amplitude=0.0, read_amplitude=0.0, switch_amplitude=0.0
        )
        assert noisy.locate(0.0, 500.0) == EXB_8505XL.locate(0.0, 500.0)
        assert noisy.read(16.0) == EXB_8505XL.read(16.0)
        assert noisy.switch() == EXB_8505XL.switch()

    def test_noise_is_bounded(self):
        noisy = make_noisy(read_amplitude=0.10)
        nominal = EXB_8505XL.read(16.0)
        for _ in range(200):
            observed = noisy.read(16.0)
            assert 0.9 * nominal - 1e-9 <= observed <= 1.1 * nominal + 1e-9

    def test_noise_varies_between_calls(self):
        noisy = make_noisy()
        values = {noisy.read(16.0) for _ in range(10)}
        assert len(values) > 1

    def test_zero_duration_stays_zero(self):
        noisy = make_noisy()
        assert noisy.locate(100.0, 100.0) == 0.0
        assert noisy.rewind(0.0) == 0.0

    def test_constants_pass_through(self):
        noisy = make_noisy()
        assert noisy.eject_s == EXB_8505XL.eject_s
        assert noisy.read_s_per_mb == EXB_8505XL.read_s_per_mb


class TestPaperValidation:
    def test_random_walk_errors_match_paper_scale(self):
        """Ten random walks of 100 locates+reads: per-walk total error
        stays within the paper's few-percent range even though
        individual reads vary by up to +/-10%."""
        noisy = make_noisy(seed=13, locate_amplitude=0.02, read_amplitude=0.10)
        errors = random_walk_validation(EXB_8505XL, noisy, walks=10, steps=100)
        assert len(errors) == 10
        assert max(errors) < 0.05  # paper: max 0.6% locate / 4.6% read
        assert sum(errors) / len(errors) < 0.02

    def test_noise_free_validation_is_exact(self):
        noisy = make_noisy(
            locate_amplitude=0.0, read_amplitude=0.0, switch_amplitude=0.0
        )
        errors = random_walk_validation(EXB_8505XL, noisy, walks=3, steps=50)
        assert max(errors) < 1e-12


class TestNoisyHardwareIntegration:
    def test_drive_runs_on_noisy_timing(self):
        drive = TapeDrive(timing=make_noisy())
        drive.load(Tape(0, capacity_mb=7 * 1024.0))
        assert drive.access(500.0, 16.0) > 0
        drive.rewind()
        drive.eject()

    def test_end_to_end_simulation_with_noisy_drive(self):
        """Schedulers plan with the clean model while the hardware
        misbehaves; the simulation still runs and conserves requests."""
        from repro.core import make_scheduler
        from repro.des import Environment
        from repro.layout import PlacementSpec, build_catalog
        from repro.service import JukeboxSimulator, MetricsCollector
        from repro.workload import ClosedSource, HotColdSkew

        catalog = build_catalog(PlacementSpec(percent_hot=10), 10, 7 * 1024.0)
        timing = make_noisy(seed=3)
        pool = TapePool.uniform(10, 7 * 1024.0)
        jukebox = Jukebox(
            pool=pool,
            drive=TapeDrive(timing=timing),
            robot=RobotArm(timing=timing, slot_count=10),
        )
        simulator = JukeboxSimulator(
            env=Environment(),
            jukebox=jukebox,
            catalog=catalog,
            scheduler=make_scheduler("envelope-max-bandwidth"),
            source=ClosedSource(30, HotColdSkew(40.0), catalog, random.Random(6)),
            metrics=MetricsCollector(block_mb=16.0),
        )
        report = simulator.run(30_000.0)
        assert report.total_completed > 100
        assert report.mean_queue_length == pytest.approx(30.0, abs=1e-6)
