"""Property tests: serpentine drive execution vs. its timing model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.tape import DLT_STYLE, Tape, TapeDrive

positions = st.floats(min_value=0.0, max_value=DLT_STYLE.capacity_mb - 16.0,
                      allow_nan=False)


@settings(max_examples=60, deadline=None)
@given(start=positions, target=positions)
def test_drive_locate_matches_model(start, target):
    """TapeDrive.locate on serpentine timing charges exactly
    timing.locate(from, to)."""
    drive = TapeDrive(timing=DLT_STYLE)
    drive.load(Tape(0, capacity_mb=DLT_STYLE.capacity_mb))
    drive.locate(start)
    seconds = drive.locate(target)
    assert seconds == pytest.approx(DLT_STYLE.locate(start, target))
    assert drive.head_mb == target


@settings(max_examples=60, deadline=None)
@given(start=positions, target=positions)
def test_locate_symmetry(start, target):
    """Serpentine locates cost the same in either direction."""
    assert DLT_STYLE.locate(start, target) == pytest.approx(
        DLT_STYLE.locate(target, start)
    )


@settings(max_examples=60, deadline=None)
@given(position=positions)
def test_longitudinal_within_wrap_bounds(position):
    x = DLT_STYLE.longitudinal(position)
    assert 0.0 <= x <= DLT_STYLE.wrap_mb + 1e-9


@settings(max_examples=60, deadline=None)
@given(start=positions, target=positions)
def test_locate_cost_bounded(start, target):
    """No serpentine locate exceeds one longitudinal pass plus a step."""
    upper = (
        DLT_STYLE.locate_startup_s
        + DLT_STYLE.longitudinal_s_per_mb * DLT_STYLE.wrap_mb
        + DLT_STYLE.wrap_step_s
    )
    assert DLT_STYLE.locate(start, target) <= upper + 1e-9


@settings(max_examples=30, deadline=None)
@given(
    slots=st.lists(st.integers(min_value=0, max_value=440), min_size=1,
                   max_size=15, unique=True),
)
def test_serpentine_sweep_cheaper_than_helical(slots):
    """Executing the same sweep on both technologies: serpentine never
    loses (its positioning is bounded by one wrap length)."""
    from repro.tape import EXB_8505XL

    def execute(timing):
        drive = TapeDrive(timing=timing)
        drive.load(Tape(0, capacity_mb=7 * 1024.0))
        total = 0.0
        for slot in sorted(slots):
            total += drive.access(slot * 16.0, 16.0)
        return total

    assert execute(DLT_STYLE) <= execute(EXB_8505XL) + 1e-6
