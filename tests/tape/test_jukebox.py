"""Unit tests for tapes, the robot arm, and the jukebox composition."""

import pytest

from repro.tape import (
    DEFAULT_TAPE_CAPACITY_MB,
    EXB_8505XL,
    Jukebox,
    RobotArm,
    RobotError,
    Tape,
    TapePool,
)


class TestTape:
    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            Tape(tape_id=-1)
        with pytest.raises(ValueError):
            Tape(tape_id=0, capacity_mb=0)

    def test_contains(self):
        tape = Tape(0, capacity_mb=100)
        assert tape.contains(0, 16)
        assert tape.contains(84, 16)
        assert not tape.contains(85, 16)
        assert not tape.contains(-1, 0)

    def test_validate_extent_raises(self):
        tape = Tape(0, capacity_mb=100)
        with pytest.raises(ValueError):
            tape.validate_extent(90, 16)

    def test_slots(self):
        tape = Tape(0, capacity_mb=7 * 1024)
        assert tape.slots(16) == 448
        assert tape.slots(1) == 7168
        with pytest.raises(ValueError):
            tape.slots(0)


class TestTapePool:
    def test_uniform_pool(self):
        pool = TapePool.uniform(10)
        assert len(pool) == 10
        assert pool[3].tape_id == 3
        assert pool[3].capacity_mb == DEFAULT_TAPE_CAPACITY_MB
        assert list(pool.tape_ids) == list(range(10))

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            TapePool.uniform(0)

    def test_jukebox_order_wraps(self):
        pool = TapePool.uniform(4)
        assert pool.jukebox_order(start_after=1) == [2, 3, 0, 1]
        assert pool.jukebox_order(start_after=3) == [0, 1, 2, 3]


class TestRobotArm:
    def test_swap_moves_tapes(self):
        robot = RobotArm(timing=EXB_8505XL, slot_count=3)
        seconds = robot.swap(1)
        assert seconds == pytest.approx(20.0)
        assert robot.in_drive == 1
        assert robot.in_slots == {0, 2}

    def test_swap_returns_old_tape_to_slots(self):
        robot = RobotArm(timing=EXB_8505XL, slot_count=3)
        robot.swap(1)
        robot.swap(2)
        assert robot.in_drive == 2
        assert robot.in_slots == {0, 1}
        assert robot.swaps == 2

    def test_swap_missing_tape_rejected(self):
        robot = RobotArm(timing=EXB_8505XL, slot_count=2)
        robot.swap(0)
        with pytest.raises(RobotError):
            robot.swap(0)  # already in the drive, not in a slot


class TestJukebox:
    def test_build_defaults(self):
        jukebox = Jukebox.build()
        assert jukebox.tape_count == 10
        assert jukebox.mounted_id is None

    def test_initial_mount_skips_rewind_and_eject(self):
        jukebox = Jukebox.build()
        seconds = jukebox.switch_to(4)
        assert seconds == pytest.approx(20.0 + 42.0)  # robot + load only
        assert jukebox.mounted_id == 4
        assert jukebox.switches == 1

    def test_switch_to_mounted_tape_is_free(self):
        jukebox = Jukebox.build()
        jukebox.switch_to(2)
        assert jukebox.switch_to(2) == 0.0
        assert jukebox.switches == 1

    def test_full_switch_includes_rewind(self):
        jukebox = Jukebox.build()
        jukebox.switch_to(0)
        jukebox.access(500.0, 16.0)
        head = jukebox.head_mb
        seconds = jukebox.switch_to(1)
        expected = EXB_8505XL.rewind(head) + 19.0 + 20.0 + 42.0
        assert seconds == pytest.approx(expected)
        assert jukebox.mounted_id == 1
        assert jukebox.head_mb == 0.0

    def test_switch_to_unknown_tape_rejected(self):
        jukebox = Jukebox.build(tape_count=5)
        with pytest.raises(ValueError):
            jukebox.switch_to(5)

    def test_access_on_mounted_tape(self):
        jukebox = Jukebox.build()
        jukebox.switch_to(0)
        seconds = jukebox.access(100.0, 16.0)
        assert seconds == pytest.approx(
            EXB_8505XL.locate_forward(100.0) + 0.38 + 1.77 * 16
        )
        assert jukebox.head_mb == 116.0

    def test_paper_switch_overhead_81s(self):
        """Rewound-tape switch = 19 + 20 + 42 = 81 s, the paper's figure."""
        jukebox = Jukebox.build()
        jukebox.switch_to(0)  # head at 0, no rewind needed
        assert jukebox.switch_to(1) == pytest.approx(81.0)
