"""Unit tests for the tape drive state machine."""

import pytest

from repro.tape import DriveStateError, EXB_8505XL, Tape, TapeDrive


@pytest.fixture
def tape():
    return Tape(tape_id=0, capacity_mb=7 * 1024)


@pytest.fixture
def drive(tape):
    drive = TapeDrive()
    drive.load(tape)
    return drive


class TestMountLifecycle:
    def test_fresh_drive_is_empty(self):
        drive = TapeDrive()
        assert not drive.is_loaded
        assert drive.mounted_id is None

    def test_load_positions_at_zero(self, drive):
        assert drive.is_loaded
        assert drive.mounted_id == 0
        assert drive.head_mb == 0.0

    def test_double_load_rejected(self, drive, tape):
        with pytest.raises(DriveStateError):
            drive.load(Tape(1))

    def test_eject_requires_rewind(self, drive):
        drive.locate(100.0)
        with pytest.raises(DriveStateError):
            drive.eject()

    def test_rewind_then_eject(self, drive):
        drive.locate(100.0)
        drive.rewind()
        assert drive.head_mb == 0.0
        drive.eject()
        assert not drive.is_loaded

    def test_operations_require_tape(self):
        drive = TapeDrive()
        for operation in (lambda: drive.locate(0), lambda: drive.read(1),
                          drive.rewind, drive.eject):
            with pytest.raises(DriveStateError):
                operation()

    def test_load_duration(self, tape):
        drive = TapeDrive()
        assert drive.load(tape) == pytest.approx(EXB_8505XL.load_s)

    def test_eject_duration(self, drive):
        assert drive.eject() == pytest.approx(EXB_8505XL.eject_s)


class TestHeadMotion:
    def test_locate_moves_head(self, drive):
        seconds = drive.locate(500.0)
        assert drive.head_mb == 500.0
        assert seconds == pytest.approx(EXB_8505XL.locate_forward(500.0))

    def test_locate_out_of_bounds_rejected(self, drive):
        with pytest.raises(ValueError):
            drive.locate(-1.0)
        with pytest.raises(ValueError):
            drive.locate(8 * 1024.0)

    def test_read_advances_head(self, drive):
        drive.locate(100.0)
        drive.read(16.0)
        assert drive.head_mb == 116.0

    def test_read_past_end_rejected(self, drive):
        drive.locate(7 * 1024 - 8.0)
        with pytest.raises(ValueError):
            drive.read(16.0)

    def test_access_is_locate_plus_read(self, tape):
        combined = TapeDrive()
        combined.load(tape)
        split = TapeDrive()
        split.load(Tape(0, tape.capacity_mb))
        total = combined.access(250.0, 16.0)
        expected = split.locate(250.0) + split.read(16.0)
        assert total == pytest.approx(expected)


class TestReadStartupSemantics:
    """The paper's measured asymmetry: reads after forward locates pay a
    startup; reads after reverse locates or streaming reads do not."""

    def test_read_after_forward_locate_pays_startup(self, drive):
        drive.locate(100.0)
        assert drive.read(16.0) == pytest.approx(0.38 + 1.77 * 16)

    def test_read_after_reverse_locate_skips_startup(self, drive):
        drive.locate(500.0)
        drive.locate(100.0)  # reverse
        assert drive.read(16.0) == pytest.approx(1.77 * 16)

    def test_streaming_read_skips_startup(self, drive):
        drive.locate(100.0)
        drive.read(16.0)
        # Next block is adjacent: zero-distance locate, pure streaming.
        assert drive.locate(116.0) == 0.0
        assert drive.read(16.0) == pytest.approx(1.77 * 16)

    def test_first_read_after_load_pays_startup(self, drive):
        assert drive.read(16.0) == pytest.approx(0.38 + 1.77 * 16)

    def test_read_after_rewind_skips_startup(self, drive):
        drive.locate(300.0)
        drive.rewind()
        assert drive.read(16.0) == pytest.approx(1.77 * 16)


class TestCounters:
    def test_counters_accumulate(self, drive):
        drive.locate(100.0)
        drive.read(16.0)
        drive.rewind()
        counters = drive.counters
        assert counters.locates == 1
        assert counters.reads == 1
        assert counters.rewinds == 1
        assert counters.loads == 1
        assert counters.busy_s == pytest.approx(
            counters.locate_s + counters.read_s + counters.rewind_s
            + counters.eject_load_s
        )

    def test_zero_distance_locate_not_counted(self, drive):
        drive.locate(0.0)
        assert drive.counters.locates == 0
