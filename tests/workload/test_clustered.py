"""Tests for the clustered (Markov run) workload extension."""

import random

import pytest

from repro.layout import PlacementSpec, build_catalog
from repro.workload import HotColdSkew
from repro.workload.clustered import ClusteredClosedSource


@pytest.fixture
def catalog():
    return build_catalog(PlacementSpec(percent_hot=10), 10, 7 * 1024.0)


def make_source(catalog, locality, queue_length=20, seed=4):
    return ClusteredClosedSource(
        queue_length,
        HotColdSkew(40.0),
        catalog,
        random.Random(seed),
        locality=locality,
    )


class TestClusteredSource:
    def test_validation(self, catalog):
        with pytest.raises(ValueError):
            make_source(catalog, locality=1.0)
        with pytest.raises(ValueError):
            make_source(catalog, locality=-0.1)
        with pytest.raises(ValueError):
            ClusteredClosedSource(0, HotColdSkew(40.0), catalog, random.Random(1))

    def test_zero_locality_never_continues(self, catalog):
        source = make_source(catalog, locality=0.0)
        source.initial_requests()
        for _ in range(200):
            source.on_completion(0.0)
        assert source.run_continuations == 0
        assert source.observed_locality == 0.0

    def test_high_locality_mostly_sequential(self, catalog):
        source = make_source(catalog, locality=0.8)
        source.initial_requests()
        for _ in range(2000):
            source.on_completion(0.0)
        assert source.observed_locality == pytest.approx(0.8, abs=0.05)

    def test_runs_are_sequential_block_ids(self, catalog):
        source = make_source(catalog, locality=0.9, seed=8)
        blocks = [request.block_id for request in source.initial_requests()]
        for _ in range(300):
            blocks.append(source.on_completion(0.0).block_id)
        sequential_steps = sum(
            1 for a, b in zip(blocks, blocks[1:]) if b == a + 1
        )
        assert sequential_steps / len(blocks) > 0.7

    def test_run_stops_at_catalog_end(self, catalog):
        source = make_source(catalog, locality=0.99)
        source._previous_block = catalog.n_blocks - 1
        for _ in range(50):
            block = source._draw()
            assert 0 <= block < catalog.n_blocks


class TestLocalityPaysOff:
    def test_sweeps_convert_locality_into_throughput(self):
        """The paper's unexploited opportunity: with a layout that keeps
        logically sequential blocks physically adjacent (``pack_cold``),
        the dynamic incremental scheduler turns runs into streaming
        reads.  (Under the default round-robin cold distribution,
        sequential ids hop tapes and most of the gain evaporates —
        locality only pays if the layout co-locates it.)"""
        from repro.core import make_scheduler
        from repro.des import Environment
        from repro.layout import PlacementSpec, build_catalog
        from repro.service import JukeboxSimulator, MetricsCollector
        from repro.tape import Jukebox

        packed = build_catalog(
            PlacementSpec(percent_hot=10, pack_cold=True), 10, 7 * 1024.0
        )

        def run(locality):
            simulator = JukeboxSimulator(
                env=Environment(),
                jukebox=Jukebox.build(),
                catalog=packed,
                scheduler=make_scheduler("dynamic-max-bandwidth"),
                source=make_source(packed, locality, queue_length=60, seed=12),
                metrics=MetricsCollector(block_mb=16.0, warmup_s=4_000.0),
            )
            return simulator.run(40_000.0).throughput_kb_s

        independent = run(0.0)
        clustered = run(0.8)
        assert clustered > 1.2 * independent
