"""Tests for the Zipf skew extension."""

import random

import pytest

from repro.layout import PlacementSpec, build_catalog
from repro.workload.zipf import ZipfSkew


@pytest.fixture
def catalog():
    return build_catalog(PlacementSpec(percent_hot=10), 10, 7 * 1024.0)


class TestZipfSkew:
    def test_theta_validation(self):
        with pytest.raises(ValueError):
            ZipfSkew(theta=-0.1)

    def test_theta_zero_is_uniform(self, catalog):
        skew = ZipfSkew(theta=0.0)
        rng = random.Random(3)
        draws = [skew.draw_block(rng, catalog) for _ in range(20000)]
        top_decile = sum(block < catalog.n_blocks // 10 for block in draws)
        assert top_decile / len(draws) == pytest.approx(0.10, abs=0.02)

    def test_high_theta_concentrates_on_low_ranks(self, catalog):
        skew = ZipfSkew(theta=1.2)
        rng = random.Random(3)
        draws = [skew.draw_block(rng, catalog) for _ in range(20000)]
        top_decile = sum(block < catalog.n_blocks // 10 for block in draws)
        assert top_decile / len(draws) > 0.55

    def test_draws_in_range(self, catalog):
        skew = ZipfSkew(theta=1.0)
        rng = random.Random(5)
        for _ in range(1000):
            block = skew.draw_block(rng, catalog)
            assert 0 <= block < catalog.n_blocks

    def test_popularity_of_top_matches_empirical(self, catalog):
        skew = ZipfSkew(theta=1.0)
        predicted = skew.popularity_of_top(0.10, catalog.n_blocks)
        rng = random.Random(7)
        draws = [skew.draw_block(rng, catalog) for _ in range(30000)]
        hot = max(1, int(0.10 * catalog.n_blocks))
        empirical = sum(block < hot for block in draws) / len(draws)
        assert empirical == pytest.approx(predicted, abs=0.02)

    def test_popularity_validation(self):
        skew = ZipfSkew()
        with pytest.raises(ValueError):
            skew.popularity_of_top(0.0, 100)

    def test_rank_frequency_monotone(self, catalog):
        skew = ZipfSkew(theta=1.0)
        rng = random.Random(11)
        counts = [0] * catalog.n_blocks
        for _ in range(50000):
            counts[skew.draw_block(rng, catalog)] += 1
        # Coarse check: decile frequencies decrease down the ranks.
        decile = catalog.n_blocks // 10
        decile_counts = [
            sum(counts[start : start + decile])
            for start in range(0, decile * 10, decile)
        ]
        assert decile_counts[0] > decile_counts[4] > decile_counts[9]


class TestZipfEndToEnd:
    def test_config_integration(self):
        from repro.experiments import ExperimentConfig, run_experiment

        result = run_experiment(
            ExperimentConfig(zipf_theta=1.0, queue_length=20, horizon_s=15_000.0)
        )
        assert result.report.total_completed > 0

    def test_zipf_replication_still_helps(self):
        """Replicating the top-PH% ranked blocks pays off under Zipf
        traffic just as hot/cold replication does."""
        from repro.experiments import ExperimentConfig, run_experiment
        from repro.layout import Layout

        base = run_experiment(
            ExperimentConfig(zipf_theta=1.0, queue_length=60, horizon_s=50_000.0)
        )
        replicated = run_experiment(
            ExperimentConfig(
                zipf_theta=1.0,
                queue_length=60,
                horizon_s=50_000.0,
                layout=Layout.VERTICAL,
                replicas=9,
                start_position=1.0,
                scheduler="envelope-max-bandwidth",
            )
        )
        assert replicated.throughput_kb_s > base.throughput_kb_s

    def test_invalid_theta_in_config(self):
        from repro.experiments import ExperimentConfig

        with pytest.raises(ValueError):
            ExperimentConfig(zipf_theta=-1.0)


class TestMultiDriveConfigIntegration:
    def test_drive_count_builds_multidrive(self):
        from repro.experiments import ExperimentConfig, build_simulator
        from repro.service.multidrive import MultiDriveSimulator

        simulator = build_simulator(
            ExperimentConfig(drive_count=2, queue_length=20, horizon_s=10_000.0)
        )
        assert isinstance(simulator, MultiDriveSimulator)

    def test_two_drive_run_via_config(self):
        from repro.experiments import ExperimentConfig, run_experiment

        one = run_experiment(
            ExperimentConfig(queue_length=40, horizon_s=20_000.0)
        )
        two = run_experiment(
            ExperimentConfig(drive_count=2, queue_length=40, horizon_s=20_000.0)
        )
        assert two.throughput_kb_s > one.throughput_kb_s

    def test_invalid_drive_count(self):
        from repro.experiments import ExperimentConfig

        with pytest.raises(ValueError):
            ExperimentConfig(drive_count=0)
