"""Tests for workload trace recording and replay."""

import random

import pytest

from repro.layout import PlacementSpec, build_catalog
from repro.workload import ClosedSource, HotColdSkew, OpenSource
from repro.workload.trace import (
    ClosedReplaySource,
    OpenReplaySource,
    TraceRecord,
    TraceRecorder,
)


@pytest.fixture
def catalog():
    return build_catalog(PlacementSpec(percent_hot=10), 10, 7 * 1024.0)


class TestTraceRecorder:
    def test_records_closed_source(self, catalog):
        inner = ClosedSource(5, HotColdSkew(40.0), catalog, random.Random(1))
        recorder = TraceRecorder(inner)
        assert recorder.is_closed
        initial = recorder.initial_requests(0.0)
        assert len(recorder.records) == 5
        recorder.on_completion(100.0)
        assert len(recorder.records) == 6
        assert recorder.records[5].arrival_s == 100.0
        assert recorder.block_ids() == [request.block_id for request in initial] + [
            recorder.records[5].block_id
        ]

    def test_records_open_source(self, catalog):
        inner = OpenSource(50.0, HotColdSkew(40.0), catalog, random.Random(2))
        recorder = TraceRecorder(inner)
        assert not recorder.is_closed
        emitted = list(recorder.arrivals(2_000.0))
        assert len(recorder.records) == len(emitted)
        assert recorder.on_completion(10.0) is None
        assert len(recorder.records) == len(emitted)  # nothing extra

    def test_recorder_in_simulation_replays_identically(self, catalog):
        """Record a closed run, replay it: identical metrics."""
        from repro.core import make_scheduler
        from repro.des import Environment
        from repro.service import JukeboxSimulator, MetricsCollector
        from repro.tape import Jukebox

        def simulate(source):
            simulator = JukeboxSimulator(
                env=Environment(),
                jukebox=Jukebox.build(),
                catalog=catalog,
                scheduler=make_scheduler("dynamic-max-bandwidth"),
                source=source,
                metrics=MetricsCollector(block_mb=16.0),
            )
            return simulator.run(15_000.0)

        recorder = TraceRecorder(
            ClosedSource(20, HotColdSkew(40.0), catalog, random.Random(9))
        )
        original = simulate(recorder)
        replayed = simulate(ClosedReplaySource(20, recorder.block_ids(), cycle=False))
        assert replayed.throughput_kb_s == original.throughput_kb_s
        assert replayed.mean_response_s == original.mean_response_s


class TestOpenReplay:
    def test_replays_in_time_order(self):
        records = [TraceRecord(30.0, 2), TraceRecord(10.0, 1), TraceRecord(20.0, 3)]
        replay = OpenReplaySource(records)
        arrivals = list(replay.arrivals(horizon_s=100.0))
        assert [time for time, _request in arrivals] == [10.0, 20.0, 30.0]
        assert [request.block_id for _time, request in arrivals] == [1, 3, 2]

    def test_horizon_and_start_filtering(self):
        records = [TraceRecord(float(t), t) for t in (5, 15, 25)]
        replay = OpenReplaySource(records)
        arrivals = list(replay.arrivals(horizon_s=20.0, start_s=10.0))
        assert [request.block_id for _time, request in arrivals] == [15]

    def test_model_flags(self):
        replay = OpenReplaySource([])
        assert not replay.is_closed
        assert replay.initial_requests() == []
        assert replay.on_completion(1.0) is None


class TestClosedReplay:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClosedReplaySource(0, [1, 2, 3])
        with pytest.raises(ValueError):
            ClosedReplaySource(5, [1, 2, 3])

    def test_initial_then_sequential(self):
        replay = ClosedReplaySource(2, [10, 11, 12, 13], cycle=False)
        initial = replay.initial_requests(0.0)
        assert [request.block_id for request in initial] == [10, 11]
        assert replay.on_completion(5.0).block_id == 12
        assert replay.on_completion(6.0).block_id == 13
        assert replay.on_completion(7.0) is None  # trace exhausted

    def test_cycling(self):
        replay = ClosedReplaySource(2, [1, 2, 3], cycle=True)
        replay.initial_requests(0.0)
        blocks = [replay.on_completion(float(i)).block_id for i in range(5)]
        assert blocks == [3, 1, 2, 3, 1]
