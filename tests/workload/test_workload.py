"""Unit tests for request records, skew, and arrival sources."""

import random

import pytest

from repro.layout import PlacementSpec, build_catalog
from repro.workload import (
    ClosedSource,
    HotColdSkew,
    OpenSource,
    Request,
    RequestFactory,
    UniformSkew,
)


@pytest.fixture
def catalog():
    return build_catalog(PlacementSpec(percent_hot=10), tape_count=10, capacity_mb=7 * 1024)


class TestRequest:
    def test_response_requires_completion(self):
        request = Request(request_id=0, block_id=5, arrival_s=10.0)
        assert not request.is_complete
        with pytest.raises(RuntimeError):
            _ = request.response_s

    def test_response_time(self):
        request = Request(request_id=0, block_id=5, arrival_s=10.0, completion_s=35.0)
        assert request.is_complete
        assert request.response_s == 25.0

    def test_factory_allocates_sequential_ids(self):
        factory = RequestFactory()
        first = factory.create(block_id=1, arrival_s=0.0)
        second = factory.create(block_id=2, arrival_s=1.0)
        assert (first.request_id, second.request_id) == (0, 1)


class TestSkew:
    def test_rh_bounds(self):
        with pytest.raises(ValueError):
            HotColdSkew(percent_requests_hot=-1)
        with pytest.raises(ValueError):
            HotColdSkew(percent_requests_hot=101)

    def test_skew_hits_hot_fraction(self, catalog):
        skew = HotColdSkew(percent_requests_hot=40.0)
        rng = random.Random(7)
        draws = [skew.draw_block(rng, catalog) for _ in range(20000)]
        hot_fraction = sum(catalog.is_hot(block) for block in draws) / len(draws)
        assert hot_fraction == pytest.approx(0.40, abs=0.02)

    def test_extreme_skews(self, catalog):
        rng = random.Random(7)
        all_cold = HotColdSkew(percent_requests_hot=0.0)
        assert not any(
            catalog.is_hot(all_cold.draw_block(rng, catalog)) for _ in range(500)
        )
        all_hot = HotColdSkew(percent_requests_hot=100.0)
        assert all(catalog.is_hot(all_hot.draw_block(rng, catalog)) for _ in range(500))

    def test_hot_draws_uniform_over_hot_blocks(self, catalog):
        skew = HotColdSkew(percent_requests_hot=100.0)
        rng = random.Random(11)
        draws = [skew.draw_block(rng, catalog) for _ in range(20000)]
        assert min(draws) >= 0
        assert max(draws) < catalog.n_hot
        # Coarse uniformity: first and second halves roughly equal.
        half = catalog.n_hot // 2
        low = sum(block < half for block in draws)
        assert low / len(draws) == pytest.approx(0.5, abs=0.03)

    def test_uniform_skew_covers_everything(self, catalog):
        skew = UniformSkew()
        rng = random.Random(3)
        draws = [skew.draw_block(rng, catalog) for _ in range(5000)]
        hot_fraction = sum(catalog.is_hot(block) for block in draws) / len(draws)
        assert hot_fraction == pytest.approx(catalog.n_hot / catalog.n_blocks, abs=0.02)


class TestClosedSource:
    def test_queue_length_positive(self, catalog):
        with pytest.raises(ValueError):
            ClosedSource(0, HotColdSkew(), catalog, random.Random(1))

    def test_initial_population(self, catalog):
        source = ClosedSource(25, HotColdSkew(), catalog, random.Random(1))
        initial = source.initial_requests(now=0.0)
        assert len(initial) == 25
        assert all(request.arrival_s == 0.0 for request in initial)
        assert len({request.request_id for request in initial}) == 25

    def test_completion_generates_replacement(self, catalog):
        source = ClosedSource(5, HotColdSkew(), catalog, random.Random(1))
        source.initial_requests()
        replacement = source.on_completion(now=120.0)
        assert replacement.arrival_s == 120.0
        assert replacement.request_id == 5
        assert source.is_closed


class TestOpenSource:
    def test_interarrival_positive(self, catalog):
        with pytest.raises(ValueError):
            OpenSource(0.0, HotColdSkew(), catalog, random.Random(1))

    def test_starts_empty_and_ignores_completions(self, catalog):
        source = OpenSource(60.0, HotColdSkew(), catalog, random.Random(1))
        assert source.initial_requests() == []
        assert source.on_completion(now=10.0) is None
        assert not source.is_closed

    def test_arrivals_bounded_by_horizon(self, catalog):
        source = OpenSource(50.0, HotColdSkew(), catalog, random.Random(1))
        arrivals = list(source.arrivals(horizon_s=5000.0))
        assert arrivals, "expected some arrivals in the horizon"
        times = [time for time, _request in arrivals]
        assert all(0 < time <= 5000.0 for time in times)
        assert times == sorted(times)

    def test_mean_interarrival_statistic(self, catalog):
        source = OpenSource(30.0, HotColdSkew(), catalog, random.Random(5))
        arrivals = list(source.arrivals(horizon_s=300_000.0))
        times = [time for time, _request in arrivals]
        gaps = [second - first for first, second in zip(times, times[1:])]
        assert sum(gaps) / len(gaps) == pytest.approx(30.0, rel=0.05)

    def test_arrival_times_match_request_stamps(self, catalog):
        source = OpenSource(100.0, HotColdSkew(), catalog, random.Random(2))
        for time, request in source.arrivals(horizon_s=10_000.0):
            assert request.arrival_s == time
