"""The LTSP optimality baselines: brute-force proofs and composition.

The acceptance bar for ``exact-batch`` is *provable* optimality on every
instance small enough to enumerate: for batches of up to 8 distinct
blocks, :func:`optimal_order` must match the exhaustive minimum over all
permutations of the drive-exact objective, and every heuristic order
(sweep passes, greedy, best-pass) must cost at least as much.
"""

import itertools
import random

import pytest

from repro.core import (
    BatchPlan,
    DEFAULT_NODE_BUDGET,
    ExactBatchScheduler,
    GreedyCostScheduler,
    BestPassScheduler,
    OrderedServiceList,
    best_pass_order,
    greedy_cost_order,
    make_scheduler,
    optimal_order,
    order_cost,
    reverse_first_order,
    sweep_order,
)
from repro.core.sweep import ServiceEntry
from repro.tape.timing import DriveTimingModel
from repro.workload import RequestFactory

from .conftest import catalog_from, make_context

TIMING = DriveTimingModel()
BLOCK_MB = 16.0


def make_entries(spec, factory=None):
    """Build entries from ``[(position_mb, weight), ...]``."""
    factory = factory or RequestFactory()
    entries = []
    for block_id, (position_mb, weight) in enumerate(spec):
        requests = [
            factory.create(block_id=block_id, arrival_s=0.0)
            for _ in range(weight)
        ]
        entries.append(
            ServiceEntry(
                position_mb=position_mb, block_id=block_id, requests=requests
            )
        )
    return entries


def brute_force_cost(entries, head_mb, deferred_weight=0.0, startup=True):
    """The exhaustive minimum of the objective over all permutations."""
    return min(
        order_cost(
            TIMING,
            head_mb,
            list(permutation),
            BLOCK_MB,
            deferred_weight=deferred_weight,
            startup_pending=startup,
        )
        for permutation in itertools.permutations(entries)
    )


def random_instance(rng, count):
    spec = [
        (rng.choice([0.0, rng.uniform(0.0, 6000.0)]), rng.randint(1, 3))
        for _ in range(count)
    ]
    head = rng.choice([0.0, rng.uniform(0.0, 6000.0)])
    deferred = rng.choice([0.0, float(rng.randint(1, 40))])
    startup = rng.random() < 0.5
    return spec, head, deferred, startup


class TestOptimalOrder:
    @pytest.mark.parametrize("count", range(1, 8))
    def test_matches_brute_force(self, count):
        """Exact == exhaustive minimum on every enumerable instance."""
        rng = random.Random(count)
        for _ in range(6):
            spec, head, deferred, startup = random_instance(rng, count)
            entries = make_entries(spec)
            plan = optimal_order(
                TIMING,
                head,
                entries,
                BLOCK_MB,
                deferred_weight=deferred,
                startup_pending=startup,
            )
            expected = brute_force_cost(entries, head, deferred, startup)
            assert plan.exact
            assert plan.cost_s == pytest.approx(expected, rel=1e-12)
            executed = order_cost(
                TIMING,
                head,
                plan.order,
                BLOCK_MB,
                deferred_weight=deferred,
                startup_pending=startup,
            )
            assert executed == pytest.approx(plan.cost_s, rel=1e-12)

    def test_matches_brute_force_at_eight(self):
        """The acceptance bound: still exhaustively verified at m = 8."""
        rng = random.Random(8)
        spec, head, deferred, startup = random_instance(rng, 8)
        entries = make_entries(spec)
        plan = optimal_order(
            TIMING,
            head,
            entries,
            BLOCK_MB,
            deferred_weight=deferred,
            startup_pending=startup,
        )
        assert plan.exact
        assert plan.cost_s == pytest.approx(
            brute_force_cost(entries, head, deferred, startup), rel=1e-12
        )

    @pytest.mark.parametrize("count", [2, 4, 6])
    def test_never_worse_than_any_heuristic_order(self, count):
        rng = random.Random(100 + count)
        for _ in range(10):
            spec, head, deferred, startup = random_instance(rng, count)
            entries = make_entries(spec)
            plan = optimal_order(
                TIMING,
                head,
                entries,
                BLOCK_MB,
                deferred_weight=deferred,
                startup_pending=startup,
            )
            for heuristic in (
                sweep_order,
                reverse_first_order,
            ):
                cost = order_cost(
                    TIMING,
                    head,
                    heuristic(entries, head),
                    BLOCK_MB,
                    deferred_weight=deferred,
                    startup_pending=startup,
                )
                assert plan.cost_s <= cost + 1e-9
            for heuristic in (greedy_cost_order, best_pass_order):
                cost = order_cost(
                    TIMING,
                    head,
                    heuristic(
                        TIMING,
                        head,
                        entries,
                        BLOCK_MB,
                        startup_pending=startup,
                    ),
                    BLOCK_MB,
                    deferred_weight=deferred,
                    startup_pending=startup,
                )
                assert plan.cost_s <= cost + 1e-9

    def test_budget_exhaustion_falls_back_to_valid_order(self):
        rng = random.Random(17)
        spec, head, deferred, startup = random_instance(rng, 7)
        entries = make_entries(spec)
        plan = optimal_order(
            TIMING,
            head,
            entries,
            BLOCK_MB,
            deferred_weight=deferred,
            node_budget=5,
            startup_pending=startup,
        )
        assert not plan.exact
        assert sorted(entry.block_id for entry in plan.order) == sorted(
            entry.block_id for entry in entries
        )
        # The fallback is seeded with the heuristic orders, so even a
        # starved search is never worse than the approximation policies.
        for heuristic_order in (
            sweep_order(entries, head),
            reverse_first_order(entries, head),
            greedy_cost_order(
                TIMING, head, entries, BLOCK_MB, startup_pending=startup
            ),
        ):
            cost = order_cost(
                TIMING,
                head,
                heuristic_order,
                BLOCK_MB,
                deferred_weight=deferred,
                startup_pending=startup,
            )
            assert plan.cost_s <= cost + 1e-9

    def test_empty_and_singleton(self):
        empty = optimal_order(TIMING, 0.0, [], BLOCK_MB)
        assert empty.order == () and empty.cost_s == 0.0 and empty.exact
        single = make_entries([(120.0, 2)])
        plan = optimal_order(TIMING, 0.0, single, BLOCK_MB)
        assert [entry.block_id for entry in plan.order] == [0]
        assert isinstance(plan, BatchPlan)

    def test_weights_change_the_optimum(self):
        """A heavy far block can be worth serving before a light near one."""
        light_near_heavy_far = make_entries([(30.0, 1), (2000.0, 0)])
        # With zero weight on the far block the near one goes first...
        plan = optimal_order(TIMING, 0.0, light_near_heavy_far, BLOCK_MB)
        assert plan.order[0].position_mb == 30.0
        # ...with enough weight on it, the optimum flips.
        heavy = make_entries([(30.0, 1), (2000.0, 50)])
        plan = optimal_order(TIMING, 0.0, heavy, BLOCK_MB)
        assert plan.order[0].position_mb == 2000.0


class TestSchedulerDecisions:
    @pytest.fixture
    def catalog(self):
        """Tape 0: blocks 0-3 spread out.  Tape 1: blocks 4-5."""
        return catalog_from(
            [
                [(0, 0.0)],
                [(0, 400.0)],
                [(0, 90.0)],
                [(0, 2500.0)],
                [(1, 0.0)],
                [(1, 700.0)],
            ]
        )

    def test_decision_cost_not_above_any_tape_permutation(
        self, catalog, factory
    ):
        """The chosen (tape, order) minimizes normalized J over every
        alternative the scheduler could have picked."""
        context = make_context(catalog, tape_count=3)
        for block_id in range(6):
            context.pending.append(
                factory.create(block_id=block_id, arrival_s=0.0)
            )
        total = float(len(context.pending))
        scheduler = ExactBatchScheduler()
        # Snapshot the per-tape candidates before the decision pops them.
        candidates = {
            tape_id: list(requests)
            for tape_id, requests in context.pending.candidate_tapes().items()
        }
        timing = context.jukebox.timing
        decision = scheduler.major_reschedule(context)
        best = min(
            (
                timing.switch_with_rewind(0.0) * total
                + order_cost(
                    timing,
                    0.0,
                    list(permutation),
                    catalog.block_mb,
                    deferred_weight=total - float(len(requests)),
                )
            )
            / float(len(requests))
            for tape_id, requests in candidates.items()
            for permutation in itertools.permutations(
                [
                    ServiceEntry(
                        position_mb=catalog.replica_on(
                            request.block_id, tape_id
                        ).position_mb,
                        block_id=request.block_id,
                        requests=[request],
                    )
                    for request in requests
                ]
            )
        )
        assert scheduler.last_decision_cost == pytest.approx(best, rel=1e-12)
        assert decision.entries  # and the decision is well-formed

    def test_exact_decision_no_worse_than_approx_families(
        self, catalog, factory
    ):
        """Same pending set: exact's normalized J <= each approximation's."""
        costs = {}
        for name in ("exact-batch", "approx-greedy-cost", "approx-best-pass"):
            context = make_context(catalog, tape_count=3)
            request_factory = RequestFactory()
            for block_id in range(6):
                context.pending.append(
                    request_factory.create(block_id=block_id, arrival_s=0.0)
                )
            scheduler = make_scheduler(name)
            scheduler.major_reschedule(context)
            costs[name] = scheduler.last_decision_cost
        assert costs["exact-batch"] <= costs["approx-greedy-cost"] + 1e-9
        assert costs["exact-batch"] <= costs["approx-best-pass"] + 1e-9

    def test_build_service_list_executes_planned_order(self, catalog, factory):
        context = make_context(catalog, tape_count=3)
        for block_id in range(4):
            context.pending.append(
                factory.create(block_id=block_id, arrival_s=0.0)
            )
        scheduler = ExactBatchScheduler()
        decision = scheduler.major_reschedule(context)
        service = scheduler.build_service_list(decision.entries, head_mb=0.0)
        assert isinstance(service, OrderedServiceList)
        popped = []
        while not service.is_empty:
            entry = service.pop_next()
            popped.append(entry.block_id)
            service.finish_in_flight()
        assert popped == [entry.block_id for entry in decision.entries]

    def test_on_arrival_absorbs_onto_mounted_tape(self, catalog, factory):
        context = make_context(catalog, tape_count=3)
        context.pending.append(factory.create(block_id=0, arrival_s=0.0))
        context.pending.append(factory.create(block_id=1, arrival_s=0.0))
        scheduler = ExactBatchScheduler()
        decision = scheduler.major_reschedule(context)
        context.jukebox.switch_to(decision.tape_id)
        context.service = scheduler.build_service_list(
            decision.entries, head_mb=0.0
        )
        late = factory.create(block_id=2, arrival_s=5.0)
        assert scheduler.on_arrival(context, late)
        assert 2 in [entry.block_id for entry in context.service.remaining()]

    def test_on_arrival_defers_foreign_tape(self, catalog, factory):
        context = make_context(catalog, tape_count=3)
        context.pending.append(factory.create(block_id=0, arrival_s=0.0))
        scheduler = ExactBatchScheduler()
        decision = scheduler.major_reschedule(context)
        context.jukebox.switch_to(decision.tape_id)
        context.service = scheduler.build_service_list(
            decision.entries, head_mb=0.0
        )
        foreign = factory.create(block_id=4, arrival_s=5.0)  # tape 1 only
        assert not scheduler.on_arrival(context, foreign)
        assert foreign in context.pending

    def test_on_arrival_coalesces_duplicate_block(self, catalog, factory):
        context = make_context(catalog, tape_count=3)
        context.pending.append(factory.create(block_id=0, arrival_s=0.0))
        context.pending.append(factory.create(block_id=1, arrival_s=0.0))
        scheduler = ExactBatchScheduler()
        decision = scheduler.major_reschedule(context)
        context.jukebox.switch_to(decision.tape_id)
        context.service = scheduler.build_service_list(
            decision.entries, head_mb=0.0
        )
        duplicate = factory.create(block_id=1, arrival_s=5.0)
        assert scheduler.on_arrival(context, duplicate)
        entry = context.service.find_block(1)
        assert len(entry.requests) == 2

    def test_names(self):
        assert ExactBatchScheduler().name == "exact-batch"
        assert GreedyCostScheduler().name == "approx-greedy-cost"
        assert BestPassScheduler().name == "approx-best-pass"


class TestOrderedServiceList:
    def test_interface_roundtrip(self):
        entries = make_entries([(0.0, 1), (300.0, 1), (90.0, 1)])
        service = OrderedServiceList(entries, head_mb=0.0, block_mb=BLOCK_MB)
        assert len(service) == 3
        assert not service.is_empty
        assert service.find_block(1).position_mb == 300.0
        assert service.find_block(99) is None
        first = service.pop_next()
        assert service.in_flight is first
        service.finish_in_flight()
        assert service.in_flight is None
        assert len(service) == 2

    def test_insert_replans_remainder(self):
        planned = []

        def replan(head_mb, startup_pending, entries):
            planned.append([entry.block_id for entry in entries])
            return sweep_order(entries, head_mb)

        entries = make_entries([(100.0, 1), (500.0, 1)])
        service = OrderedServiceList(
            entries, head_mb=0.0, block_mb=BLOCK_MB, replan=replan
        )
        extra = make_entries([(250.0, 1)])[0]
        assert service.can_insert(extra)
        assert service.insert(extra)
        assert planned, "insert must trigger a replan of the remainder"
        assert len(service) == 3
