"""Step-level tests pinning the envelope algorithm's tie-breaking rules
(paper Section 3.2, steps 2, 4, and 5)."""

import pytest

from repro.core import EnvelopeComputer, EnvelopeScheduler, MaxBandwidth
from repro.layout import Replica
from repro.tape import DLT_STYLE, EXB_8505XL

from .conftest import catalog_from, make_context

BLOCK = 16.0


def compute(catalog, requests, tape_count, mounted=None, head=0.0, timing=EXB_8505XL,
            enable_shrink=True):
    computer = EnvelopeComputer(
        timing=timing,
        catalog=catalog,
        tape_count=tape_count,
        mounted_id=mounted,
        head_mb=head,
        enable_shrink=enable_shrink,
    )
    return computer.compute(requests)


class TestAbsorptionTieBreaks:
    def test_prefers_mounted_tape(self, factory):
        """A replica inside the mounted tape's envelope wins even when
        another tape's envelope also covers the block."""
        catalog = catalog_from(
            [
                [(0, 480.0)],              # pins tape 0 envelope to 496
                [(1, 480.0)],              # pins tape 1 envelope to 496
                [(0, 0.0), (1, 0.0)],      # replicated, inside both
            ]
        )
        requests = [factory.create(block_id=block, arrival_s=0.0) for block in range(3)]
        state = compute(catalog, requests, tape_count=2, mounted=1)
        assert state.assignment[requests[2].request_id].tape_id == 1

    def test_prefers_tape_with_more_scheduled_requests(self, factory):
        """No mounted copy: the tape already carrying more of the
        schedule wins the absorption tie."""
        catalog = catalog_from(
            [
                [(1, 480.0)],              # pin tape 1
                [(2, 480.0)],              # pin tape 2
                [(2, 320.0)],              # second pinned request on tape 2
                [(1, 0.0), (2, 0.0)],      # replicated, inside both
            ]
        )
        requests = [factory.create(block_id=block, arrival_s=0.0) for block in range(4)]
        state = compute(catalog, requests, tape_count=3, mounted=0)
        # Tape 2 holds two scheduled requests vs tape 1's one.
        assert state.assignment[requests[3].request_id].tape_id == 2

    def test_equal_counts_fall_back_to_jukebox_order(self, factory):
        """Equal scheduled counts: first tape in jukebox order after the
        mounted tape wins."""
        catalog = catalog_from(
            [
                [(1, 480.0)],
                [(2, 480.0)],
                [(1, 0.0), (2, 0.0)],
            ]
        )
        requests = [factory.create(block_id=block, arrival_s=0.0) for block in range(3)]
        # Mounted tape 1: order after it is 2, 0, 1 -> tape 2 wins ties?
        # No: absorption first tries the mounted tape itself; the copy on
        # tape 1 is on the mounted tape, so it wins outright.
        state = compute(catalog, requests, tape_count=3, mounted=1)
        assert state.assignment[requests[2].request_id].tape_id == 1
        # With tape 0 mounted (no copy there), order after 0 is 1, 2:
        # equal counts, so tape 1 wins.
        state = compute(catalog, requests, tape_count=3, mounted=0)
        assert state.assignment[requests[2].request_id].tape_id == 1


class TestExtensionMechanics:
    def test_duplicate_block_requests_share_one_read(self, factory):
        catalog = catalog_from([[(0, 320.0), (1, 6000.0)]])
        first = factory.create(block_id=0, arrival_s=0.0)
        second = factory.create(block_id=0, arrival_s=1.0)
        state = compute(catalog, [first, second], tape_count=2)
        assert state.assignment[first.request_id] == Replica(0, 320.0)
        assert state.assignment[second.request_id] == Replica(0, 320.0)
        assert state.envelope[0] == pytest.approx(336.0)
        assert state.envelope[1] == 0.0

    def test_switch_charge_steers_extension_to_mounted_tape(self, factory):
        """Identical replica positions on the mounted and an unmounted
        tape: the unmounted one carries the 81 s switch charge, so the
        mounted tape must win."""
        catalog = catalog_from([[(0, 1000.0), (1, 1000.0)]])
        request = factory.create(block_id=0, arrival_s=0.0)
        state = compute(catalog, [request], tape_count=2, mounted=0)
        assert state.assignment[request.request_id].tape_id == 0

    def test_nearer_replica_wins_without_switch_difference(self, factory):
        """Neither tape is mounted: both pay the switch, so the shorter
        round trip (lower position) wins."""
        catalog = catalog_from([[(1, 3000.0), (2, 200.0)]])
        request = factory.create(block_id=0, arrival_s=0.0)
        state = compute(catalog, [request], tape_count=3, mounted=0)
        assert state.assignment[request.request_id].tape_id == 2

    def test_prefix_extension_batches_requests(self, factory):
        """Three clustered blocks on one tape are scheduled as a single
        prefix extension rather than one by one onto different tapes."""
        catalog = catalog_from(
            [
                [(0, 160.0), (1, 5000.0)],
                [(0, 176.0), (1, 5500.0)],
                [(0, 192.0), (1, 6000.0)],
            ]
        )
        requests = [factory.create(block_id=block, arrival_s=0.0) for block in range(3)]
        state = compute(catalog, requests, tape_count=2)
        assert all(
            state.assignment[request.request_id].tape_id == 0 for request in requests
        )
        assert state.envelope[0] == pytest.approx(208.0)
        assert state.envelope[1] == 0.0


class TestShrinkMechanics:
    def make_shrink_instance(self):
        """Tape 1 pinned deep by a non-replicated block; block 1 sits at
        tape 0's envelope edge with an alternate copy inside tape 1's
        pinned region."""
        return catalog_from(
            [
                [(1, 480.0)],              # pin tape 1 to 496
                [(0, 320.0), (1, 160.0)],  # edge of tape 0 / inside tape 1
            ]
        )

    def test_shrink_disabled_keeps_both_envelopes(self, factory):
        catalog = self.make_shrink_instance()
        requests = [factory.create(block_id=block, arrival_s=0.0) for block in range(2)]
        # With shrink disabled and absorption finding tape 1's copy
        # already inside the pinned envelope, block 1 still absorbs to
        # tape 1 in step 2 — so construct the absorb-to-0 case by
        # mounting tape 0 with the head past the replica.
        state = compute(
            catalog, requests, tape_count=2, mounted=0, head=336.0,
            enable_shrink=False,
        )
        # Head position keeps tape 0's envelope at 336 regardless.
        assert state.envelope[0] == pytest.approx(336.0)

    def test_shrink_moves_both_edge_requests(self, factory):
        """Two tapes each have an edge request whose alternate copy falls
        inside the freshly extended region; both are pulled over."""
        catalog = catalog_from(
            [
                # Force an extension on tape 2 (only copy, far out).
                [(2, 480.0)],
                # Edge blocks on tapes 0 and 1, copies inside tape 2's
                # extension region.
                [(0, 320.0), (2, 160.0)],
                [(1, 320.0), (2, 320.0)],
            ]
        )
        requests = [factory.create(block_id=block, arrival_s=0.0) for block in range(3)]
        state = compute(catalog, requests, tape_count=3)
        assert state.assignment[requests[1].request_id].tape_id == 2
        assert state.assignment[requests[2].request_id].tape_id == 2
        assert state.envelope[0] == 0.0
        assert state.envelope[1] == 0.0
        assert state.scheduled_count[2] == 3


class TestSerpentineEnvelope:
    def test_envelope_scheduler_runs_on_serpentine_timing(self, factory):
        """The envelope machinery is geometry-agnostic: it consumes the
        timing model's heuristic cost methods."""
        catalog = catalog_from(
            [
                [(0, 0.0)],
                [(0, 320.0), (1, 6000.0)],
                [(1, 160.0)],
            ]
        )
        requests = [factory.create(block_id=block, arrival_s=0.0) for block in range(3)]
        state = compute(catalog, requests, tape_count=2, timing=DLT_STYLE)
        assert len(state.assignment) == 3

    def test_end_to_end_serpentine_envelope(self):
        from repro.experiments import ExperimentConfig, run_experiment
        from repro.layout import Layout

        result = run_experiment(
            ExperimentConfig(
                scheduler="envelope-max-bandwidth",
                drive_technology="serpentine",
                layout=Layout.VERTICAL,
                replicas=9,
                start_position=1.0,
                queue_length=20,
                horizon_s=15_000.0,
            )
        )
        assert result.report.total_completed > 0


class TestSchedulerNaming:
    def test_noshrink_suffix(self):
        scheduler = EnvelopeScheduler(MaxBandwidth(), enable_shrink=False)
        assert scheduler.name == "envelope-max-bandwidth-noshrink"
