"""Shared fixtures for scheduling tests: hand-built catalogs and requests."""

import pytest

from repro.core import PendingList, SchedulerContext
from repro.layout import BlockCatalog, Replica
from repro.tape import Jukebox
from repro.workload import RequestFactory

BLOCK_MB = 16.0


def catalog_from(placements, n_hot=0, block_mb=BLOCK_MB):
    """Build a catalog from ``[(tape_id, position), ...]`` per block."""
    return BlockCatalog(
        block_mb=block_mb,
        n_hot=n_hot,
        replicas_by_block=[
            [Replica(tape_id, position) for tape_id, position in block_placements]
            for block_placements in placements
        ],
    )


@pytest.fixture
def factory():
    return RequestFactory()


def make_context(catalog, tape_count=10, mounted=None, head_mb=0.0):
    """A scheduler context over fresh hardware with optional mount state."""
    jukebox = Jukebox.build(tape_count=tape_count)
    if mounted is not None:
        jukebox.switch_to(mounted)
        if head_mb:
            jukebox.drive.locate(head_mb)
    return SchedulerContext(
        jukebox=jukebox, catalog=catalog, pending=PendingList(catalog)
    )


@pytest.fixture
def figure2():
    """The paper's Figure 2 instance.

    Tape 0: C at 0, D-copy at 16 (right after C).
    Tape 1: A at 0, B at 16, D-copy at 6000 (near the end).
    Head at the beginning of tape 1.  Blocks: 0=A, 1=B, 2=C, 3=D.
    """
    catalog = catalog_from(
        [
            [(1, 0.0)],               # A
            [(1, 16.0)],              # B
            [(0, 0.0)],               # C
            [(0, 16.0), (1, 6000.0)], # D (replicated)
        ]
    )
    context = make_context(catalog, tape_count=2, mounted=1, head_mb=0.0)
    return catalog, context
