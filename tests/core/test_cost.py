"""Tests for the analytic cost model, including drive-consistency."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    ExtensionCostTracker,
    ServiceEntry,
    ServiceList,
    effective_bandwidth,
    schedule_time,
    sweep_cost,
)
from repro.tape import EXB_8505XL, Jukebox

BLOCK = 16.0


class TestSweepCost:
    def test_empty_sweep_is_free(self):
        cost = sweep_cost(EXB_8505XL, 0.0, [], BLOCK)
        assert cost.total_s == 0.0
        assert cost.end_head_mb == 0.0

    def test_single_forward_block(self):
        cost = sweep_cost(EXB_8505XL, 0.0, [100.0], BLOCK)
        expected = EXB_8505XL.locate_forward(100.0) + 0.38 + 1.77 * BLOCK
        assert cost.total_s == pytest.approx(expected)
        assert cost.end_head_mb == 116.0

    def test_block_at_head_streams(self):
        cost = sweep_cost(EXB_8505XL, 100.0, [100.0], BLOCK, startup_pending=False)
        assert cost.locate_s == 0.0
        assert cost.read_s == pytest.approx(1.77 * BLOCK)

    def test_reverse_block_skips_read_startup(self):
        cost = sweep_cost(EXB_8505XL, 500.0, [100.0], BLOCK)
        assert cost.locate_s == pytest.approx(EXB_8505XL.locate_reverse(400.0))
        assert cost.read_s == pytest.approx(1.77 * BLOCK)

    def test_reverse_to_position_zero_pays_bot(self):
        cost = sweep_cost(EXB_8505XL, 500.0, [0.0], BLOCK)
        assert cost.locate_s == pytest.approx(
            EXB_8505XL.locate_reverse(500.0, lands_on_bot=True)
        )

    @settings(max_examples=50, deadline=None)
    @given(
        positions=st.lists(
            st.integers(min_value=0, max_value=440),
            min_size=1,
            max_size=25,
            unique=True,
        ),
        head_slot=st.integers(min_value=0, max_value=440),
    )
    def test_matches_drive_execution_exactly(self, positions, head_slot):
        """The analytic sweep cost equals what the drive actually does.

        This is the consistency property that makes max-bandwidth
        decisions faithful to the simulated hardware.
        """
        position_mbs = [slot * BLOCK for slot in positions]
        head_mb = head_slot * BLOCK
        jukebox = Jukebox.build()
        jukebox.switch_to(0)
        jukebox.drive.locate(head_mb)
        startup = jukebox.drive.read_startup_pending

        predicted = sweep_cost(
            EXB_8505XL, head_mb, position_mbs, BLOCK, startup_pending=startup
        )

        service = ServiceList(
            [ServiceEntry(position, block_id=index) for index, position in enumerate(position_mbs)],
            head_mb=head_mb,
        )
        actual = 0.0
        while not service.is_empty:
            entry = service.pop_next()
            actual += jukebox.access(entry.position_mb, BLOCK)
            service.finish_in_flight()
        assert actual == pytest.approx(predicted.total_s, rel=1e-12, abs=1e-9)
        assert jukebox.head_mb == pytest.approx(predicted.end_head_mb)


class TestScheduleTime:
    def test_mounted_tape_has_no_switch_overhead(self):
        mounted_time = schedule_time(
            EXB_8505XL, [100.0], BLOCK, mounted=True, head_mb=0.0
        )
        other_time = schedule_time(
            EXB_8505XL, [100.0], BLOCK, mounted=False, head_mb=0.0, rewind_from_mb=0.0
        )
        assert other_time - mounted_time == pytest.approx(81.0)

    def test_switch_includes_rewind_of_current_tape(self):
        shallow = schedule_time(
            EXB_8505XL, [0.0], BLOCK, mounted=False, head_mb=0.0, rewind_from_mb=0.0
        )
        deep = schedule_time(
            EXB_8505XL, [0.0], BLOCK, mounted=False, head_mb=0.0, rewind_from_mb=2000.0
        )
        assert deep - shallow == pytest.approx(EXB_8505XL.rewind(2000.0))


class TestEffectiveBandwidth:
    def test_empty_schedule_zero_bandwidth(self):
        assert effective_bandwidth(EXB_8505XL, [], BLOCK, True, 0.0) == 0.0

    def test_more_blocks_amortize_overhead(self):
        one = effective_bandwidth(EXB_8505XL, [0.0], BLOCK, False, 0.0)
        many = effective_bandwidth(
            EXB_8505XL, [index * BLOCK for index in range(20)], BLOCK, False, 0.0
        )
        assert many > one

    def test_closer_blocks_higher_bandwidth(self):
        near = effective_bandwidth(EXB_8505XL, [0.0, 16.0, 32.0], BLOCK, True, 0.0)
        far = effective_bandwidth(EXB_8505XL, [0.0, 3000.0, 6000.0], BLOCK, True, 0.0)
        assert near > far


class TestExtensionCostTracker:
    def test_prefix_costs_match_batch_computation(self):
        """Incremental O(1) updates equal the from-scratch round trip."""
        from repro.analysis import extension_round_trip_cost

        positions = [160.0, 400.0, 3200.0, 6000.0]
        envelope = 100.0
        tracker = ExtensionCostTracker(EXB_8505XL, envelope, BLOCK, charge_switch=False)
        for length, position in enumerate(positions, start=1):
            tracker.extend(position)
            batch = extension_round_trip_cost(
                EXB_8505XL, envelope, positions[:length], BLOCK, charge_switch=False
            )
            assert tracker.prefix_cost() == pytest.approx(batch)

    def test_switch_charge_applies_once(self):
        charged = ExtensionCostTracker(EXB_8505XL, 0.0, BLOCK, charge_switch=True)
        free = ExtensionCostTracker(EXB_8505XL, 0.0, BLOCK, charge_switch=False)
        charged.extend(100.0)
        free.extend(100.0)
        assert charged.prefix_cost() - free.prefix_cost() == pytest.approx(81.0)

    def test_bandwidth_monotone_in_density(self):
        """Adding a block adjacent to the prefix raises bandwidth; adding a
        distant one lowers it."""
        tracker = ExtensionCostTracker(EXB_8505XL, 0.0, BLOCK, charge_switch=False)
        tracker.extend(0.0)
        base = tracker.prefix_bandwidth()
        tracker.extend(16.0)  # adjacent: nearly free extra bytes
        assert tracker.prefix_bandwidth() > base
        dense = tracker.prefix_bandwidth()
        tracker.extend(6000.0)  # long haul for one block
        assert tracker.prefix_bandwidth() < dense

    def test_unsorted_extension_rejected(self):
        tracker = ExtensionCostTracker(EXB_8505XL, 0.0, BLOCK, charge_switch=False)
        tracker.extend(300.0)
        with pytest.raises(ValueError):
            tracker.extend(100.0)

    def test_count_tracks_blocks(self):
        tracker = ExtensionCostTracker(EXB_8505XL, 0.0, BLOCK, charge_switch=False)
        assert tracker.count == 0
        tracker.extend(10 * BLOCK)
        tracker.extend(20 * BLOCK)
        assert tracker.count == 2
