"""Unit tests for the pending list."""

import pytest

from repro.core import PendingList

from .conftest import catalog_from


@pytest.fixture
def catalog():
    # Block 0 on tapes 0+1 (replicated), block 1 on tape 0, block 2 on tape 2.
    return catalog_from([[(0, 0.0), (1, 16.0)], [(0, 16.0)], [(2, 0.0)]])


@pytest.fixture
def pending(catalog):
    return PendingList(catalog)


class TestPendingList:
    def test_starts_empty(self, pending):
        assert len(pending) == 0
        assert pending.oldest() is None

    def test_append_preserves_arrival_order(self, pending, factory):
        first = factory.create(block_id=1, arrival_s=0.0)
        second = factory.create(block_id=2, arrival_s=1.0)
        pending.append(first)
        pending.append(second)
        assert pending.oldest() is first
        assert pending.snapshot() == [first, second]

    def test_duplicate_append_rejected(self, pending, factory):
        request = factory.create(block_id=0, arrival_s=0.0)
        pending.append(request)
        with pytest.raises(ValueError):
            pending.append(request)

    def test_contains(self, pending, factory):
        request = factory.create(block_id=0, arrival_s=0.0)
        assert request not in pending
        pending.append(request)
        assert request in pending

    def test_requests_for_tape_uses_replicas(self, pending, factory):
        replicated = factory.create(block_id=0, arrival_s=0.0)
        tape0_only = factory.create(block_id=1, arrival_s=1.0)
        tape2_only = factory.create(block_id=2, arrival_s=2.0)
        for request in (replicated, tape0_only, tape2_only):
            pending.append(request)
        assert pending.requests_for_tape(0) == [replicated, tape0_only]
        assert pending.requests_for_tape(1) == [replicated]
        assert pending.requests_for_tape(2) == [tape2_only]
        assert pending.requests_for_tape(5) == []

    def test_candidate_tapes_maps_all_replicas(self, pending, factory):
        replicated = factory.create(block_id=0, arrival_s=0.0)
        pending.append(replicated)
        candidates = pending.candidate_tapes()
        assert set(candidates) == {0, 1}
        assert candidates[0] == [replicated]
        assert candidates[1] == [replicated]

    def test_remove_many(self, pending, factory):
        requests = [factory.create(block_id=index % 3, arrival_s=index) for index in range(4)]
        for request in requests:
            pending.append(request)
        pending.remove_many(requests[1:3])
        assert pending.snapshot() == [requests[0], requests[3]]

    def test_remove_missing_raises(self, pending, factory):
        ghost = factory.create(block_id=0, arrival_s=0.0)
        with pytest.raises(KeyError):
            pending.remove_many([ghost])

    def test_iteration(self, pending, factory):
        requests = [factory.create(block_id=0, arrival_s=index) for index in range(3)]
        # Same block requested three times is fine: distinct requests.
        for request in requests:
            pending.append(request)
        assert list(pending) == requests
