"""The optimized EnvelopeComputer makes the same decisions, provably.

The production computer (indexed candidate rows, bisect prefix skip,
cached replica lookups, shared rank tables) must produce an
:class:`EnvelopeState` identical — envelope, assignment, and per-tape
counts — to the original per-request scan-and-sort implementation, which
is preserved below as the reference oracle.  Randomized catalogs and
request mixes sweep mounted/unmounted heads, replication degrees, and
shrink on/off.
"""

import random
from typing import Dict, List, Optional, Tuple

import pytest

from repro.core.cost import ExtensionCostTracker
from repro.core.envelope import EnvelopeComputer, EnvelopeState
from repro.core.policies import jukebox_order
from repro.layout.catalog import BlockCatalog, Replica
from repro.tape.timing import EXB_8505XL
from repro.workload.requests import Request


class ReferenceEnvelopeComputer:
    """The original (pre-optimization) implementation, verbatim."""

    def __init__(
        self,
        timing,
        catalog,
        tape_count,
        mounted_id,
        head_mb,
        enable_shrink=True,
    ):
        self._timing = timing
        self._catalog = catalog
        self._tape_count = tape_count
        self._mounted_id = mounted_id
        self._head_mb = head_mb
        self._block_mb = catalog.block_mb
        self._enable_shrink = enable_shrink

    def _rank_after_mounted(self):
        anchor = self._mounted_id if self._mounted_id is not None else -1
        return {
            tape_id: rank
            for rank, tape_id in enumerate(jukebox_order(self._tape_count, anchor + 1))
        }

    def _inside(self, replica, state):
        return replica.position_mb + self._block_mb <= state.envelope.get(
            replica.tape_id, 0.0
        )

    def _choose_absorption_replica(self, candidates, state, rank):
        for replica in candidates:
            if replica.tape_id == self._mounted_id:
                return replica
        return max(
            candidates,
            key=lambda replica: (
                state.scheduled_count.get(replica.tape_id, 0),
                -rank[replica.tape_id],
            ),
        )

    def compute(self, requests):
        self._request_index = {request.request_id: request for request in requests}
        state = EnvelopeState(
            envelope={tape_id: 0.0 for tape_id in range(self._tape_count)}
        )
        rank = self._rank_after_mounted()
        block_mb = self._block_mb

        for request in requests:
            replicas = self._catalog.replicas_of(request.block_id)
            if len(replicas) == 1:
                replica = replicas[0]
                end = replica.position_mb + block_mb
                if end > state.envelope[replica.tape_id]:
                    state.envelope[replica.tape_id] = end
        if self._mounted_id is not None:
            state.envelope[self._mounted_id] = max(
                state.envelope[self._mounted_id], self._head_mb
            )

        unscheduled = []
        for request in requests:
            candidates = [
                replica
                for replica in self._catalog.replicas_of(request.block_id)
                if self._inside(replica, state)
            ]
            if candidates:
                state.assign(
                    request, self._choose_absorption_replica(candidates, state, rank)
                )
            else:
                unscheduled.append(request)

        while unscheduled:
            still_outside = []
            for request in unscheduled:
                candidates = [
                    replica
                    for replica in self._catalog.replicas_of(request.block_id)
                    if self._inside(replica, state)
                ]
                if candidates:
                    state.assign(
                        request,
                        self._choose_absorption_replica(candidates, state, rank),
                    )
                else:
                    still_outside.append(request)
            unscheduled = still_outside
            if not unscheduled:
                break

            chosen = self._best_extension(unscheduled, state, rank)
            if chosen is None:
                raise RuntimeError("unscheduled requests with no extension candidates")
            tape_id, prefix = chosen

            old_envelope = state.envelope[tape_id]
            state.envelope[tape_id] = prefix[-1][0] + block_mb
            prefix_ids = set()
            for position, request in prefix:
                state.assign(request, Replica(tape_id, position))
                prefix_ids.add(request.request_id)
            unscheduled = [
                request
                for request in unscheduled
                if request.request_id not in prefix_ids
            ]

            if self._enable_shrink:
                self._shrink(state, tape_id, old_envelope, rank)

        return state

    def _best_extension(self, unscheduled, state, rank):
        best_key = None
        best = None
        for tape_id in range(self._tape_count):
            envelope = state.envelope[tape_id]
            extension = []
            for request in unscheduled:
                if not self._catalog.has_replica_on(request.block_id, tape_id):
                    continue
                replica = self._catalog.replica_on(request.block_id, tape_id)
                if replica.position_mb >= envelope:
                    extension.append((replica.position_mb, request))
            if not extension:
                continue
            extension.sort(key=lambda pair: (pair[0], pair[1].request_id))
            charge_switch = envelope == 0.0 and tape_id != self._mounted_id
            tracker = ExtensionCostTracker(
                self._timing, envelope, self._block_mb, charge_switch
            )
            for length in range(1, len(extension) + 1):
                position = extension[length - 1][0]
                if length >= 2 and position == extension[length - 2][0]:
                    pass
                else:
                    tracker.extend(position)
                bandwidth = tracker.prefix_bandwidth()
                key = (
                    bandwidth,
                    state.scheduled_count.get(tape_id, 0),
                    -rank[tape_id],
                )
                if best_key is None or key > best_key:
                    best_key = key
                    best = (tape_id, extension[:length])
        return best

    def _shrink(self, state, extended_tape, old_envelope, rank):
        block_mb = self._block_mb
        new_envelope = state.envelope[extended_tape]
        while True:
            candidates = []
            for request_id, replica in state.assignment.items():
                tape_id = replica.tape_id
                if tape_id == extended_tape:
                    continue
                if replica.position_mb + block_mb != state.envelope.get(tape_id, 0.0):
                    continue
                request = self._request_index.get(request_id)
                if request is None:
                    continue
                if not self._catalog.has_replica_on(request.block_id, extended_tape):
                    continue
                other = self._catalog.replica_on(request.block_id, extended_tape)
                end = other.position_mb + block_mb
                if old_envelope < end <= new_envelope:
                    candidates.append(
                        (
                            state.scheduled_count.get(tape_id, 0),
                            tape_id,
                            rank[tape_id],
                            request,
                            other,
                        )
                    )
            if not candidates:
                return
            candidates.sort(key=lambda item: (item[0], item[1]))
            _count, tape_id, _rank, request, target = candidates[0]
            state.assign(request, target)
            self._recompute_envelope(state, tape_id)

    def _recompute_envelope(self, state, tape_id):
        block_mb = self._block_mb
        floor = self._head_mb if tape_id == self._mounted_id else 0.0
        highest = floor
        for replica in state.assignment.values():
            if replica.tape_id == tape_id:
                highest = max(highest, replica.position_mb + block_mb)
        state.envelope[tape_id] = highest


# ----------------------------------------------------------------------
# Scenario generation
# ----------------------------------------------------------------------
def random_catalog(rng: random.Random, tape_count: int, n_blocks: int) -> BlockCatalog:
    """Blocks with 1..3 copies at distinct integer positions per tape."""
    replicas_by_block = []
    for _ in range(n_blocks):
        degree = rng.choice([1, 1, 2, 2, 3])
        tapes = rng.sample(range(tape_count), min(degree, tape_count))
        replicas_by_block.append(
            [Replica(tape_id, float(rng.randrange(0, 200))) for tape_id in tapes]
        )
    return BlockCatalog(block_mb=1.0, n_hot=0, replicas_by_block=replicas_by_block)


def random_requests(rng: random.Random, n_blocks: int, count: int) -> List[Request]:
    return [
        Request(
            request_id=index,
            block_id=rng.randrange(n_blocks),
            arrival_s=float(index),
        )
        for index in range(count)
    ]


def states_equal(left: EnvelopeState, right: EnvelopeState) -> bool:
    return (
        left.envelope == right.envelope
        and left.assignment == right.assignment
        and left.scheduled_count == right.scheduled_count
    )


SCENARIOS = [
    # (seed, tape_count, n_blocks, n_requests, mounted, head_mb, shrink)
    (1, 4, 30, 20, None, 0.0, True),
    (2, 4, 30, 20, 0, 50.0, True),
    (3, 8, 80, 60, 3, 120.0, True),
    (4, 8, 80, 60, 3, 120.0, False),
    (5, 2, 10, 40, 1, 10.0, True),
    (6, 16, 200, 150, 7, 75.0, True),
    (7, 16, 200, 150, None, 0.0, False),
    (8, 10, 120, 1, 5, 30.0, True),
    (9, 6, 50, 90, 2, 199.0, True),
]


@pytest.mark.parametrize(
    "seed,tape_count,n_blocks,n_requests,mounted,head_mb,shrink",
    SCENARIOS,
)
def test_optimized_matches_reference(
    seed, tape_count, n_blocks, n_requests, mounted, head_mb, shrink
):
    rng = random.Random(seed)
    catalog = random_catalog(rng, tape_count, n_blocks)
    requests = random_requests(rng, n_blocks, n_requests)
    kwargs = dict(
        timing=EXB_8505XL,
        catalog=catalog,
        tape_count=tape_count,
        mounted_id=mounted,
        head_mb=head_mb,
        enable_shrink=shrink,
    )
    expected = ReferenceEnvelopeComputer(**kwargs).compute(list(requests))
    actual = EnvelopeComputer(**kwargs).compute(requests)
    assert states_equal(expected, actual)


def test_computer_is_reusable_across_calls():
    """Per-compute caches must not leak between compute() calls."""
    rng = random.Random(11)
    catalog = random_catalog(rng, 6, 40)
    computer = EnvelopeComputer(
        timing=EXB_8505XL,
        catalog=catalog,
        tape_count=6,
        mounted_id=2,
        head_mb=33.0,
    )
    first_requests = random_requests(rng, 40, 25)
    second_requests = random_requests(random.Random(12), 40, 35)
    computer.compute(first_requests)
    actual = computer.compute(second_requests)
    expected = ReferenceEnvelopeComputer(
        timing=EXB_8505XL,
        catalog=catalog,
        tape_count=6,
        mounted_id=2,
        head_mb=33.0,
    ).compute(list(second_requests))
    assert states_equal(expected, actual)


def test_compute_does_not_copy_or_mutate_the_input():
    """Satellite contract: compute() takes the caller's list as-is."""
    rng = random.Random(21)
    catalog = random_catalog(rng, 4, 20)
    requests = random_requests(rng, 20, 15)
    snapshot = list(requests)
    EnvelopeComputer(
        timing=EXB_8505XL,
        catalog=catalog,
        tape_count=4,
        mounted_id=None,
        head_mb=0.0,
    ).compute(requests)
    assert requests == snapshot
