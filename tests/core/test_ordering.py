"""Tests for the nearest-neighbor intra-tape ordering ablation."""

import pytest
from hypothesis import given, strategies as st

from repro.core import DynamicScheduler, MaxBandwidth, ServiceEntry, StaticScheduler
from repro.core.ordering import NearestNeighborServiceList


def entry(position, block_id=None):
    return ServiceEntry(
        position_mb=position,
        block_id=block_id if block_id is not None else int(position),
    )


class TestNearestNeighborList:
    def test_pops_nearest_first(self):
        service = NearestNeighborServiceList(
            [entry(100), entry(10), entry(55)], head_mb=50.0
        )
        order = []
        while not service.is_empty:
            order.append(service.pop_next().position_mb)
            service.finish_in_flight()
        assert order == [55, 10, 100]  # 55 is 5 away; then 10 (45); then 100

    def test_tie_prefers_lower_position(self):
        service = NearestNeighborServiceList([entry(40), entry(60)], head_mb=50.0)
        assert service.pop_next().position_mb == 40

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            NearestNeighborServiceList([], head_mb=0.0).pop_next()

    def test_insert_always_accepted(self):
        service = NearestNeighborServiceList([entry(500)], head_mb=0.0)
        service.pop_next()
        service.finish_in_flight()
        assert service.can_insert(10.0)
        assert service.insert(entry(10))  # behind the head: fine for greedy
        assert service.pop_next().position_mb == 10

    def test_find_block(self):
        service = NearestNeighborServiceList([entry(10, block_id=3)], head_mb=0.0)
        assert service.find_block(3) is not None
        service.pop_next()
        assert service.find_block(3) is None

    @given(
        positions=st.lists(
            st.floats(min_value=0, max_value=7000, allow_nan=False),
            min_size=1,
            max_size=30,
            unique=True,
        ),
        head=st.floats(min_value=0, max_value=7000, allow_nan=False),
    )
    def test_serves_every_entry_exactly_once(self, positions, head):
        service = NearestNeighborServiceList(
            [entry(position) for position in positions], head_mb=head
        )
        served = []
        while not service.is_empty:
            served.append(service.pop_next().position_mb)
            service.finish_in_flight()
        assert sorted(served) == sorted(positions)


class TestSchedulerIntegration:
    def test_ordering_validation(self):
        with pytest.raises(ValueError):
            StaticScheduler(MaxBandwidth(), ordering="random")

    def test_names(self):
        assert (
            DynamicScheduler(MaxBandwidth(), ordering="nearest").name
            == "dynamic-max-bandwidth-nearest"
        )
        assert StaticScheduler(MaxBandwidth()).name == "static-max-bandwidth"

    def test_build_service_list_dispatch(self):
        sweep_scheduler = DynamicScheduler(MaxBandwidth())
        nn_scheduler = DynamicScheduler(MaxBandwidth(), ordering="nearest")
        entries = [entry(10)]
        from repro.core import ServiceList

        assert isinstance(sweep_scheduler.build_service_list(entries, 0.0), ServiceList)
        assert isinstance(
            nn_scheduler.build_service_list(entries, 0.0), NearestNeighborServiceList
        )

    def test_end_to_end_nearest_ordering(self):
        """Both orderings complete the workload; conservation holds."""
        import random

        from repro.des import Environment
        from repro.layout import PlacementSpec, build_catalog
        from repro.service import JukeboxSimulator, MetricsCollector
        from repro.tape import Jukebox
        from repro.workload import ClosedSource, HotColdSkew

        catalog = build_catalog(PlacementSpec(percent_hot=10), 10, 7 * 1024.0)

        def run(ordering):
            simulator = JukeboxSimulator(
                env=Environment(),
                jukebox=Jukebox.build(),
                catalog=catalog,
                scheduler=DynamicScheduler(MaxBandwidth(), ordering=ordering),
                source=ClosedSource(60, HotColdSkew(40.0), catalog, random.Random(3)),
                metrics=MetricsCollector(block_mb=16.0, warmup_s=3_000.0),
            )
            return simulator.run(30_000.0)

        sweep_report = run("sweep")
        nearest_report = run("nearest")
        for report in (sweep_report, nearest_report):
            assert report.total_completed > 100
            assert report.mean_queue_length == pytest.approx(60.0, abs=1e-6)
        # The sweep should not lose to greedy nearest-neighbor by much;
        # the quantitative comparison lives in bench_ablations.
        assert sweep_report.throughput_kb_s > 0.85 * nearest_report.throughput_kb_s
