"""Unit and property tests for the sweep-ordered service list."""

import pytest
from hypothesis import given, strategies as st

from repro.core import ServiceEntry, ServiceList, SweepPhase


def entry(position, block_id=None):
    return ServiceEntry(
        position_mb=position, block_id=block_id if block_id is not None else int(position)
    )


class TestSweepOrder:
    def test_forward_then_reverse_from_head(self):
        service = ServiceList(
            [entry(100), entry(50), entry(200), entry(10)], head_mb=60.0
        )
        order = []
        while not service.is_empty:
            order.append(service.pop_next().position_mb)
            service.finish_in_flight()
        assert order == [100, 200, 50, 10]

    def test_all_forward_when_head_at_zero(self):
        service = ServiceList([entry(30), entry(10), entry(20)], head_mb=0.0)
        order = [service.pop_next().position_mb for _ in range(3)]
        assert order == [10, 20, 30]

    def test_block_at_head_counts_as_forward(self):
        service = ServiceList([entry(60)], head_mb=60.0)
        assert service.phase is SweepPhase.FORWARD

    def test_empty_pop_raises(self):
        service = ServiceList([], head_mb=0.0)
        with pytest.raises(IndexError):
            service.pop_next()

    def test_phase_transitions(self):
        service = ServiceList([entry(100), entry(10)], head_mb=50.0)
        assert service.phase is SweepPhase.FORWARD
        service.pop_next()
        assert service.phase is SweepPhase.REVERSE
        service.pop_next()
        assert service.phase is SweepPhase.DONE

    def test_len_and_remaining(self):
        service = ServiceList([entry(10), entry(90)], head_mb=50.0)
        assert len(service) == 2
        assert service.remaining_positions() == [90, 10]
        service.pop_next()
        assert len(service) == 1

    def test_in_flight_tracking(self):
        service = ServiceList([entry(10)], head_mb=0.0)
        popped = service.pop_next()
        assert service.in_flight is popped
        service.finish_in_flight()
        assert service.in_flight is None

    def test_find_block_only_sees_unstarted(self):
        service = ServiceList([entry(10, block_id=7), entry(20, block_id=8)], head_mb=0.0)
        assert service.find_block(7) is not None
        service.pop_next()  # starts block 7
        assert service.find_block(7) is None
        assert service.find_block(8) is not None


class TestInsertion:
    def test_insert_before_sweep_starts(self):
        service = ServiceList([entry(100)], head_mb=50.0)
        assert service.insert(entry(70))
        assert service.insert(entry(20))
        assert service.remaining_positions() == [70, 100, 20]

    def test_forward_insert_ahead_of_in_flight(self):
        service = ServiceList([entry(100), entry(200)], head_mb=0.0)
        service.pop_next()  # in flight at 100
        assert service.insert(entry(150))
        assert service.remaining_positions() == [150, 200]

    def test_forward_insert_behind_in_flight_rejected(self):
        service = ServiceList([entry(100), entry(200)], head_mb=0.0)
        service.pop_next()
        assert not service.insert(entry(50))

    def test_insert_at_in_flight_position_rejected(self):
        service = ServiceList([entry(100)], head_mb=0.0)
        service.pop_next()
        assert not service.insert(entry(100))

    def test_reverse_insert_allowed_while_forward_running(self):
        service = ServiceList([entry(100), entry(20)], head_mb=50.0)
        service.pop_next()  # forward at 100
        assert service.insert(entry(30))
        assert service.remaining_positions() == [30, 20]

    def test_forward_insert_rejected_once_reverse_started(self):
        service = ServiceList([entry(20)], head_mb=50.0)
        service.pop_next()  # reverse phase begins
        assert not service.insert(entry(300))

    def test_reverse_insert_respects_reverse_progress(self):
        service = ServiceList([entry(40), entry(20)], head_mb=50.0)
        service.pop_next()  # reverse at 40
        assert not service.insert(entry(45))
        assert service.insert(entry(10))
        assert service.remaining_positions() == [20, 10]

    def test_insert_between_reads_uses_last_started_position(self):
        service = ServiceList([entry(100), entry(300)], head_mb=0.0)
        service.pop_next()
        service.finish_in_flight()
        # Head finished 100..116; inserting at 110 would be behind it.
        assert not service.insert(entry(50))
        assert service.insert(entry(200))
        assert service.remaining_positions() == [200, 300]


@given(
    positions=st.lists(
        st.floats(min_value=0, max_value=7000, allow_nan=False),
        min_size=1,
        max_size=40,
        unique=True,
    ),
    head=st.floats(min_value=0, max_value=7000, allow_nan=False),
)
def test_sweep_is_monotone_forward_then_reverse(positions, head):
    """Property: execution order is ascending above the head, then
    descending below it — one physical direction change at most."""
    service = ServiceList([entry(position) for position in positions], head_mb=head)
    order = []
    while not service.is_empty:
        order.append(service.pop_next().position_mb)
        service.finish_in_flight()
    forward = [position for position in order if position >= head]
    reverse = [position for position in order if position < head]
    assert order == forward + reverse
    assert forward == sorted(forward)
    assert reverse == sorted(reverse, reverse=True)
    assert sorted(order) == sorted(positions)


@given(
    initial=st.lists(
        st.integers(min_value=0, max_value=400), min_size=1, max_size=20, unique=True
    ),
    inserts=st.lists(
        st.integers(min_value=0, max_value=400), min_size=1, max_size=20, unique=True
    ),
    head=st.integers(min_value=0, max_value=400),
    pops_before_insert=st.integers(min_value=0, max_value=5),
)
def test_inserted_entries_never_behind_sweep(initial, inserts, head, pops_before_insert):
    """Property: after any interleaving of pops and accepted inserts, the
    executed order remains a valid single sweep."""
    service = ServiceList([entry(position * 16.0) for position in initial], head_mb=head * 16.0)
    executed = []
    for _ in range(min(pops_before_insert, len(service))):
        executed.append(service.pop_next().position_mb)
        service.finish_in_flight()
    for position in inserts:
        service.insert(entry(position * 16.0 + 8.0))  # offset to avoid collisions
    while not service.is_empty:
        executed.append(service.pop_next().position_mb)
        service.finish_in_flight()
    head_mb = head * 16.0
    forward = [position for position in executed if position >= head_mb]
    reverse = [position for position in executed if position < head_mb]
    assert executed == forward + reverse
    assert forward == sorted(forward)
    assert reverse == sorted(reverse, reverse=True)
