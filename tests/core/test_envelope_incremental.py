"""Property tests for the incremental envelope index (dirty-tape path).

The `EnvelopeIndex` maintains the computer's candidate rows across
pending-list mutations instead of rebuilding them per compute.  These
tests drive random arrival/removal/requeue interleavings — across tape
counts, replication degrees, and shrink on/off — and require the
indexed path to be *bit-identical* to the full rebuild: same
``EnvelopeState`` (envelope floats, assignment, counts) and the same
``MajorDecision`` order out of the scheduler.
"""

import random
from dataclasses import dataclass
from typing import List, Optional

import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is a test-only dep
    HAVE_HYPOTHESIS = False

from repro.core import PendingList, SchedulerContext
from repro.core.envelope import (
    EnvelopeComputer,
    EnvelopeIndex,
    EnvelopeScheduler,
    EnvelopeState,
)
from repro.core.policies import MaxRequests
from repro.layout.catalog import BlockCatalog, Replica
from repro.tape import Jukebox
from repro.tape.timing import EXB_8505XL
from repro.workload.requests import Request


def build_catalog(
    rng: random.Random, tape_count: int, n_blocks: int, degree
) -> BlockCatalog:
    """Blocks with ``degree`` copies (or 1-3 when "mixed") per block.

    Positions are small integers so distinct blocks frequently collide
    on the same position — the duplicate-position arithmetic in the
    extension search must handle that identically on both paths.
    """
    replicas_by_block = []
    for _ in range(n_blocks):
        copies = rng.choice([1, 1, 2, 2, 3]) if degree == "mixed" else degree
        tapes = rng.sample(range(tape_count), min(copies, tape_count))
        replicas_by_block.append(
            [Replica(tape_id, float(rng.randrange(0, 200))) for tape_id in tapes]
        )
    return BlockCatalog(block_mb=1.0, n_hot=0, replicas_by_block=replicas_by_block)


def states_equal(left: EnvelopeState, right: EnvelopeState) -> bool:
    return (
        left.envelope == right.envelope
        and left.assignment == right.assignment
        and left.scheduled_count == right.scheduled_count
    )


@dataclass
class _Interleaver:
    """Applies one random op stream to a pending list."""

    rng: random.Random
    catalog: BlockCatalog
    n_blocks: int

    def __post_init__(self):
        self.next_id = 0
        self.removed: List[Request] = []

    def fresh_request(self) -> Request:
        request = Request(
            request_id=self.next_id,
            block_id=self.rng.randrange(self.n_blocks),
            arrival_s=float(self.next_id),
        )
        self.next_id += 1
        return request

    def step(self, pending: PendingList) -> None:
        roll = self.rng.random()
        if roll < 0.45 or len(pending) == 0:
            pending.append(self.fresh_request())
        elif roll < 0.75:
            live = pending.snapshot()
            count = self.rng.randrange(1, min(len(live), 5) + 1)
            victims = self.rng.sample(live, count)
            pending.remove_many(victims)
            self.removed.extend(victims)
        elif self.removed:
            # Fault-style requeue: a previously removed id reappears,
            # exercising the index's tombstone-clear path.
            pending.append(self.removed.pop(self.rng.randrange(len(self.removed))))
        else:
            pending.append(self.fresh_request())


MATRIX = [
    # (tape_count, n_blocks, degree, shrink)
    (2, 12, 1, True),
    (4, 30, 2, True),
    (8, 60, 3, False),
    (6, 40, "mixed", True),
]


def _run_interleaving(seed, tape_count, n_blocks, degree, shrink, steps=60):
    rng = random.Random(seed)
    catalog = build_catalog(rng, tape_count, n_blocks, degree)
    pending = PendingList(catalog)
    index = EnvelopeIndex(pending)
    assert index.enabled
    driver = _Interleaver(rng=rng, catalog=catalog, n_blocks=n_blocks)
    compared = 0
    for step in range(steps):
        driver.step(pending)
        if step % 7 != 6 and step != steps - 1:
            continue
        snapshot = pending.snapshot()
        if not snapshot:
            continue
        mounted = rng.choice([None] + list(range(tape_count)))
        head_mb = float(rng.randrange(0, 150)) if mounted is not None else 0.0
        kwargs = dict(
            timing=EXB_8505XL,
            catalog=catalog,
            tape_count=tape_count,
            mounted_id=mounted,
            head_mb=head_mb,
            enable_shrink=shrink,
        )
        indexed = EnvelopeComputer(**kwargs).compute(snapshot, index=index)
        full = EnvelopeComputer(**kwargs).compute(list(snapshot))
        assert states_equal(indexed, full)
        compared += 1
    assert compared >= 2


if HAVE_HYPOTHESIS:

    @pytest.mark.parametrize("tape_count,n_blocks,degree,shrink", MATRIX)
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**20))
    def test_random_interleavings_bit_identical(
        tape_count, n_blocks, degree, shrink, seed
    ):
        _run_interleaving(seed, tape_count, n_blocks, degree, shrink)

else:  # pragma: no cover - exercised only without hypothesis

    @pytest.mark.parametrize("tape_count,n_blocks,degree,shrink", MATRIX)
    @pytest.mark.parametrize("seed", [3, 17, 40001])
    def test_random_interleavings_bit_identical(
        tape_count, n_blocks, degree, shrink, seed
    ):
        _run_interleaving(seed, tape_count, n_blocks, degree, shrink)


# ----------------------------------------------------------------------
# Scheduler-level: identical MajorDecision order, indexed vs full path.
# ----------------------------------------------------------------------
class _PlainPending(PendingList):
    """A pending list the scheduler cannot index (no listener hook)."""

    add_listener = None


def _decision_key(decision) -> Optional[tuple]:
    if decision is None:
        return None
    return (
        decision.tape_id,
        tuple(
            (entry.position_mb, entry.block_id,
             tuple(request.request_id for request in entry.requests))
            for entry in decision.entries
        ),
    )


def _context(catalog, tape_count, pending) -> SchedulerContext:
    jukebox = Jukebox.build(tape_count=tape_count)
    return SchedulerContext(jukebox=jukebox, catalog=catalog, pending=pending)


@pytest.mark.parametrize("seed", [5, 29, 7331])
@pytest.mark.parametrize("shrink", [True, False])
def test_scheduler_decision_order_matches_full_path(seed, shrink):
    """Indexed and index-less schedulers emit identical decision streams."""
    tape_count, n_blocks = 6, 50
    rng = random.Random(seed)
    catalog = build_catalog(rng, tape_count, n_blocks, "mixed")

    indexed_ctx = _context(catalog, tape_count, PendingList(catalog))
    plain_ctx = _context(catalog, tape_count, _PlainPending(catalog))
    indexed = EnvelopeScheduler(MaxRequests(), enable_shrink=shrink)
    plain = EnvelopeScheduler(MaxRequests(), enable_shrink=shrink)

    driver = _Interleaver(rng=rng, catalog=catalog, n_blocks=n_blocks)
    ops = rng  # alias: one rng drives both sides identically
    decisions = 0
    for _ in range(80):
        if ops.random() < 0.6 or len(indexed_ctx.pending) == 0:
            request = driver.fresh_request()
            # service=None: on_arrival defers to the pending list on
            # both sides (the same path a mid-sweep deferral takes).
            assert not indexed.on_arrival(indexed_ctx, request)
            assert not plain.on_arrival(plain_ctx, request)
        else:
            left = indexed.major_reschedule(indexed_ctx)
            right = plain.major_reschedule(plain_ctx)
            assert _decision_key(left) == _decision_key(right)
            if left is not None:
                decisions += 1
                # Mount the chosen tape so the next compute sees the
                # same (mounted, head) base on both sides.
                indexed_ctx.jukebox.switch_to(left.tape_id)
                plain_ctx.jukebox.switch_to(right.tape_id)
    # Drain whatever is left so the run ends on a decision comparison.
    while len(indexed_ctx.pending):
        left = indexed.major_reschedule(indexed_ctx)
        right = plain.major_reschedule(plain_ctx)
        assert _decision_key(left) == _decision_key(right)
        decisions += 1
    assert decisions >= 3
    assert indexed._index is not None, "indexed scheduler never built its index"
    assert plain._index is None


# ----------------------------------------------------------------------
# EnvelopeIndex unit behavior: requeue, compaction, fallback, disable.
# ----------------------------------------------------------------------
def test_requeued_request_restores_tombstoned_rows():
    rng = random.Random(13)
    catalog = build_catalog(rng, 4, 20, 2)
    pending = PendingList(catalog)
    index = EnvelopeIndex(pending)
    requests = [
        Request(request_id=i, block_id=i % 20, arrival_s=float(i)) for i in range(12)
    ]
    for request in requests:
        pending.append(request)
    pending.remove_many(requests[3:6])
    assert index.live_count == 9
    pending.append(requests[4])  # fault requeue: same id comes back
    assert index.live_count == 10
    snapshot = pending.snapshot()
    kwargs = dict(
        timing=EXB_8505XL, catalog=catalog, tape_count=4, mounted_id=1, head_mb=25.0
    )
    indexed = EnvelopeComputer(**kwargs).compute(snapshot, index=index)
    full = EnvelopeComputer(**kwargs).compute(list(snapshot))
    assert states_equal(indexed, full)


def test_compaction_rebuilds_and_stays_equivalent():
    rng = random.Random(31)
    n_blocks = 300
    catalog = build_catalog(rng, 5, n_blocks, 3)
    pending = PendingList(catalog)
    index = EnvelopeIndex(pending)
    requests = [
        Request(request_id=i, block_id=i % n_blocks, arrival_s=float(i))
        for i in range(260)
    ]
    for request in requests:
        pending.append(request)
    # Remove enough that dead rows (~720) clear the floor and outnumber
    # the live remainder, forcing a compaction on the next refresh.
    pending.remove_many(requests[:240])
    snapshot = pending.snapshot()
    kwargs = dict(
        timing=EXB_8505XL, catalog=catalog, tape_count=5, mounted_id=None, head_mb=0.0
    )
    indexed = EnvelopeComputer(**kwargs).compute(snapshot, index=index)
    assert index.compactions == 1
    full = EnvelopeComputer(**kwargs).compute(list(snapshot))
    assert states_equal(indexed, full)
    # The index remains live after compacting.
    pending.append(Request(request_id=9001, block_id=0, arrival_s=999.0))
    snapshot = pending.snapshot()
    indexed = EnvelopeComputer(**kwargs).compute(snapshot, index=index)
    full = EnvelopeComputer(**kwargs).compute(list(snapshot))
    assert states_equal(indexed, full)


def test_stale_index_falls_back_to_full_rebuild():
    """A snapshot the index does not cover must not poison the result."""
    rng = random.Random(47)
    catalog = build_catalog(rng, 3, 15, 2)
    pending = PendingList(catalog)
    index = EnvelopeIndex(pending)
    for i in range(8):
        pending.append(Request(request_id=i, block_id=i % 15, arrival_s=float(i)))
    # Hand the computer a *different* request set than the index tracks:
    # live_count mismatch must route through the full rebuild.
    foreign = [
        Request(request_id=100 + i, block_id=i % 15, arrival_s=float(i))
        for i in range(5)
    ]
    kwargs = dict(
        timing=EXB_8505XL, catalog=catalog, tape_count=3, mounted_id=0, head_mb=10.0
    )
    via_index_arg = EnvelopeComputer(**kwargs).compute(foreign, index=index)
    full = EnvelopeComputer(**kwargs).compute(list(foreign))
    assert states_equal(via_index_arg, full)


def test_dynamic_catalog_disables_the_index():
    rng = random.Random(53)
    catalog = build_catalog(rng, 3, 10, 2)

    class Masked:
        dynamic_replicas = True

        def __init__(self, inner):
            self._inner = inner
            self.block_mb = inner.block_mb

        def __getattr__(self, name):
            return getattr(self._inner, name)

    masked = Masked(catalog)
    pending = PendingList(masked)
    index = EnvelopeIndex(pending)
    assert not index.enabled
    # A disabled index never subscribes, so mutations cost nothing.
    pending.append(Request(request_id=0, block_id=0, arrival_s=0.0))
    assert index.live_count == 0
