"""Unit tests for tape-selection policies."""

import pytest

from repro.core import (
    MaxBandwidth,
    MaxRequests,
    OldestRequestMaxBandwidth,
    OldestRequestMaxRequests,
    POLICIES,
    RoundRobin,
    SelectionContext,
    jukebox_order,
)
from repro.tape import EXB_8505XL
from repro.workload import RequestFactory


def make_selection(candidates, positions=None, mounted=None, head=0.0, tapes=10, oldest=None):
    positions = positions or {}
    return SelectionContext(
        timing=EXB_8505XL,
        block_mb=16.0,
        tape_count=tapes,
        mounted_id=mounted,
        head_mb=head,
        candidates=candidates,
        positions_for=lambda tape_id: positions.get(tape_id, []),
        oldest=oldest,
    )


@pytest.fixture
def requests():
    factory = RequestFactory()
    return [factory.create(block_id=index, arrival_s=float(index)) for index in range(8)]


class TestJukeboxOrder:
    def test_wraps_circularly(self):
        assert jukebox_order(4, 2) == [2, 3, 0, 1]
        assert jukebox_order(4, 0) == [0, 1, 2, 3]
        assert jukebox_order(4, 5) == [1, 2, 3, 0]

    def test_empty(self):
        assert jukebox_order(0, 3) == []


class TestRoundRobin:
    def test_picks_next_tape_after_mounted(self, requests):
        selection = make_selection(
            {1: [requests[0]], 5: [requests[1]]}, mounted=3
        )
        assert RoundRobin().select(selection) == 5

    def test_wraps_past_end(self, requests):
        selection = make_selection({1: [requests[0]]}, mounted=7)
        assert RoundRobin().select(selection) == 1

    def test_skips_mounted_tape_until_last(self, requests):
        # Only the mounted tape has requests: round robin still reaches it
        # after scanning the full circle.
        selection = make_selection({3: [requests[0]]}, mounted=3)
        assert RoundRobin().select(selection) == 3

    def test_no_candidates(self):
        assert RoundRobin().select(make_selection({})) is None


class TestMaxRequests:
    def test_picks_largest_set(self, requests):
        selection = make_selection(
            {0: requests[:2], 4: requests[2:6], 9: requests[6:7]}, mounted=0
        )
        assert MaxRequests().select(selection) == 4

    def test_tie_prefers_mounted(self, requests):
        selection = make_selection(
            {2: requests[:2], 6: requests[2:4]}, mounted=6
        )
        assert MaxRequests().select(selection) == 6

    def test_tie_prefers_first_after_mounted(self, requests):
        selection = make_selection(
            {2: requests[:2], 6: requests[2:4]}, mounted=7
        )
        assert MaxRequests().select(selection) == 2

    def test_no_candidates(self):
        assert MaxRequests().select(make_selection({})) is None


class TestMaxBandwidth:
    def test_prefers_mounted_tape_when_schedules_equal(self, requests):
        """Same positions on both tapes: the mounted one avoids the switch."""
        selection = make_selection(
            {0: requests[:2], 5: requests[2:4]},
            positions={0: [0.0, 16.0], 5: [0.0, 16.0]},
            mounted=0,
        )
        assert MaxBandwidth().select(selection) == 0

    def test_prefers_denser_schedule(self, requests):
        """Many clustered blocks beat a single distant block even with a
        switch in the way."""
        cluster = [index * 16.0 for index in range(8)]
        selection = make_selection(
            {0: requests[:1], 5: requests[:8]},
            positions={0: [6000.0], 5: cluster},
            mounted=0,
        )
        assert MaxBandwidth().select(selection) == 5

    def test_no_candidates(self):
        assert MaxBandwidth().select(make_selection({})) is None


class TestOldestRequestPolicies:
    def test_restricts_to_tapes_with_oldest(self, requests):
        oldest = requests[0]
        selection = make_selection(
            {1: [oldest, requests[1]], 4: requests[2:8]},
            positions={1: [0.0, 16.0], 4: [index * 16.0 for index in range(6)]},
            oldest=oldest,
        )
        # Tape 4 has more requests and bandwidth, but cannot satisfy the
        # oldest request, so both oldest-first policies pick tape 1.
        assert OldestRequestMaxRequests().select(selection) == 1
        assert OldestRequestMaxBandwidth().select(selection) == 1

    def test_oldest_on_multiple_tapes_breaks_by_inner_policy(self, requests):
        oldest = requests[0]
        selection = make_selection(
            {1: [oldest], 4: [oldest] + requests[1:4]},
            positions={1: [0.0], 4: [index * 16.0 for index in range(4)]},
            oldest=oldest,
        )
        assert OldestRequestMaxRequests().select(selection) == 4

    def test_without_oldest_falls_back(self, requests):
        selection = make_selection({2: requests[:3]}, oldest=None)
        assert OldestRequestMaxRequests().select(selection) == 2


class TestRegistryOfPolicies:
    def test_all_five_policies_registered(self):
        assert set(POLICIES) == {
            "round-robin",
            "max-requests",
            "max-bandwidth",
            "oldest-max-requests",
            "oldest-max-bandwidth",
        }
