"""Tests for the envelope-extension algorithm, including the paper's
Figure 2 worked example."""

import pytest

from repro.core import (
    EnvelopeComputer,
    EnvelopeScheduler,
    MaxBandwidth,
    MaxRequests,
    ServiceList,
)
from repro.layout import Replica
from repro.tape import EXB_8505XL

from .conftest import catalog_from, make_context

BLOCK = 16.0


def compute(catalog, requests, tape_count, mounted=None, head=0.0):
    computer = EnvelopeComputer(
        timing=EXB_8505XL,
        catalog=catalog,
        tape_count=tape_count,
        mounted_id=mounted,
        head_mb=head,
    )
    return computer.compute(requests)


class TestFigure2:
    """The paper's motivating example: the replica of D right after C on
    tape 0 should be chosen over the distant copy at the end of tape 1."""

    def test_initial_envelope_pins_non_replicated_blocks(self, figure2, factory):
        catalog, context = figure2
        requests = [factory.create(block_id=block, arrival_s=0.0) for block in range(4)]
        state = compute(catalog, requests, tape_count=2, mounted=1, head=0.0)
        # After extension: tape 0 envelope covers C and D (two blocks),
        # tape 1 covers A and B only.
        assert state.envelope[0] == pytest.approx(32.0)
        assert state.envelope[1] == pytest.approx(32.0)

    def test_d_is_assigned_to_tape_0(self, figure2, factory):
        catalog, context = figure2
        requests = [factory.create(block_id=block, arrival_s=0.0) for block in range(4)]
        state = compute(catalog, requests, tape_count=2, mounted=1, head=0.0)
        d_request = requests[3]
        assert state.assignment[d_request.request_id] == Replica(0, 16.0)

    def test_non_replicated_requests_assigned_to_their_only_tape(self, figure2, factory):
        catalog, context = figure2
        requests = [factory.create(block_id=block, arrival_s=0.0) for block in range(4)]
        state = compute(catalog, requests, tape_count=2, mounted=1, head=0.0)
        assert state.assignment[requests[0].request_id].tape_id == 1  # A
        assert state.assignment[requests[1].request_id].tape_id == 1  # B
        assert state.assignment[requests[2].request_id].tape_id == 0  # C

    def test_scheduler_never_visits_end_of_tape_1(self, figure2, factory):
        """End-to-end: the major rescheduler's schedules stay inside the
        envelope; D is read from tape 0 at position 16, not 6000."""
        catalog, context = figure2
        scheduler = EnvelopeScheduler(MaxBandwidth())
        for block in range(4):
            context.pending.append(factory.create(block_id=block, arrival_s=0.0))
        positions_seen = []
        while len(context.pending) or positions_seen == []:
            decision = scheduler.major_reschedule(context)
            if decision is None:
                break
            for entry in decision.entries:
                positions_seen.append((decision.tape_id, entry.position_mb))
            # Simulate mounting the chosen tape for the next round.
            context.jukebox.switch_to(decision.tape_id)
        assert (1, 6000.0) not in positions_seen
        assert (0, 16.0) in positions_seen


class TestEnvelopeSteps:
    def test_every_request_gets_assigned(self, factory):
        catalog = catalog_from(
            [
                [(0, 0.0)],
                [(1, 160.0)],
                [(0, 320.0), (2, 0.0)],
                [(1, 6000.0), (2, 16.0)],
            ]
        )
        requests = [factory.create(block_id=block, arrival_s=0.0) for block in range(4)]
        state = compute(catalog, requests, tape_count=3)
        assert set(state.assignment) == {request.request_id for request in requests}

    def test_assignments_point_at_real_replicas(self, factory):
        catalog = catalog_from(
            [
                [(0, 0.0), (1, 0.0)],
                [(0, 160.0), (2, 16.0)],
                [(1, 320.0)],
            ]
        )
        requests = [factory.create(block_id=block, arrival_s=0.0) for block in range(3)]
        state = compute(catalog, requests, tape_count=3)
        for request in requests:
            replica = state.assignment[request.request_id]
            assert replica in catalog.replicas_of(request.block_id)

    def test_assigned_replicas_lie_inside_envelope(self, factory):
        catalog = catalog_from(
            [
                [(0, 0.0), (1, 480.0)],
                [(0, 160.0)],
                [(1, 320.0), (2, 0.0)],
                [(2, 640.0)],
            ]
        )
        requests = [factory.create(block_id=block, arrival_s=0.0) for block in range(4)]
        state = compute(catalog, requests, tape_count=3)
        for replica in state.assignment.values():
            assert replica.position_mb + BLOCK <= state.envelope[replica.tape_id] + 1e-9

    def test_mounted_head_position_extends_envelope(self, factory):
        catalog = catalog_from([[(0, 0.0)]])
        requests = [factory.create(block_id=0, arrival_s=0.0)]
        state = compute(catalog, requests, tape_count=2, mounted=1, head=500.0)
        assert state.envelope[1] == 500.0

    def test_all_replicated_requests_pick_cheap_tape(self, factory):
        """With everything replicated, initial envelopes are 0; the greedy
        extension should cluster requests on one tape instead of touching
        all of them."""
        catalog = catalog_from(
            [
                [(0, 0.0), (1, 0.0)],
                [(0, 16.0), (1, 3000.0)],
                [(0, 32.0), (1, 6000.0)],
            ]
        )
        requests = [factory.create(block_id=block, arrival_s=0.0) for block in range(3)]
        state = compute(catalog, requests, tape_count=2)
        tapes_used = {replica.tape_id for replica in state.assignment.values()}
        assert tapes_used == {0}
        assert state.envelope[1] == 0.0

    def test_shrink_moves_edge_request_to_extended_tape(self, factory):
        """A replicated block at the outer edge of tape 0's envelope also
        sits inside the region that a forced extension of tape 1 encloses;
        the shrink step must move it and pull tape 0's envelope back."""
        catalog = catalog_from(
            [
                # Block 0: non-replicated far block pinning tape 1's envelope.
                [(1, 480.0)],
                # Block 1: replicated; on tape 0 at 320 (the edge), on
                # tape 1 at 160 (inside the pinned envelope of tape 1).
                [(0, 320.0), (1, 160.0)],
            ]
        )
        requests = [factory.create(block_id=block, arrival_s=0.0) for block in range(2)]
        state = compute(catalog, requests, tape_count=2)
        # Both requests should be satisfied by tape 1 alone: block 1's
        # replica at 160 is inside the envelope pinned by block 0.
        assert state.assignment[requests[1].request_id].tape_id == 1
        assert state.envelope[0] == 0.0

    def test_empty_request_list(self):
        catalog = catalog_from([[(0, 0.0)]])
        state = compute(catalog, [], tape_count=2)
        assert state.assignment == {}
        assert state.envelope == {0: 0.0, 1: 0.0}


class TestEnvelopeScheduler:
    def test_major_extracts_only_chosen_tape_requests(self, factory):
        catalog = catalog_from(
            [
                [(0, 0.0)],
                [(0, 16.0)],
                [(1, 0.0)],
            ]
        )
        context = make_context(catalog, tape_count=2)
        for block in range(3):
            context.pending.append(factory.create(block_id=block, arrival_s=0.0))
        scheduler = EnvelopeScheduler(MaxRequests())
        decision = scheduler.major_reschedule(context)
        assert decision.tape_id == 0
        assert sorted(entry.block_id for entry in decision.entries) == [0, 1]
        assert len(context.pending) == 1

    def test_empty_pending_returns_none(self, factory):
        catalog = catalog_from([[(0, 0.0)]])
        context = make_context(catalog, tape_count=2)
        assert EnvelopeScheduler(MaxBandwidth()).major_reschedule(context) is None

    def test_incremental_inserts_within_envelope(self, factory):
        catalog = catalog_from(
            [
                [(0, 0.0)],
                [(0, 320.0)],   # pins tape 0 envelope to 336
                [(0, 160.0)],   # arrives during the sweep, inside envelope
            ]
        )
        context = make_context(catalog, tape_count=2, mounted=0)
        scheduler = EnvelopeScheduler(MaxBandwidth())
        context.pending.append(factory.create(block_id=0, arrival_s=0.0))
        context.pending.append(factory.create(block_id=1, arrival_s=0.0))
        decision = scheduler.major_reschedule(context)
        context.service = ServiceList(decision.entries, head_mb=0.0)
        late = factory.create(block_id=2, arrival_s=5.0)
        assert scheduler.on_arrival(context, late)
        assert 160.0 in context.service.remaining_positions()

    def test_incremental_defers_outside_envelope_on_other_tape(self, factory):
        catalog = catalog_from(
            [
                [(0, 0.0)],
                [(1, 6000.0)],  # only copy far on another tape
            ]
        )
        context = make_context(catalog, tape_count=2, mounted=0)
        scheduler = EnvelopeScheduler(MaxBandwidth())
        context.pending.append(factory.create(block_id=0, arrival_s=0.0))
        decision = scheduler.major_reschedule(context)
        context.service = ServiceList(decision.entries, head_mb=0.0)
        late = factory.create(block_id=1, arrival_s=5.0)
        assert not scheduler.on_arrival(context, late)
        assert late in context.pending

    def test_incremental_extension_on_mounted_tape(self, factory):
        """A new request just beyond the mounted tape's envelope, whose
        alternative replica is a long haul elsewhere, should extend the
        mounted envelope and join the sweep."""
        catalog = catalog_from(
            [
                [(0, 0.0)],
                [(0, 32.0), (1, 6500.0)],
            ]
        )
        context = make_context(catalog, tape_count=2, mounted=0)
        scheduler = EnvelopeScheduler(MaxBandwidth())
        context.pending.append(factory.create(block_id=0, arrival_s=0.0))
        decision = scheduler.major_reschedule(context)
        context.service = ServiceList(decision.entries, head_mb=0.0)
        late = factory.create(block_id=1, arrival_s=1.0)
        assert scheduler.on_arrival(context, late)
        assert 32.0 in context.service.remaining_positions()
        assert scheduler._active_envelope[0] == pytest.approx(48.0)

    def test_sweep_complete_clears_envelope(self, factory):
        catalog = catalog_from([[(0, 0.0)]])
        context = make_context(catalog, tape_count=2)
        scheduler = EnvelopeScheduler(MaxBandwidth())
        context.pending.append(factory.create(block_id=0, arrival_s=0.0))
        scheduler.major_reschedule(context)
        assert scheduler._active_envelope
        scheduler.on_sweep_complete(context)
        assert not scheduler._active_envelope

    def test_name_includes_policy(self):
        assert EnvelopeScheduler(MaxBandwidth()).name == "envelope-max-bandwidth"
