"""Unit tests for FIFO, static, and dynamic scheduler families."""

import pytest

from repro.core import (
    DynamicScheduler,
    FifoScheduler,
    MaxBandwidth,
    MaxRequests,
    ServiceList,
    StaticScheduler,
)

from .conftest import catalog_from, make_context


@pytest.fixture
def catalog():
    """Tape 0: blocks 0,1,2 at 0/16/32.  Tape 1: blocks 3,4 at 0/16.
    Block 5 replicated on tape 0 (at 6000) and tape 2 (at 0)."""
    return catalog_from(
        [
            [(0, 0.0)],
            [(0, 16.0)],
            [(0, 32.0)],
            [(1, 0.0)],
            [(1, 16.0)],
            [(0, 6000.0), (2, 0.0)],
        ]
    )


class TestFifo:
    def test_services_one_request_in_arrival_order(self, catalog, factory):
        context = make_context(catalog, tape_count=3)
        late = factory.create(block_id=3, arrival_s=0.0)
        early = factory.create(block_id=0, arrival_s=0.0)
        context.pending.append(late)
        context.pending.append(early)
        decision = FifoScheduler().major_reschedule(context)
        assert decision.tape_id == 1
        assert [entry.block_id for entry in decision.entries] == [3]
        assert len(context.pending) == 1  # the other request stays

    def test_prefers_mounted_replica(self, catalog, factory):
        context = make_context(catalog, tape_count=3, mounted=2)
        request = factory.create(block_id=5, arrival_s=0.0)
        context.pending.append(request)
        decision = FifoScheduler().major_reschedule(context)
        assert decision.tape_id == 2

    def test_empty_pending_returns_none(self, catalog):
        context = make_context(catalog, tape_count=3)
        assert FifoScheduler().major_reschedule(context) is None

    def test_arrivals_always_deferred(self, catalog, factory):
        context = make_context(catalog, tape_count=3)
        scheduler = FifoScheduler()
        request = factory.create(block_id=0, arrival_s=0.0)
        assert not scheduler.on_arrival(context, request)
        assert request in context.pending


class TestStatic:
    def test_extracts_all_requests_for_chosen_tape(self, catalog, factory):
        context = make_context(catalog, tape_count=3)
        for block_id in (0, 1, 2, 3):
            context.pending.append(factory.create(block_id=block_id, arrival_s=0.0))
        scheduler = StaticScheduler(MaxRequests())
        decision = scheduler.major_reschedule(context)
        assert decision.tape_id == 0
        assert sorted(entry.block_id for entry in decision.entries) == [0, 1, 2]
        assert len(context.pending) == 1

    def test_coalesces_duplicate_blocks(self, catalog, factory):
        context = make_context(catalog, tape_count=3)
        first = factory.create(block_id=0, arrival_s=0.0)
        second = factory.create(block_id=0, arrival_s=1.0)
        context.pending.append(first)
        context.pending.append(second)
        decision = StaticScheduler(MaxRequests()).major_reschedule(context)
        assert len(decision.entries) == 1
        assert len(decision.entries[0].requests) == 2
        assert decision.request_count == 2

    def test_static_defers_arrivals_even_for_current_tape(self, catalog, factory):
        context = make_context(catalog, tape_count=3, mounted=0)
        scheduler = StaticScheduler(MaxBandwidth())
        context.service = ServiceList([], head_mb=0.0)
        request = factory.create(block_id=1, arrival_s=5.0)
        assert not scheduler.on_arrival(context, request)
        assert request in context.pending

    def test_name_includes_policy(self):
        assert StaticScheduler(MaxRequests()).name == "static-max-requests"


class TestDynamic:
    def make_sweep_context(self, catalog, entries, head=0.0):
        context = make_context(catalog, tape_count=3, mounted=0)
        context.service = ServiceList(entries, head_mb=head)
        return context

    def test_inserts_arrival_for_mounted_tape(self, catalog, factory):
        from repro.core import ServiceEntry

        base_entry = ServiceEntry(position_mb=32.0, block_id=2, requests=[])
        context = self.make_sweep_context(catalog, [base_entry])
        scheduler = DynamicScheduler(MaxBandwidth())
        request = factory.create(block_id=1, arrival_s=0.0)  # tape 0 @16
        assert scheduler.on_arrival(context, request)
        assert context.service.remaining_positions() == [16.0, 32.0]
        assert len(context.pending) == 0

    def test_coalesces_onto_scheduled_block(self, catalog, factory):
        from repro.core import ServiceEntry

        original = factory.create(block_id=2, arrival_s=0.0)
        base_entry = ServiceEntry(position_mb=32.0, block_id=2, requests=[original])
        context = self.make_sweep_context(catalog, [base_entry])
        scheduler = DynamicScheduler(MaxBandwidth())
        duplicate = factory.create(block_id=2, arrival_s=1.0)
        assert scheduler.on_arrival(context, duplicate)
        assert len(base_entry.requests) == 2

    def test_defers_arrival_for_other_tape(self, catalog, factory):
        context = self.make_sweep_context(catalog, [])
        scheduler = DynamicScheduler(MaxBandwidth())
        request = factory.create(block_id=3, arrival_s=0.0)  # tape 1 only
        assert not scheduler.on_arrival(context, request)
        assert request in context.pending

    def test_defers_arrival_behind_head(self, catalog, factory):
        from repro.core import ServiceEntry

        entries = [ServiceEntry(position_mb=32.0, block_id=2, requests=[])]
        context = self.make_sweep_context(catalog, entries)
        context.service.pop_next()  # head driving to 32
        scheduler = DynamicScheduler(MaxBandwidth())
        request = factory.create(block_id=0, arrival_s=0.0)  # tape 0 @0
        # Position 0 >= start head 0 but the forward sweep passed it.
        assert not scheduler.on_arrival(context, request)
        assert request in context.pending

    def test_defers_when_no_sweep_active(self, catalog, factory):
        context = make_context(catalog, tape_count=3, mounted=0)
        scheduler = DynamicScheduler(MaxBandwidth())
        request = factory.create(block_id=0, arrival_s=0.0)
        assert not scheduler.on_arrival(context, request)

    def test_name_includes_policy(self):
        assert DynamicScheduler(MaxBandwidth()).name == "dynamic-max-bandwidth"


class TestRegistry:
    def test_all_families_present(self):
        from repro.core import make_scheduler, scheduler_names

        names = scheduler_names()
        assert "fifo" in names
        assert sum(name.startswith("static-") for name in names) == 5
        assert sum(name.startswith("dynamic-") for name in names) == 5
        assert sum(name.startswith("envelope-") for name in names) == 3
        assert "exact-batch" in names
        assert sum(name.startswith("approx-") for name in names) == 2
        assert len(names) == 17

    def test_unknown_name_raises(self):
        from repro.core import make_scheduler

        with pytest.raises(KeyError, match="unknown scheduler"):
            make_scheduler("nonsense")

    def test_instances_are_fresh(self):
        from repro.core import make_scheduler

        first = make_scheduler("dynamic-max-bandwidth")
        second = make_scheduler("dynamic-max-bandwidth")
        assert first is not second
        assert first.name == second.name == "dynamic-max-bandwidth"
