"""A small discrete-event simulation kernel (substrate).

The paper's evaluation rests on a discrete-event simulator.  This package
provides the kernel: an :class:`Environment` with a deterministic event
heap, generator-coroutine :class:`Process` objects, composable events, a
blocking :class:`Store`, and time-series :class:`Monitor` probes.
"""

from .environment import EmptySchedule, Environment
from .events import (
    AllOf,
    AnyOf,
    Event,
    EventAlreadyTriggered,
    Interrupt,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
    Timeout,
)
from .monitor import Monitor, UtilizationTimeline
from .process import Process
from .queues import Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "EmptySchedule",
    "Environment",
    "Event",
    "EventAlreadyTriggered",
    "Interrupt",
    "Monitor",
    "PRIORITY_NORMAL",
    "PRIORITY_URGENT",
    "Process",
    "Resource",
    "Store",
    "Timeout",
    "UtilizationTimeline",
]
