"""The simulation environment: clock and event scheduler.

The environment keeps a binary heap of ``(time, priority, sequence, event)``
tuples.  ``sequence`` is a monotonically increasing tie-breaker, so events
scheduled for the same instant at the same priority run in FIFO order,
which makes simulations fully deterministic.

Hot-path notes: :meth:`Environment.run` inlines the pop/dispatch loop
instead of calling :meth:`step` per event — locals for the heap and
``heappop``, and an ``if callbacks:`` guard that skips iteration
entirely for plain timeouts nobody registered a callback on.  The
observable behaviour (clock advance, callback order) is identical to
the ``step()`` path, which remains the single-event API.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Generator, List, Optional, Tuple

from .events import AllOf, AnyOf, Event, Timeout
from .process import Process

#: Sentinel passed to :meth:`Environment.run` to run until the heap drains.
UNTIL_EXHAUSTED = None


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class Environment:
    """A discrete-event simulation environment.

    Typical use::

        env = Environment()

        def worker(env):
            yield env.timeout(5.0)
            return "done"

        proc = env.process(worker(env))
        env.run()
        assert env.now == 5.0
    """

    __slots__ = ("_now", "_heap", "_sequence", "_active_process")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._sequence = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        """Start a new process executing ``generator``."""
        return Process(self, generator)

    def any_of(self, events: List[Event]) -> AnyOf:
        """Event that fires as soon as any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: List[Event]) -> AllOf:
        """Event that fires once all of ``events`` have fired."""
        return AllOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling core
    # ------------------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        """Put ``event`` on the heap ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule event in the past (delay={delay!r})")
        event.triggered = True
        self._sequence += 1
        heappush(self._heap, (self._now + delay, priority, self._sequence, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``float('inf')`` if none."""
        if not self._heap:
            return float("inf")
        return self._heap[0][0]

    def step(self) -> None:
        """Process the single next event, advancing the clock to it."""
        if not self._heap:
            raise EmptySchedule()
        when, _priority, _seq, event = heappop(self._heap)
        if when < self._now:  # pragma: no cover - guarded by schedule()
            raise RuntimeError("event scheduled in the past")
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)

    def run(self, until: Optional[float] = UNTIL_EXHAUSTED) -> Any:
        """Run the simulation.

        With ``until=None`` run until no events remain.  With a numeric
        ``until``, run until the clock reaches that time (events scheduled
        exactly at ``until`` are *not* executed; the clock is left at
        ``until``).
        """
        heap = self._heap
        pop = heappop
        if until is None:
            while heap:
                when, _priority, _seq, event = pop(heap)
                self._now = when
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks:
                    for callback in callbacks:
                        callback(event)
            return None
        limit = float(until)
        if limit < self._now:
            raise ValueError(f"until={limit!r} is in the past (now={self._now!r})")
        while heap and heap[0][0] < limit:
            when, _priority, _seq, event = pop(heap)
            self._now = when
            callbacks = event.callbacks
            event.callbacks = None
            if callbacks:
                for callback in callbacks:
                    callback(event)
        self._now = limit
        return None

    def run_until_event(self, event: Event) -> Any:
        """Run until ``event`` has been processed; return its value.

        Raises the event's exception if it failed.
        """
        while not event.processed:
            if not self._heap:
                raise EmptySchedule(f"event heap drained before {event!r} fired")
            self.step()
        if not event.ok:
            raise event.value
        return event.value
