"""Blocking FIFO store for inter-process communication.

Used by the service model to hand arriving requests to the drive process:
``put`` never blocks, ``get`` returns an event that fires once an item is
available (immediately if the store is non-empty).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, List

from .events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .environment import Environment


class Resource:
    """A counting semaphore for mutually exclusive hardware (e.g. the
    robot arm shared by the drives of a multi-drive jukebox).

    ``acquire`` returns an event that fires when a slot is granted;
    ``release`` hands the slot to the oldest waiter, if any.
    """

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return self._in_use

    @property
    def waiting(self) -> int:
        """Number of blocked acquirers."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """Return an event firing once a slot is held by the caller."""
        event = Event(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Give up one held slot."""
        if self._in_use <= 0:
            raise RuntimeError("release without a matching acquire")
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed()  # slot transfers directly to the waiter
        else:
            self._in_use -= 1


class Store:
    """An unbounded FIFO store of items with blocking ``get``."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> List[Any]:
        """Snapshot of queued items (oldest first)."""
        return list(self._items)

    def put(self, item: Any) -> None:
        """Add ``item``; wakes the oldest blocked getter, if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next available item."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event
