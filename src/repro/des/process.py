"""Generator-coroutine processes for the simulation kernel.

A process wraps a generator that yields :class:`~repro.des.events.Event`
objects.  Each yield suspends the process until the yielded event fires;
the event's value is sent back into the generator (or its exception thrown
in).  When the generator returns, the process event itself succeeds with
the return value, so processes can wait on one another.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from .events import Event, Interrupt, PRIORITY_URGENT

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .environment import Environment


class Process(Event):
    """A running process; also an event that fires when the process ends."""

    def __init__(self, env: "Environment", generator: Generator[Event, Any, Any]) -> None:
        super().__init__(env)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"process body must be a generator, got {generator!r}")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Kick the process off at the current instant, before pending
        # same-time timeouts, so initialization happens "now".
        bootstrap = Event(env)
        bootstrap._ok = True
        bootstrap._value = None
        self._waiting_on = bootstrap
        bootstrap.add_callback(self._resume)
        env.schedule(bootstrap, delay=0.0, priority=PRIORITY_URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        The event the process was waiting on is abandoned (its value is
        discarded when it eventually fires).
        """
        if not self.is_alive:
            raise RuntimeError("cannot interrupt a finished process")
        if self.env.active_process is self:
            raise RuntimeError("a process cannot interrupt itself")
        wakeup = Event(self.env)
        wakeup._ok = False
        wakeup._value = Interrupt(cause)
        wakeup._interrupt = True  # marker checked in _resume
        wakeup.add_callback(self._resume)
        self.env.schedule(wakeup, delay=0.0, priority=PRIORITY_URGENT)

    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the fired event's outcome."""
        if self.triggered:
            return  # process already finished (e.g. interrupt raced the end)
        is_interrupt = getattr(event, "_interrupt", False)
        if not is_interrupt:
            if event is not self._waiting_on:
                return  # stale wakeup from an abandoned event
        self._waiting_on = None

        env = self.env
        previous_active = env._active_process
        env._active_process = self
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            env._active_process = previous_active
            self.succeed(stop.value, priority=PRIORITY_URGENT)
            return
        except BaseException as exc:
            env._active_process = previous_active
            if not self.callbacks:
                # Nobody is waiting on this process: propagate the crash out
                # of Environment.run() instead of swallowing it silently.
                raise
            self.fail(exc, priority=PRIORITY_URGENT)
            return
        env._active_process = previous_active

        if not isinstance(target, Event):
            raise TypeError(
                f"process yielded {target!r}; processes must yield Event instances"
            )
        self._waiting_on = target
        target.add_callback(self._resume)
