"""Generator-coroutine processes for the simulation kernel.

A process wraps a generator that yields :class:`~repro.des.events.Event`
objects.  Each yield suspends the process until the yielded event fires;
the event's value is sent back into the generator (or its exception thrown
in).  When the generator returns, the process event itself succeeds with
the return value, so processes can wait on one another.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Generator, Optional

from .events import Event, Interrupt, PRIORITY_NORMAL, PRIORITY_URGENT

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .environment import Environment


class Process(Event):
    """A running process; also an event that fires when the process ends.

    Besides events, the generator may yield a bare ``float``/``int``
    delay — shorthand for ``env.timeout(delay)`` with no observable
    difference in scheduling order.  The kernel services it without
    allocating a Timeout: a single reusable wakeup event per process is
    rescheduled instead (the hot-loop allocation win behind the
    ``yield delay`` idiom in the simulators).
    """

    __slots__ = ("_generator", "_waiting_on", "_wakeup", "_wakeup_callbacks")

    def __init__(self, env: "Environment", generator: Generator[Event, Any, Any]) -> None:
        super().__init__(env)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"process body must be a generator, got {generator!r}")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self._wakeup: Optional[Event] = None
        self._wakeup_callbacks = [self._resume]
        # Kick the process off at the current instant, before pending
        # same-time timeouts, so initialization happens "now".
        bootstrap = Event(env)
        bootstrap._ok = True
        bootstrap._value = None
        self._waiting_on = bootstrap
        bootstrap.callbacks.append(self._resume)
        bootstrap.triggered = True
        env._sequence = sequence = env._sequence + 1
        heappush(env._heap, (env._now, PRIORITY_URGENT, sequence, bootstrap))

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        The event the process was waiting on is abandoned (its value is
        discarded when it eventually fires).
        """
        if not self.is_alive:
            raise RuntimeError("cannot interrupt a finished process")
        if self.env.active_process is self:
            raise RuntimeError("a process cannot interrupt itself")
        if self._waiting_on is not None and self._waiting_on is self._wakeup:
            # The abandoned reusable wakeup is still on the heap; drop it
            # so the next float yield allocates a fresh one instead of
            # double-scheduling the same object (the stale heap entry
            # no-ops through the `is not self._waiting_on` guard below).
            self._wakeup = None
        wakeup = Event(self.env)
        wakeup._ok = False
        wakeup._value = Interrupt(cause)
        wakeup._interrupt = True  # marker checked in _resume
        wakeup.add_callback(self._resume)
        self.env.schedule(wakeup, delay=0.0, priority=PRIORITY_URGENT)

    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the fired event's outcome."""
        if self.triggered:
            return  # process already finished (e.g. interrupt raced the end)
        if not event._interrupt:
            if event is not self._waiting_on:
                return  # stale wakeup from an abandoned event
        self._waiting_on = None

        env = self.env
        previous_active = env._active_process
        env._active_process = self
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            env._active_process = previous_active
            self.succeed(stop.value, priority=PRIORITY_URGENT)
            return
        except BaseException as exc:
            env._active_process = previous_active
            if not self.callbacks:
                # Nobody is waiting on this process: propagate the crash out
                # of Environment.run() instead of swallowing it silently.
                raise
            self.fail(exc, priority=PRIORITY_URGENT)
            return
        env._active_process = previous_active

        kind = type(target)
        if kind is float or kind is int:
            # Bare delay: reschedule the reusable wakeup in place of a
            # fresh Timeout.  Ordering is identical — one sequence number
            # is consumed at the same point a Timeout would consume it.
            if target < 0:
                raise ValueError(f"negative timeout delay {target!r}")
            wakeup = self._wakeup
            if wakeup is None:
                self._wakeup = wakeup = Event(env)
                wakeup._ok = True
                wakeup._value = None
                wakeup.triggered = True
            wakeup.callbacks = self._wakeup_callbacks
            self._waiting_on = wakeup
            env._sequence = sequence = env._sequence + 1
            heappush(env._heap, (env._now + target, PRIORITY_NORMAL, sequence, wakeup))
            return
        if not isinstance(target, Event):
            raise TypeError(
                f"process yielded {target!r}; processes must yield Event "
                f"instances or bare float delays"
            )
        self._waiting_on = target
        target.add_callback(self._resume)
