"""Time-series probes for recording values during a simulation."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .environment import Environment


class Monitor:
    """Records ``(time, value)`` samples; cheap append-only."""

    def __init__(self, env: "Environment", name: str = "") -> None:
        self.env = env
        self.name = name
        self.samples: List[Tuple[float, float]] = []

    def record(self, value: float) -> None:
        """Append ``(env.now, value)``."""
        self.samples.append((self.env.now, float(value)))

    def __len__(self) -> int:
        return len(self.samples)

    def values(self) -> List[float]:
        """All recorded values, in time order."""
        return [value for _time, value in self.samples]

    def times(self) -> List[float]:
        """All sample timestamps, in order."""
        return [time for time, _value in self.samples]

    def mean(self) -> float:
        """Arithmetic mean of recorded values (0.0 if empty)."""
        if not self.samples:
            return 0.0
        return sum(value for _t, value in self.samples) / len(self.samples)


class UtilizationTimeline:
    """Per-track busy intervals with windowed utilization queries.

    A *track* is any integer lane of activity — a drive index, a robot
    arm — and each interval carries a ``kind`` label ("read", "switch",
    ...).  Intervals are recorded in start order by the simulation's
    single-threaded event loop, so queries are simple scans.  This is
    the substrate the observability layer's per-component utilization
    reports are computed from.
    """

    def __init__(self) -> None:
        #: track -> list of (start_s, end_s, kind), in start order.
        self.intervals: Dict[int, List[Tuple[float, float, str]]] = {}

    def record(self, track: int, start_s: float, end_s: float, kind: str) -> None:
        """Append one busy interval to ``track``."""
        if end_s < start_s:
            raise ValueError(f"interval ends before it starts: {start_s}..{end_s}")
        self.intervals.setdefault(track, []).append((start_s, end_s, kind))

    def tracks(self) -> List[int]:
        """All tracks with at least one interval, sorted."""
        return sorted(self.intervals)

    def busy_seconds(self, track: int, kind: str = None) -> float:
        """Total busy time on ``track`` (optionally one ``kind`` only)."""
        return sum(
            end - start
            for start, end, interval_kind in self.intervals.get(track, [])
            if kind is None or interval_kind == kind
        )

    def busy_by_kind(self, track: int) -> Dict[str, float]:
        """Busy seconds on ``track`` broken down by kind."""
        breakdown: Dict[str, float] = {}
        for start, end, kind in self.intervals.get(track, []):
            breakdown[kind] = breakdown.get(kind, 0.0) + (end - start)
        return breakdown

    def utilization(self, track: int, window_start_s: float, window_end_s: float) -> float:
        """Fraction of ``[window_start, window_end]`` the track was busy.

        Intervals are clipped to the window; returns 0.0 for an empty
        or inverted window.
        """
        window = window_end_s - window_start_s
        if window <= 0:
            return 0.0
        busy = 0.0
        for start, end, _kind in self.intervals.get(track, []):
            busy += max(0.0, min(end, window_end_s) - max(start, window_start_s))
        return busy / window
