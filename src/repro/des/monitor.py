"""Time-series probes for recording values during a simulation."""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .environment import Environment


class Monitor:
    """Records ``(time, value)`` samples; cheap append-only."""

    def __init__(self, env: "Environment", name: str = "") -> None:
        self.env = env
        self.name = name
        self.samples: List[Tuple[float, float]] = []

    def record(self, value: float) -> None:
        """Append ``(env.now, value)``."""
        self.samples.append((self.env.now, float(value)))

    def __len__(self) -> int:
        return len(self.samples)

    def values(self) -> List[float]:
        """All recorded values, in time order."""
        return [value for _time, value in self.samples]

    def times(self) -> List[float]:
        """All sample timestamps, in order."""
        return [time for time, _value in self.samples]

    def mean(self) -> float:
        """Arithmetic mean of recorded values (0.0 if empty)."""
        if not self.samples:
            return 0.0
        return sum(value for _t, value in self.samples) / len(self.samples)
