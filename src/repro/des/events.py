"""Core event primitives for the discrete-event simulation kernel.

The kernel follows the classic event-list design: an :class:`Event` is a
one-shot occurrence with a value, callbacks run when the event fires, and
:class:`~repro.des.environment.Environment` owns the clock and the pending
event heap.  Processes (see :mod:`repro.des.process`) are generator
coroutines that suspend by yielding events.

Hot-path notes: every class here carries ``__slots__`` (events are the
single most-allocated object in a simulation), and the trigger paths
(:meth:`Event.succeed`, :meth:`Event.fail`, :class:`Timeout` creation)
push onto the environment's heap directly instead of going through
:meth:`Environment.schedule`, saving a method call and a bounds check
per event.  The scheduling order — ``(time, priority, sequence)`` with a
monotonic sequence — is byte-identical to the out-of-line path.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .environment import Environment

#: Scheduling priority for events that must run before same-time timeouts.
PRIORITY_URGENT = 0
#: Default scheduling priority.
PRIORITY_NORMAL = 1

#: Sentinel stored in ``Event._value`` while the event has no value yet.
_PENDING = object()


class EventAlreadyTriggered(RuntimeError):
    """Raised when succeeding or failing an event that already fired."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The interrupt ``cause`` is available as ``exc.cause``.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *untriggered*.  Calling :meth:`succeed` or :meth:`fail`
    triggers it, which schedules it on the environment's event heap; when
    the environment processes it, all registered callbacks run with the
    event as their single argument.
    """

    #: ``_interrupt`` marks interrupt wakeups for Process._resume; a real
    #: slot (always False except on wakeup events) so the resume path
    #: reads it without a getattr fallback.
    __slots__ = ("env", "callbacks", "_value", "_ok", "triggered", "_interrupt")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: True once the event has been handed to the scheduler.
        self.triggered = False
        self._interrupt = False

    @property
    def processed(self) -> bool:
        """True once the environment has run this event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise RuntimeError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance for failed events)."""
        if self._value is _PENDING:
            raise RuntimeError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.triggered = True
        env = self.env
        env._sequence = sequence = env._sequence + 1
        heappush(env._heap, (env._now, priority, sequence, self))
        return self

    def fail(self, exception: BaseException, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event with a failure carrying ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self.triggered:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.triggered = True
        env = self.env
        env._sequence = sequence = env._sequence + 1
        heappush(env._heap, (env._now, priority, sequence, self))
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when the event is processed.

        If the event was already processed the callback runs immediately;
        this keeps "wait on a possibly-past event" race-free for callers.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.env.now:g}>"


class Timeout(Event):
    """An event that fires automatically ``delay`` time units from now."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        # Inlined Event.__init__ + Environment.schedule: timeouts are the
        # bulk of all events, so skip both calls and push pre-triggered.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self.triggered = True
        self._interrupt = False
        self.delay = delay
        env._sequence = sequence = env._sequence + 1
        heappush(env._heap, (env._now + delay, PRIORITY_NORMAL, sequence, self))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Timeout delay={self.delay:g} at t={self.env.now:g}>"


class AnyOf(Event):
    """Fires when any of the given events fires (value: the first event)."""

    __slots__ = ("_events",)

    def __init__(self, env: "Environment", events: List[Event]) -> None:
        super().__init__(env)
        if not events:
            raise ValueError("AnyOf requires at least one event")
        self._events = list(events)
        for event in self._events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event.ok:
            self.succeed(event)
        else:
            self.fail(event.value)


class AllOf(Event):
    """Fires when all of the given events fire (value: list of values)."""

    __slots__ = ("_events", "_remaining")

    def __init__(self, env: "Environment", events: List[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._remaining = len(self._events)
        if self._remaining == 0:
            self.succeed([])
            return
        for event in self._events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([child.value for child in self._events])
