"""Machine-readable exports of figure data: CSV and Markdown.

The text renderer targets terminals; these exporters feed spreadsheets
and docs.  Both accept the same :class:`~repro.experiments.figures.FigureData`
objects (series of :class:`~repro.experiments.sweeps.CurvePoint` or of
``(x, y)`` pairs).
"""

from __future__ import annotations

import io
from typing import List, Sequence, Tuple

_CURVE_FIELDS = (
    ("intensity", "queue"),
    ("throughput_kb_s", "kb_per_s"),
    ("requests_per_min", "req_per_min"),
    ("mean_response_s", "delay_s"),
    ("tape_switches_per_hour", "switches_per_h"),
)


def _series_rows(points) -> Tuple[List[str], List[List[str]]]:
    """Normalize a series into (column names, rows of strings)."""
    if points and hasattr(points[0], "throughput_kb_s"):
        header = [name for _attr, name in _CURVE_FIELDS]
        rows = [
            [repr(getattr(point, attr)) for attr, _name in _CURVE_FIELDS]
            for point in points
        ]
        return header, rows
    header = ["x", "y"]
    rows = [[repr(x), repr(y)] for x, y in points]
    return header, rows


def figure_to_csv(figure_data) -> str:
    """Flatten a figure to CSV with a leading ``series`` column."""
    buffer = io.StringIO()
    wrote_header = False
    for label, points in figure_data.series.items():
        header, rows = _series_rows(points)
        if not wrote_header:
            buffer.write(",".join(["series"] + header) + "\n")
            wrote_header = True
        for row in rows:
            buffer.write(",".join([label] + row) + "\n")
    return buffer.getvalue()


def figure_to_markdown(figure_data) -> str:
    """Render a figure as Markdown tables, one per series."""
    lines = [
        f"### Figure {figure_data.figure}: {figure_data.title}",
        "",
        f"*{figure_data.annotation}*",
        "",
    ]
    for label, points in figure_data.series.items():
        header, rows = _series_rows(points)
        lines.append(f"**{label}**")
        lines.append("")
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "|".join("---" for _column in header) + "|")
        for row in rows:
            lines.append("| " + " | ".join(row) + " |")
        lines.append("")
    return "\n".join(lines)


def curve_to_csv(label: str, points) -> str:
    """One series to CSV (no ``series`` column)."""
    header, rows = _series_rows(points)
    out = [",".join(header)]
    out.extend(",".join(row) for row in rows)
    return "\n".join(out) + "\n"


_SLO_FIELDS = (
    ("completed", "completed"),
    ("p50_response_s", "p50_s"),
    ("p95_response_s", "p95_s"),
    ("p99_response_s", "p99_s"),
    ("max_response_s", "max_s"),
    ("shed_requests", "shed"),
    ("expired_requests", "expired"),
    ("deadline_misses", "deadline_misses"),
    ("deadline_miss_rate", "miss_rate"),
    ("forced_promotions", "forced_promotions"),
    ("breaker_trips", "breaker_trips"),
    ("saturated", "saturated"),
)


def slo_to_csv(results) -> str:
    """Flatten SLO accounting to CSV, one row per experiment result.

    ``results`` is an iterable of
    :class:`~repro.experiments.runner.ExperimentResult`; each row leads
    with the config's compact annotation (``config.describe()``).
    """
    lines = [",".join(["config"] + [name for _attr, name in _SLO_FIELDS])]
    for result in results:
        row = [f'"{result.config.describe()}"']
        row.extend(
            repr(getattr(result.report, attr)) for attr, _name in _SLO_FIELDS
        )
        lines.append(",".join(row))
    return "\n".join(lines) + "\n"
