"""ASCII scatter plots for parametric curves.

The paper's key graphs are throughput-vs-delay parametric curves.  This
renderer draws labelled series on a character grid so figure shapes can
be eyeballed straight from the terminal — no plotting stack required.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

#: Characters assigned to series, in order.
_MARKERS = "ox+*#@%&$~"


def _scale(value: float, low: float, high: float, cells: int) -> int:
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    return min(cells - 1, max(0, int(position * (cells - 1) + 0.5)))


def ascii_scatter(
    series: Dict[str, List[Tuple[float, float]]],
    width: int = 64,
    height: int = 20,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Plot ``label -> [(x, y), ...]`` series on a character grid."""
    if width < 8 or height < 4:
        raise ValueError("plot must be at least 8x4 characters")
    points = [point for curve in series.values() for point in curve]
    if not points:
        return "(no data)"
    xs = [x for x, _y in points]
    ys = [y for _x, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)

    grid = [[" "] * width for _row in range(height)]
    for index, (label, curve) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in curve:
            column = _scale(x, x_low, x_high, width)
            row = height - 1 - _scale(y, y_low, y_high, height)
            grid[row][column] = marker

    lines = [f"{y_label} ({y_low:.3g} .. {y_high:.3g})"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} ({x_low:.3g} .. {x_high:.3g})")
    legend = "  ".join(
        f"{_MARKERS[index % len(_MARKERS)]}={label}"
        for index, label in enumerate(series)
    )
    lines.append(f" legend: {legend}")
    return "\n".join(lines)


def plot_throughput_delay(figure_data, width: int = 64, height: int = 20) -> str:
    """Render a figure's CurvePoint series as a throughput/delay plot."""
    series: Dict[str, List[Tuple[float, float]]] = {}
    for label, points in figure_data.series.items():
        if points and hasattr(points[0], "throughput_kb_s"):
            series[label] = [
                (point.throughput_kb_s, point.mean_response_s) for point in points
            ]
        else:
            series[label] = [(float(x), float(y)) for x, y in points]
    return ascii_scatter(
        series,
        width=width,
        height=height,
        x_label="throughput KB/s",
        y_label="mean delay s",
    )
