"""Terminal and machine-readable reporting helpers."""

from .export import curve_to_csv, figure_to_csv, figure_to_markdown
from .plot import ascii_scatter, plot_throughput_delay
from .text import (
    format_figure,
    format_gap_report,
    format_parametric_series,
    format_table,
)

__all__ = [
    "ascii_scatter",
    "curve_to_csv",
    "figure_to_csv",
    "figure_to_markdown",
    "format_figure",
    "format_gap_report",
    "format_parametric_series",
    "format_table",
    "plot_throughput_delay",
]
