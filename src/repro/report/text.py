"""Plain-text rendering of figure data: aligned tables for the terminal.

The benchmarks print these tables so the regenerated series can be read
directly next to the paper's figures.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.2f}",
) -> str:
    """Render ``rows`` under ``headers`` with right-aligned columns."""
    rendered: List[List[str]] = [[str(header) for header in headers]]
    for row in rows:
        rendered.append(
            [
                float_format.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(rendered_row[column]) for rendered_row in rendered)
        for column in range(len(headers))
    ]
    lines = []
    for index, rendered_row in enumerate(rendered):
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(rendered_row, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_parametric_series(label: str, points) -> str:
    """Render one parametric curve (CurvePoint list) as a table block."""
    rows = [
        (
            int(point.intensity),
            point.throughput_kb_s,
            point.requests_per_min,
            point.mean_response_s,
            point.tape_switches_per_hour,
        )
        for point in points
    ]
    table = format_table(
        ("queue", "KB/s", "req/min", "delay_s", "switch/h"),
        rows,
        float_format="{:.2f}",
    )
    return f"--- {label} ---\n{table}"


def format_slo_report(report) -> str:
    """Render one run's SLO accounting as an aligned two-column table.

    ``report`` is a :class:`~repro.service.metrics.MetricsReport`; the
    table covers the response-time percentiles plus the overload-control
    counters (all zero for runs without a QoS layer).
    """
    rows = [
        ("completed", report.completed),
        ("p50 response (s)", f"{report.p50_response_s:.1f}"),
        ("p95 response (s)", f"{report.p95_response_s:.1f}"),
        ("p99 response (s)", f"{report.p99_response_s:.1f}"),
        ("max response (s)", f"{report.max_response_s:.1f}"),
        ("shed requests", report.shed_requests),
        ("expired requests", report.expired_requests),
        ("deadline misses", report.deadline_misses),
        ("deadline miss rate", f"{report.deadline_miss_rate:.4f}"),
        ("forced promotions", report.forced_promotions),
        ("breaker trips", report.breaker_trips),
        ("saturated", report.saturated),
    ]
    for reason, count in sorted(report.shed_by_reason.items()):
        rows.append((f"shed[{reason}]", count))
    return format_table(("slo metric", "value"), rows)


def format_figure(figure_data) -> str:
    """Render a whole :class:`FigureData` for terminal output."""
    lines = [
        f"Figure {figure_data.figure}: {figure_data.title}",
        f"[{figure_data.annotation}]",
        "",
    ]
    for label, points in figure_data.series.items():
        if points and hasattr(points[0], "throughput_kb_s"):
            lines.append(format_parametric_series(label, points))
        else:
            rows = list(points)
            lines.append(
                f"--- {label} ---\n"
                + format_table(("x", "y"), rows, float_format="{:.4f}")
            )
        lines.append("")
    return "\n".join(lines)
