"""Plain-text rendering of figure data: aligned tables for the terminal.

The benchmarks print these tables so the regenerated series can be read
directly next to the paper's figures.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.2f}",
) -> str:
    """Render ``rows`` under ``headers`` with right-aligned columns."""
    rendered: List[List[str]] = [[str(header) for header in headers]]
    for row in rows:
        rendered.append(
            [
                float_format.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(rendered_row[column]) for rendered_row in rendered)
        for column in range(len(headers))
    ]
    lines = []
    for index, rendered_row in enumerate(rendered):
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(rendered_row, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_parametric_series(label: str, points) -> str:
    """Render one parametric curve (CurvePoint list) as a table block."""
    rows = [
        (
            int(point.intensity),
            point.throughput_kb_s,
            point.requests_per_min,
            point.mean_response_s,
            point.tape_switches_per_hour,
        )
        for point in points
    ]
    table = format_table(
        ("queue", "KB/s", "req/min", "delay_s", "switch/h"),
        rows,
        float_format="{:.2f}",
    )
    return f"--- {label} ---\n{table}"


def format_figure(figure_data) -> str:
    """Render a whole :class:`FigureData` for terminal output."""
    lines = [
        f"Figure {figure_data.figure}: {figure_data.title}",
        f"[{figure_data.annotation}]",
        "",
    ]
    for label, points in figure_data.series.items():
        if points and hasattr(points[0], "throughput_kb_s"):
            lines.append(format_parametric_series(label, points))
        else:
            rows = list(points)
            lines.append(
                f"--- {label} ---\n"
                + format_table(("x", "y"), rows, float_format="{:.4f}")
            )
        lines.append("")
    return "\n".join(lines)
