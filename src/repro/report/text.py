"""Plain-text rendering of figure data: aligned tables for the terminal.

The benchmarks print these tables so the regenerated series can be read
directly next to the paper's figures.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.2f}",
) -> str:
    """Render ``rows`` under ``headers`` with right-aligned columns."""
    rendered: List[List[str]] = [[str(header) for header in headers]]
    for row in rows:
        rendered.append(
            [
                float_format.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(rendered_row[column]) for rendered_row in rendered)
        for column in range(len(headers))
    ]
    lines = []
    for index, rendered_row in enumerate(rendered):
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(rendered_row, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_parametric_series(label: str, points) -> str:
    """Render one parametric curve (CurvePoint list) as a table block."""
    rows = [
        (
            int(point.intensity),
            point.throughput_kb_s,
            point.requests_per_min,
            point.mean_response_s,
            point.tape_switches_per_hour,
        )
        for point in points
    ]
    table = format_table(
        ("queue", "KB/s", "req/min", "delay_s", "switch/h"),
        rows,
        float_format="{:.2f}",
    )
    return f"--- {label} ---\n{table}"


def format_slo_report(report) -> str:
    """Render one run's SLO accounting as an aligned two-column table.

    ``report`` is a :class:`~repro.service.metrics.MetricsReport`; the
    table covers the response-time percentiles plus the overload-control
    counters (all zero for runs without a QoS layer).
    """
    rows = [
        ("completed", report.completed),
        ("p50 response (s)", f"{report.p50_response_s:.1f}"),
        ("p95 response (s)", f"{report.p95_response_s:.1f}"),
        ("p99 response (s)", f"{report.p99_response_s:.1f}"),
        ("max response (s)", f"{report.max_response_s:.1f}"),
        ("shed requests", report.shed_requests),
        ("expired requests", report.expired_requests),
        ("deadline misses", report.deadline_misses),
        ("deadline miss rate", f"{report.deadline_miss_rate:.4f}"),
        ("forced promotions", report.forced_promotions),
        ("breaker trips", report.breaker_trips),
        ("saturated", report.saturated),
    ]
    for reason, count in sorted(report.shed_by_reason.items()):
        rows.append((f"shed[{reason}]", count))
    return format_table(("slo metric", "value"), rows)


def format_gap_report(report) -> str:
    """Render a :class:`~repro.analysis.gap.GapReport` as a ratio table.

    One row per scenario: the exact baseline's mean response time, then
    each scheduler's gap ratio (its mean response over the baseline's).
    1.0000 is optimal; a dash marks a scheduler excluded from that
    scenario (envelope under multidrive).
    """
    headers = ["scenario", f"{report.baseline} (s)"] + list(report.schedulers)
    rows = []
    for row in report.rows:
        cells: list = [row.scenario.key, f"{row.baseline_mean_s:.1f}"]
        for scheduler in report.schedulers:
            cell = row.cell(scheduler)
            cells.append("-" if cell is None else f"{cell.ratio:.4f}")
        rows.append(cells)
    table = format_table(headers, rows)
    legend = "\n".join(
        f"  {row.scenario.key}: {row.scenario.description}" for row in report.rows
    )
    return (
        f"Optimality gap vs {report.baseline}"
        " (ratio = mean response / baseline mean response; 1.0 = optimal)\n"
        f"{table}\nscenarios:\n{legend}"
    )


def format_figure(figure_data) -> str:
    """Render a whole :class:`FigureData` for terminal output."""
    lines = [
        f"Figure {figure_data.figure}: {figure_data.title}",
        f"[{figure_data.annotation}]",
        "",
    ]
    for label, points in figure_data.series.items():
        if points and hasattr(points[0], "throughput_kb_s"):
            lines.append(format_parametric_series(label, points))
        else:
            rows = list(points)
            lines.append(
                f"--- {label} ---\n"
                + format_table(("x", "y"), rows, float_format="{:.4f}")
            )
        lines.append("")
    return "\n".join(lines)


def format_trace_summary(summary) -> str:
    """Render a :class:`~repro.obs.TraceSummary` for terminal output.

    Covers the per-phase time breakdown (with the reconciliation line
    showing the phase means summing back to the mean response time),
    outcome counts, the hottest tapes, per-drive busy breakdowns, and
    the scheduler-decision totals.
    """
    blocks = []

    phase_rows = [
        (phase, f"{seconds:.2f}")
        for phase, seconds in sorted(
            summary.phase_means.items(), key=lambda item: -item[1]
        )
    ]
    phase_rows.append(("= mean response", f"{summary.phase_mean_total():.2f}"))
    blocks.append("--- where the time went (mean s/completed request) ---")
    blocks.append(format_table(("phase", "seconds"), phase_rows))
    blocks.append(
        f"reconciliation: sum of phase means {summary.phase_mean_total():.3f} s"
        f" vs mean response {summary.mean_response_s:.3f} s"
        f" over {summary.completed} completed requests"
    )

    outcome_rows = [
        (outcome, count) for outcome, count in sorted(summary.outcomes.items())
    ]
    if summary.open_requests:
        outcome_rows.append(("(still open)", summary.open_requests))
    blocks.append("--- outcomes ---")
    blocks.append(format_table(("outcome", "requests"), outcome_rows))

    hottest = summary.hottest_tapes()
    if hottest:
        blocks.append("--- hottest tapes (delivering reads) ---")
        blocks.append(format_table(("tape", "reads"), hottest))

    if summary.drive_busy:
        kinds = sorted(
            {kind for kinds in summary.drive_busy.values() for kind in kinds}
        )
        rows = [
            (drive, *(f"{summary.drive_busy[drive].get(kind, 0.0):.0f}" for kind in kinds))
            for drive in sorted(summary.drive_busy)
        ]
        blocks.append("--- drive busy seconds by kind ---")
        blocks.append(format_table(("drive", *kinds), rows))

    decision_rows = [
        (name, count)
        for name, count in sorted(summary.decisions_by_scheduler.items())
    ]
    decision_rows.append(("total", summary.decision_count))
    if summary.forced_decisions:
        decision_rows.append(("forced (starvation guard)", summary.forced_decisions))
    blocks.append("--- scheduler decisions ---")
    blocks.append(format_table(("scheduler", "decisions"), decision_rows))

    if summary.event_counts:
        blocks.append("--- events ---")
        blocks.append(
            format_table(
                ("event", "count"), sorted(summary.event_counts.items())
            )
        )

    return "\n".join(blocks)
