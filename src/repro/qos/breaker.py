"""Sweep watchdog and circuit breaker: degraded shed-load mode.

The breaker watches the service loop's *progress signal* — completed
sweeps — and its *pressure signals* — injected faults and pending-list
depth.  Two conditions trip it open:

* **stall**: no sweep has completed for ``watchdog_stall_s`` seconds
  while requests are pending (a dead drive mid-repair, a scheduler
  wedged behind a fault cascade);
* **fault storm**: ``storm_fault_threshold`` faults were injected with
  no intervening sweep completion (composes with
  :class:`~repro.faults.FaultInjector` — a storm is just another
  overload source).

While open, the simulator sheds every new arrival (reason
``"degraded"``).  A completing sweep closes the breaker once the
pending list has drained to ``resume_pending`` or fewer requests
(``None``: any completed sweep closes it).  All transitions are
functions of simulated time, so runs remain exactly reproducible.
"""

from __future__ import annotations

import enum
from typing import Optional

from .config import QoSConfig


class BreakerState(enum.Enum):
    """Breaker position: CLOSED admits normally, OPEN sheds everything."""

    CLOSED = "closed"
    OPEN = "open"


class CircuitBreaker:
    """Stall/fault-storm detector driving degraded shed-load mode."""

    def __init__(self, config: QoSConfig) -> None:
        self.stall_s: Optional[float] = config.watchdog_stall_s
        self.storm_threshold: Optional[int] = config.storm_fault_threshold
        self.resume_pending: Optional[int] = config.resume_pending
        self.state = BreakerState.CLOSED
        #: Simulated time of the last completed sweep (or construction).
        self.last_progress_s = 0.0
        #: Faults injected since the last completed sweep.
        self.faults_since_progress = 0
        #: Times the breaker tripped open.
        self.trips = 0

    @property
    def is_open(self) -> bool:
        """True while the simulator is in degraded shed-load mode."""
        return self.state is BreakerState.OPEN

    def _trip(self) -> None:
        self.state = BreakerState.OPEN
        self.trips += 1

    # ------------------------------------------------------------------
    # Signals from the service loop
    # ------------------------------------------------------------------
    def note_fault(self, now: float) -> bool:
        """Record one injected fault; True when this fault trips the breaker."""
        self.faults_since_progress += 1
        if (
            self.state is BreakerState.CLOSED
            and self.storm_threshold is not None
            and self.faults_since_progress >= self.storm_threshold
        ):
            self._trip()
            return True
        return False

    def note_progress(self, now: float, pending_len: int) -> None:
        """A sweep completed: refresh the stall clock, maybe close."""
        self.last_progress_s = now
        self.faults_since_progress = 0
        if self.state is BreakerState.OPEN and (
            self.resume_pending is None or pending_len <= self.resume_pending
        ):
            self.state = BreakerState.CLOSED

    def evaluate(self, now: float, pending_len: int) -> bool:
        """Shed the arrival at ``now``?  (May trip on a detected stall.)

        Called once per arrival, before admission control.  Returns True
        while open; a stall — pending work but no completed sweep for
        ``watchdog_stall_s`` — trips the breaker on the spot.
        """
        if (
            self.state is BreakerState.CLOSED
            and self.stall_s is not None
            and pending_len > 0
            and now - self.last_progress_s > self.stall_s
        ):
            self._trip()
        return self.is_open
