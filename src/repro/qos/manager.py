"""The QoS facade the service loops talk to.

One :class:`QoSManager` per simulation couples the admission policy,
the circuit breaker, deadline stamping/expiry, and the starvation-guard
scheduler wrapper, and routes every QoS event into the
:class:`~repro.service.metrics.MetricsCollector`.  The simulators hold
an ``Optional[QoSManager]``; with ``None`` every QoS branch is skipped
outright, so unconfigured runs are bit-identical to the pre-QoS
simulator.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.base import Scheduler
from ..workload.requests import Request
from .admission import make_admission
from .breaker import CircuitBreaker
from .config import QoSConfig
from .guard import StarvationGuardScheduler


class QoSManager:
    """Admission + deadlines + starvation guard + breaker, in one handle."""

    def __init__(self, config: QoSConfig, env, metrics) -> None:
        self.config = config
        self.env = env
        self.metrics = metrics
        self.admission = make_admission(config)
        self.breaker: Optional[CircuitBreaker] = (
            CircuitBreaker(config) if config.has_breaker else None
        )
        self.deadline_s = config.deadline_s
        self._seen_trips = 0
        #: Optional :class:`~repro.obs.Tracer`; when attached the
        #: simulator wires it here so sheds and breaker trips appear in
        #: the trace with their reasons.
        self.obs = None

    # ------------------------------------------------------------------
    # Admission (the pending-list boundary)
    # ------------------------------------------------------------------
    def admit(self, request: Request, pending_len: int) -> bool:
        """Admit or shed one arrival; stamps the deadline on admission.

        The breaker is consulted first (degraded mode sheds everything),
        then the configured admission policy.  Shed requests are
        recorded under :meth:`MetricsCollector.on_shed` with the
        policy's reason and never reach the pending list.
        """
        now = self.env.now
        if self.breaker is not None and self.breaker.evaluate(now, pending_len):
            if self.breaker.trips != self._seen_trips:
                self._note_trip(now)
            self.metrics.on_shed(request, now, reason="degraded")
            if self.obs is not None:
                self.obs.on_shed(request, now, "degraded")
            return False
        if not self.admission.admit(now, pending_len):
            self.metrics.on_shed(request, now, reason=self.admission.shed_reason)
            if self.obs is not None:
                self.obs.on_shed(request, now, self.admission.shed_reason)
            return False
        if self.deadline_s is not None:
            request.deadline_s = now + self.deadline_s
        return True

    def _note_trip(self, now: float) -> None:
        self._seen_trips = self.breaker.trips
        self.metrics.on_breaker_trip(now)
        if self.obs is not None:
            self.obs.event(now, "breaker-trip", trips=self.breaker.trips)

    # ------------------------------------------------------------------
    # Deadlines (expiry-on-dequeue)
    # ------------------------------------------------------------------
    def expired_pending(self, pending, now: float) -> List[Request]:
        """Remove and return every expired request from ``pending``.

        Called before each major reschedule so schedulers never plan
        work that could not be delivered in time anyway.
        """
        if self.deadline_s is None:
            return []
        expired = [
            request for request in pending.snapshot() if request.is_expired(now)
        ]
        if expired:
            pending.remove_many(expired)
        return expired

    def split_expired(
        self, requests: List[Request], now: float
    ) -> Tuple[List[Request], List[Request]]:
        """Partition a service entry's requests into (live, expired)."""
        if self.deadline_s is None:
            return list(requests), []
        live: List[Request] = []
        expired: List[Request] = []
        for request in requests:
            if request.is_expired(now):
                expired.append(request)
            else:
                live.append(request)
        return live, expired

    # ------------------------------------------------------------------
    # Progress / fault signals (watchdog + breaker)
    # ------------------------------------------------------------------
    def on_progress(self, pending_len: int) -> None:
        """A sweep completed: feed the watchdog, maybe close the breaker."""
        if self.breaker is not None:
            self.breaker.note_progress(self.env.now, pending_len)

    def on_fault(self) -> None:
        """An injected fault fired: feed storm detection."""
        if self.breaker is not None and self.breaker.note_fault(self.env.now):
            self._note_trip(self.env.now)

    # ------------------------------------------------------------------
    # Starvation guard
    # ------------------------------------------------------------------
    def wrap_scheduler(self, scheduler: Scheduler) -> Scheduler:
        """Wrap ``scheduler`` with the starvation guard when configured."""
        if self.config.starvation_age_s is None:
            return scheduler
        return StarvationGuardScheduler(
            scheduler,
            self.config.starvation_age_s,
            now_fn=lambda: self.env.now,
            on_promote=self.metrics.on_forced_promotion,
        )
