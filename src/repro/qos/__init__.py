"""Quality-of-service layer: overload control for the service loops.

The paper's open-queueing scenario (Section 4) lets a saturated jukebox
accumulate an unbounded pending list, and its greedy schedulers trade
mean response time for tail latency.  This package adds the overload
discipline production tape stacks treat as first class:

* **admission control** (:mod:`repro.qos.admission`) — configurable
  policies applied at the pending-list boundary (unbounded,
  bounded-queue load shedding, token-bucket rate limiting), so every
  scheduler family sees the same admitted stream;
* **request deadlines** — per-request TTLs stamped at admission and
  enforced lazily (*expiry-on-dequeue*): expired requests are dropped
  from the pending list before planning and from a sweep's service
  entries before the physical read, feeding an ``on_expired`` metrics
  path instead of wasting drive time;
* **starvation guard** (:mod:`repro.qos.guard`) — a scheduler wrapper
  that force-promotes any request older than a threshold into the next
  sweep, bounding worst-case response time for every static, dynamic,
  and envelope scheduler without touching their internals;
* **watchdog + circuit breaker** (:mod:`repro.qos.breaker`) — detects
  stalled sweeps and fault storms (composing with
  :class:`~repro.faults.FaultInjector`) and flips the simulator into a
  degraded shed-load mode until pressure clears;
* **SLO accounting** — deadline-miss rate, shed/expired counts, and
  p50/p95/p99 response percentiles in
  :class:`~repro.service.metrics.MetricsReport`.

With ``qos=None`` (or the inert default :class:`QoSConfig`) the runner
skips the layer entirely and results stay bit-identical to a build
without it — the same pay-for-what-you-use guarantee as
:mod:`repro.faults`.
"""

from .admission import (
    AdmissionPolicy,
    BoundedQueueAdmission,
    TokenBucketAdmission,
    UnboundedAdmission,
    make_admission,
)
from .breaker import BreakerState, CircuitBreaker
from .config import QoSConfig
from .guard import StarvationGuardScheduler
from .manager import QoSManager

__all__ = [
    "AdmissionPolicy",
    "BoundedQueueAdmission",
    "BreakerState",
    "CircuitBreaker",
    "QoSConfig",
    "QoSManager",
    "StarvationGuardScheduler",
    "TokenBucketAdmission",
    "UnboundedAdmission",
    "make_admission",
]
