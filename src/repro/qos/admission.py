"""Admission control at the pending-list boundary.

The controller sits in front of the pending list, so every scheduler
family sees the same admitted stream.  Policies are deterministic
functions of simulated time and queue state — no randomness — which
keeps QoS runs exactly reproducible under one workload seed.
"""

from __future__ import annotations

import abc

from .config import QoSConfig


class AdmissionPolicy(abc.ABC):
    """Decides, per arrival, whether a request may join the system."""

    #: Shed-reason label recorded by the metrics collector.
    shed_reason: str = "admission"

    @abc.abstractmethod
    def admit(self, now: float, pending_len: int) -> bool:
        """True to admit an arrival at ``now`` with ``pending_len`` queued."""


class UnboundedAdmission(AdmissionPolicy):
    """The paper's implicit policy: admit everything (queue may diverge)."""

    def admit(self, now: float, pending_len: int) -> bool:
        """Always admit."""
        return True


class BoundedQueueAdmission(AdmissionPolicy):
    """Shed arrivals while the pending list is at its cap.

    Bounding the queue bounds the tail: a request that is admitted waits
    behind at most ``max_pending`` others, so p99 response time stays
    finite even when the offered load exceeds the service rate.
    """

    shed_reason = "queue-full"

    def __init__(self, max_pending: int) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending!r}")
        self.max_pending = max_pending

    def admit(self, now: float, pending_len: int) -> bool:
        """Admit while the pending list has room."""
        return pending_len < self.max_pending


class TokenBucketAdmission(AdmissionPolicy):
    """Rate-limit admissions to ``rate_per_s`` with ``burst`` tokens.

    Tokens accrue continuously in simulated time and cap at ``burst``;
    each admission spends one.  An arrival finding an empty bucket is
    shed — the open-queueing analogue of a front-end rate limiter.
    """

    shed_reason = "rate-limit"

    def __init__(self, rate_per_s: float, burst: int = 1) -> None:
        if rate_per_s <= 0:
            raise ValueError(f"rate_per_s must be positive, got {rate_per_s!r}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst!r}")
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._tokens = float(burst)
        self._last_s = 0.0

    def admit(self, now: float, pending_len: int) -> bool:
        """Spend a token if one has accrued by ``now``."""
        elapsed = max(0.0, now - self._last_s)
        self._last_s = max(self._last_s, now)
        self._tokens = min(float(self.burst), self._tokens + elapsed * self.rate_per_s)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


def make_admission(config: QoSConfig) -> AdmissionPolicy:
    """Build the admission policy ``config`` names."""
    if config.admission == "bounded-queue":
        return BoundedQueueAdmission(config.max_pending)
    if config.admission == "token-bucket":
        return TokenBucketAdmission(config.rate_limit_per_s, config.burst)
    return UnboundedAdmission()
