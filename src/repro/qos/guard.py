"""Starvation guard: bound the tail without touching scheduler internals.

The paper's greedy tape-selection policies (max-requests, max-bandwidth)
knowingly trade worst-case response time for throughput: a request on an
unpopular tape can be deferred sweep after sweep.  The guard wraps any
:class:`~repro.core.base.Scheduler` and intercepts only the major
reschedule: when the oldest pending request has aged past the threshold,
the wrapped scheduler is bypassed for one sweep and the drive is sent
straight to a tape holding that request — the request is force-promoted
into the next sweep's envelope.  Every other call (incremental
insertion, service-list construction, sweep-completion hooks) delegates
to the wrapped scheduler, so static, dynamic, envelope, and
ordering-ablation schedulers all work unmodified.

Worst-case bound: an admitted request waits at most ``age_threshold_s``
plus one sweep interval before its tape is mounted.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..core.base import MajorDecision, Scheduler, SchedulerContext, coalesce_entries
from ..core.sweep import ServiceEntry
from ..workload.requests import Request


class StarvationGuardScheduler(Scheduler):
    """Wraps a scheduler; force-promotes requests older than a threshold."""

    def __init__(
        self,
        inner: Scheduler,
        age_threshold_s: float,
        now_fn: Callable[[], float],
        on_promote: Optional[Callable[[int, float], None]] = None,
    ) -> None:
        if age_threshold_s <= 0:
            raise ValueError(
                f"age_threshold_s must be positive, got {age_threshold_s!r}"
            )
        self.inner = inner
        self.age_threshold_s = age_threshold_s
        self._now_fn = now_fn
        self._on_promote = on_promote
        self.name = inner.name

    # ------------------------------------------------------------------
    def _starving(self, context: SchedulerContext, now: float) -> Optional[Request]:
        """The oldest pending request, if it has aged past the threshold."""
        oldest = context.pending.oldest()
        if oldest is None or now - oldest.arrival_s <= self.age_threshold_s:
            return None
        return oldest

    def _forced_decision(
        self, context: SchedulerContext, starving: Request
    ) -> Optional[MajorDecision]:
        """Send the drive to the most useful tape holding ``starving``.

        Among the starving request's replica tapes that are in service
        (and, multi-drive, not claimed elsewhere — the pending view
        already hides those), pick the one with the most pending
        requests so the forced sweep wastes as little bandwidth as
        possible; ties break to the lowest tape id for determinism.
        """
        best_tape: Optional[int] = None
        best_requests: List[Request] = []
        for replica in context.catalog.replicas_of(starving.block_id):
            tape_id = replica.tape_id
            if not context.tape_available(tape_id):
                continue
            requests = context.pending.requests_for_tape(tape_id)
            if not requests:
                continue
            if best_tape is None or len(requests) > len(best_requests) or (
                len(requests) == len(best_requests) and tape_id < best_tape
            ):
                best_tape = tape_id
                best_requests = requests
        if best_tape is None:
            return None
        context.pending.remove_many(best_requests)
        entries: List[ServiceEntry] = coalesce_entries(
            best_requests, best_tape, context.catalog
        )
        return MajorDecision(tape_id=best_tape, entries=entries, forced=True)

    # ------------------------------------------------------------------
    # Scheduler interface (delegation with one interception point)
    # ------------------------------------------------------------------
    def major_reschedule(self, context: SchedulerContext) -> Optional[MajorDecision]:
        """Force a sweep to a starving request's tape, else delegate."""
        now = self._now_fn()
        starving = self._starving(context, now)
        if starving is not None:
            decision = self._forced_decision(context, starving)
            if decision is not None:
                if self._on_promote is not None:
                    self._on_promote(decision.request_count, now)
                return decision
        return self.inner.major_reschedule(context)

    def on_arrival(self, context: SchedulerContext, request: Request) -> bool:
        """Incremental scheduling is the wrapped scheduler's business."""
        return self.inner.on_arrival(context, request)

    def build_service_list(self, entries: List[ServiceEntry], head_mb: float):
        """Preserve the wrapped scheduler's sweep ordering."""
        return self.inner.build_service_list(entries, head_mb)

    def on_sweep_complete(self, context: SchedulerContext) -> None:
        """Forward the end-of-sweep hook."""
        self.inner.on_sweep_complete(context)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<StarvationGuardScheduler {self.name!r} "
            f"age>{self.age_threshold_s:g}s over {self.inner!r}>"
        )
