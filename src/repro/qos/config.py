"""QoS configuration.

All knobs default to off and ``QoSConfig()`` is therefore inert:
:attr:`QoSConfig.enabled` is False and the experiment runner skips the
QoS layer entirely, so unconfigured runs stay bit-identical to a build
without this subsystem (the same pay-for-what-you-use guarantee as
:class:`~repro.faults.FaultConfig`).

The dataclass is frozen with scalar-only fields, so it hashes and
compares stably — required for configs to serve as campaign cache keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Valid admission-policy names (see :mod:`repro.qos.admission`).
ADMISSION_POLICIES = ("unbounded", "bounded-queue", "token-bucket")


@dataclass(frozen=True)
class QoSConfig:
    """Knobs of the overload-control layer (defaults = everything off).

    Attributes:
        deadline_s: per-request TTL in seconds; a request not *delivered*
            within ``deadline_s`` of arrival expires instead of being
            serviced (expiry-on-dequeue).  ``None`` disables deadlines.
        admission: admission policy applied at the pending-list boundary:
            ``"unbounded"`` (admit everything), ``"bounded-queue"``
            (shed arrivals while the pending list holds ``max_pending``
            requests), or ``"token-bucket"`` (rate-limit admissions to
            ``rate_limit_per_s`` with ``burst`` tokens of depth).
        max_pending: pending-list cap for ``"bounded-queue"``.
        rate_limit_per_s: sustained admission rate for ``"token-bucket"``.
        burst: token-bucket depth (admissions that may arrive back to
            back before the rate limit bites).
        starvation_age_s: force-promote any pending request older than
            this into the next sweep (see
            :class:`~repro.qos.guard.StarvationGuardScheduler`);
            ``None`` disables the guard.
        watchdog_stall_s: trip the circuit breaker when no sweep has
            completed for this long while requests are pending;
            ``None`` disables stall detection.
        storm_fault_threshold: trip the breaker after this many injected
            faults with no intervening sweep completion (a fault storm);
            ``None`` disables storm detection.
        resume_pending: with the breaker open, a completing sweep closes
            it only once the pending list has drained to at most this
            many requests (``None``: any completed sweep closes it).
    """

    deadline_s: Optional[float] = None
    admission: str = "unbounded"
    max_pending: Optional[int] = None
    rate_limit_per_s: Optional[float] = None
    burst: int = 1
    starvation_age_s: Optional[float] = None
    watchdog_stall_s: Optional[float] = None
    storm_fault_threshold: Optional[int] = None
    resume_pending: Optional[int] = None

    def __post_init__(self) -> None:
        if self.admission not in ADMISSION_POLICIES:
            raise ValueError(
                f"admission must be one of {ADMISSION_POLICIES}, "
                f"got {self.admission!r}"
            )
        if self.admission == "bounded-queue":
            if self.max_pending is None or self.max_pending < 1:
                raise ValueError(
                    f"bounded-queue admission requires max_pending >= 1, "
                    f"got {self.max_pending!r}"
                )
        elif self.max_pending is not None:
            raise ValueError(
                f"max_pending only applies to bounded-queue admission "
                f"(admission={self.admission!r})"
            )
        if self.admission == "token-bucket":
            if self.rate_limit_per_s is None or self.rate_limit_per_s <= 0:
                raise ValueError(
                    f"token-bucket admission requires rate_limit_per_s > 0, "
                    f"got {self.rate_limit_per_s!r}"
                )
        elif self.rate_limit_per_s is not None:
            raise ValueError(
                f"rate_limit_per_s only applies to token-bucket admission "
                f"(admission={self.admission!r})"
            )
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst!r}")
        for name in ("deadline_s", "starvation_age_s", "watchdog_stall_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value!r}")
        if self.storm_fault_threshold is not None and self.storm_fault_threshold < 1:
            raise ValueError(
                f"storm_fault_threshold must be >= 1, "
                f"got {self.storm_fault_threshold!r}"
            )
        if self.resume_pending is not None and self.resume_pending < 0:
            raise ValueError(
                f"resume_pending must be >= 0, got {self.resume_pending!r}"
            )
        if self.resume_pending is not None and not self.has_breaker:
            raise ValueError(
                "resume_pending requires watchdog_stall_s or "
                "storm_fault_threshold to be set"
            )

    @property
    def has_breaker(self) -> bool:
        """True when stall or fault-storm detection is configured."""
        return (
            self.watchdog_stall_s is not None
            or self.storm_fault_threshold is not None
        )

    @property
    def enabled(self) -> bool:
        """True when any QoS mechanism can actually act."""
        return bool(
            self.deadline_s is not None
            or self.admission != "unbounded"
            or self.starvation_age_s is not None
            or self.has_breaker
        )
