"""Supervised persistent worker pool for campaign execution.

The PR-2 engine fanned points out over a bare
``ProcessPoolExecutor``; a single hard worker death broke the whole
pool, a wedged worker hung the batch forever (unless the Unix-only
SIGALRM limit fired), and Ctrl-C lost everything in flight.  This
module replaces that path with an explicitly supervised pool:

* **Per-worker pipes.**  Each worker owns a private task pipe and a
  private result pipe.  Nothing is shared between workers, so killing
  one with SIGKILL can never corrupt another's channel (a shared
  ``multiprocessing.Queue`` can deadlock if a writer dies holding its
  feeder lock).  A dead worker is detected two ways: its result pipe
  hits EOF, or ``Process.is_alive()`` goes false while it holds a task.
* **Heartbeats + deadlines.**  A daemon thread in every worker sends a
  beat every ``heartbeat_s``; the supervisor kills a busy worker whose
  beats stop for ``stall_timeout_s`` (process wedged below Python — D
  state, C extension without the GIL released) or whose task exceeds
  its wall-clock deadline (``point_timeout_s`` plus ``hang_grace_s``;
  the in-worker SIGALRM usually fires first, the supervisor kill is the
  portable backstop that also works where SIGALRM cannot).
* **Classified retries.**  A worker *death* or *stall* is transient:
  the point is requeued with bounded exponential backoff (non-blocking:
  the requeued task carries a not-before time) up to ``max_attempts``.
  An exception *raised and shipped back* by the runner is deterministic
  — rerunning the same seeded simulation reproduces it — and fails the
  point immediately.  :class:`PointTimeoutError` is treated as
  transient (wall-clock is about the host, not the config).
* **Graceful drain.**  On SIGINT/SIGTERM the supervisor stops
  dispatching, gives running points ``drain_grace_s`` to finish (their
  results are recorded and cached), then kills the rest and reports
  them abandoned so the engine can journal them as in-flight.  A second
  signal skips the grace period.  Handlers are installed only on the
  main thread and always restored.

The supervisor is policy-free about campaign semantics: the engine
passes :class:`SupervisorHooks` and keeps ownership of the journal,
cache, metrics, and progress callbacks, all of which run in the parent.
"""

from __future__ import annotations

import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection, get_context
from typing import Callable, List, Optional, Sequence, Tuple

from .execution import _execute_point

__all__ = [
    "SupervisedPool",
    "SupervisorHooks",
    "TRANSIENT_ERRORS",
    "WorkerCrashError",
    "WorkerStallError",
    "is_transient_error",
]


class WorkerCrashError(Exception):
    """A worker process died (signal/``os._exit``) while running a point."""


class WorkerStallError(Exception):
    """A worker stopped heartbeating or blew its deadline and was killed."""


#: Error names (``PointFailure.error``) classified as transient: the
#: failure is about the host (a killed/wedged/slow process), not the
#: config, so rerunning the same deterministic simulation can succeed.
TRANSIENT_ERRORS = frozenset(
    {"WorkerCrashError", "WorkerStallError", "PointTimeoutError"}
)


def is_transient_error(error_name: str) -> bool:
    """Whether a failure with this error name is worth retrying."""
    return error_name in TRANSIENT_ERRORS


@dataclass
class SupervisorHooks:
    """Engine callbacks; every hook runs in the submitting process.

    Attributes:
        on_start: ``(index, attempt)`` — point dispatched to a worker.
        on_retry: ``(index, attempt, error_name, message)`` — transient
            failure; the point will be requeued (attempt just consumed).
        on_final: ``(index, status, payload, attempts)`` with status
            ``"ok"``/``"error"``; returns False to abort the campaign.
        on_abandoned: ``(index, reason)`` — point not finished because
            of an abort or an interrupt drain.
    """

    on_start: Callable[[int, int], None] = lambda index, attempt: None
    on_retry: Callable[[int, int, str, str], None] = (
        lambda index, attempt, error, message: None
    )
    on_final: Callable[[int, str, object, int], bool] = (
        lambda index, status, payload, attempts: True
    )
    on_abandoned: Callable[[int, str], None] = lambda index, reason: None


def _worker_main(
    task_conn,
    result_conn,
    runner,
    timeout_s,
    profile_dir,
    trace_dir,
    heartbeat_s,
) -> None:
    """Worker loop: receive ``(index, config)``, send results + beats.

    SIGINT is ignored — a terminal Ctrl-C signals the whole process
    group, and the *supervisor* decides how the pool drains.  The
    heartbeat thread shares the result pipe under a lock (``Connection``
    is not thread-safe); a broken pipe means the parent is gone and the
    worker exits rather than simulate into the void.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except ValueError:  # pragma: no cover - non-main-thread start method
        pass
    send_lock = threading.Lock()

    def send(message) -> bool:
        with send_lock:
            try:
                result_conn.send(message)
                return True
            except (BrokenPipeError, OSError):
                return False

    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(heartbeat_s):
            if not send(("beat",)):
                return

    threading.Thread(target=beat, daemon=True).start()
    try:
        while True:
            try:
                task = task_conn.recv()
            except (EOFError, OSError):
                break
            if task is None:
                break
            index, config = task
            outcome = _execute_point(
                (index, config, runner, timeout_s, profile_dir, trace_dir)
            )
            if not send(("result", outcome)):
                break
    except KeyboardInterrupt:  # pragma: no cover - SIGINT is ignored
        pass
    finally:
        stop.set()


@dataclass
class _Task:
    index: int
    config: object
    attempts: int = 0  # attempts consumed (carried over on resume)
    not_before: float = 0.0  # monotonic time gating backoff requeues


@dataclass
class _Worker:
    process: object
    task_w: object
    result_r: object
    task: Optional[_Task] = None
    started_at: float = 0.0
    last_beat: float = field(default_factory=time.monotonic)

    @property
    def busy(self) -> bool:
        return self.task is not None


class SupervisedPool:
    """Run campaign points on supervised workers (see module docstring).

    Args:
        jobs: worker process count.
        runner: picklable per-config runner (see the engine).
        point_timeout_s: in-worker SIGALRM budget; also (plus
            ``hang_grace_s``) the supervisor's kill deadline.
        max_attempts: total attempts per point for *transient* failures.
        backoff_base_s / backoff_cap_s: exponential requeue backoff
            (``base * 2**(attempt-1)``, capped), enforced without
            blocking the supervisor loop.
        heartbeat_s: worker beat interval.
        stall_timeout_s: kill a busy worker silent for this long.
        hang_grace_s: slack over ``point_timeout_s`` before the
            supervisor kills (lets the in-worker SIGALRM win when it
            can, producing the richer traceback).
        drain_grace_s: how long running points may finish after
            SIGINT/SIGTERM before being killed and abandoned.
        mp_context: ``multiprocessing`` start-method context (default:
            platform default — fork on Linux).
    """

    def __init__(
        self,
        jobs: int,
        runner: Callable,
        point_timeout_s: Optional[float] = None,
        profile_dir: Optional[str] = None,
        trace_dir: Optional[str] = None,
        max_attempts: int = 3,
        backoff_base_s: float = 0.25,
        backoff_cap_s: float = 30.0,
        heartbeat_s: float = 0.2,
        stall_timeout_s: float = 30.0,
        hang_grace_s: float = 5.0,
        drain_grace_s: float = 5.0,
        poll_s: float = 0.05,
        mp_context=None,
        metrics=None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs!r}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts!r}")
        self.jobs = jobs
        self.runner = runner
        self.point_timeout_s = point_timeout_s
        self.profile_dir = profile_dir
        self.trace_dir = trace_dir
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.heartbeat_s = heartbeat_s
        self.stall_timeout_s = stall_timeout_s
        self.hang_grace_s = hang_grace_s
        self.drain_grace_s = drain_grace_s
        self.poll_s = poll_s
        self.ctx = mp_context if mp_context is not None else get_context()
        self.metrics = metrics
        self._interrupts = 0

    # ------------------------------------------------------------------
    def _inc(self, name: str, by: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, by)

    def _spawn(self) -> _Worker:
        task_r, task_w = self.ctx.Pipe(duplex=False)
        result_r, result_w = self.ctx.Pipe(duplex=False)
        process = self.ctx.Process(
            target=_worker_main,
            args=(
                task_r,
                result_w,
                self.runner,
                self.point_timeout_s,
                self.profile_dir,
                self.trace_dir,
                self.heartbeat_s,
            ),
            daemon=True,
        )
        process.start()
        # Close the child's ends in the parent so EOF detection works.
        task_r.close()
        result_w.close()
        self._inc("campaign.workers.spawned")
        return _Worker(process=process, task_w=task_w, result_r=result_r)

    def _kill(self, worker: _Worker) -> None:
        try:
            worker.process.kill()
        except (OSError, AttributeError):  # pragma: no cover - defensive
            try:
                worker.process.terminate()
            except OSError:
                pass
        worker.process.join(timeout=5.0)
        for conn_end in (worker.task_w, worker.result_r):
            try:
                conn_end.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def _deadline_for(self, worker: _Worker, now: float) -> Optional[str]:
        """Why ``worker`` should be killed right now, if any reason."""
        if not worker.busy:
            return None
        if (
            self.point_timeout_s is not None
            and now - worker.started_at
            > self.point_timeout_s + self.hang_grace_s
        ):
            return (
                f"exceeded the {self.point_timeout_s:g}s point budget "
                f"(+{self.hang_grace_s:g}s grace) without returning"
            )
        if now - worker.last_beat > self.stall_timeout_s:
            return (
                f"stopped heartbeating for {self.stall_timeout_s:g}s "
                "while running a point"
            )
        return None

    # ------------------------------------------------------------------
    def run(
        self,
        points: Sequence[Tuple[int, object, int]],
        hooks: SupervisorHooks,
    ) -> None:
        """Execute ``(index, config, prior_attempts)`` triples to completion.

        Returns when every point reached a final state (``on_final``),
        was abandoned after an abort (``on_abandoned``), or — on
        interrupt — after the drain, in which case the pending points
        are reported abandoned and :class:`KeyboardInterrupt` is raised.
        """
        ready = deque(
            _Task(index=index, config=config, attempts=attempts)
            for index, config, attempts in points
        )
        if not ready:
            return
        workers: List[_Worker] = [
            self._spawn() for _ in range(min(self.jobs, len(ready)))
        ]
        remaining = len(ready)
        aborting = False
        draining = False
        drain_deadline = 0.0
        self._interrupts = 0

        on_main_thread = (
            threading.current_thread() is threading.main_thread()
        )
        previous_handlers = {}

        def _on_signal(signum, frame):  # pragma: no cover - timing-dependent
            self._interrupts += 1

        if on_main_thread:
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    previous_handlers[signum] = signal.signal(
                        signum, _on_signal
                    )
                except (ValueError, OSError):
                    pass

        def finish(task: _Task, status: str, payload) -> None:
            nonlocal remaining, aborting
            remaining -= 1
            keep_going = hooks.on_final(
                task.index, status, payload, task.attempts
            )
            if keep_going is False and not aborting:
                aborting = True

        def settle_failure(task: _Task, error: str, message: str) -> None:
            """Requeue a transient failure or finalize it."""
            if (
                is_transient_error(error)
                and task.attempts < self.max_attempts
                and not aborting
                and not draining
            ):
                hooks.on_retry(task.index, task.attempts, error, message)
                self._inc("campaign.points.retried")
                backoff = min(
                    self.backoff_cap_s,
                    self.backoff_base_s * (2 ** (task.attempts - 1)),
                )
                task.not_before = time.monotonic() + backoff
                ready.append(task)
            else:
                finish(task, "error", (error, message, ""))

        try:
            while remaining > 0:
                now = time.monotonic()

                # Interrupt bookkeeping: first signal starts the drain,
                # a second one (or the grace expiring) forces the kill.
                if self._interrupts > 0 and not draining:
                    draining = True
                    drain_deadline = now + self.drain_grace_s
                force_stop = draining and (
                    now >= drain_deadline or self._interrupts > 1
                )

                if aborting or force_stop:
                    break

                # Dispatch: at most one task per idle worker, and only
                # tasks whose backoff gate has passed.
                if not draining:
                    for worker in workers:
                        if not ready:
                            break
                        if worker.busy or not worker.process.is_alive():
                            continue
                        gated = None
                        for _ in range(len(ready)):
                            candidate = ready.popleft()
                            if candidate.not_before <= now:
                                gated = candidate
                                break
                            ready.append(candidate)
                        if gated is None:
                            break
                        gated.attempts += 1
                        try:
                            worker.task_w.send((gated.index, gated.config))
                        except (BrokenPipeError, OSError):
                            # Worker died before dispatch; requeue the
                            # attempt and let liveness handling respawn.
                            gated.attempts -= 1
                            ready.appendleft(gated)
                            continue
                        worker.task = gated
                        worker.started_at = now
                        worker.last_beat = now
                        hooks.on_start(gated.index, gated.attempts)

                if draining and not any(worker.busy for worker in workers):
                    break

                # Wait on every live result pipe at once.
                readable = connection.wait(
                    [
                        worker.result_r
                        for worker in workers
                        if worker.process.is_alive() or worker.busy
                    ],
                    timeout=self.poll_s,
                )
                for pipe in readable:
                    worker = next(
                        candidate
                        for candidate in workers
                        if candidate.result_r is pipe
                    )
                    try:
                        message = pipe.recv()
                    except (EOFError, OSError):
                        # Pipe EOF — the worker is gone; fall through to
                        # the liveness scan below, which classifies it.
                        worker.process.join(timeout=0.1)
                        continue
                    worker.last_beat = time.monotonic()
                    if message[0] == "result":
                        _tag, outcome = message
                        index, status, payload = outcome
                        task = worker.task
                        worker.task = None
                        if task is None or task.index != index:
                            # Should not happen; treat as untracked final.
                            continue  # pragma: no cover - defensive
                        if status == "ok":
                            finish(task, "ok", payload)
                        else:
                            settle_failure(task, payload[0], payload[1])

                # Liveness + deadline scan.
                for position, worker in enumerate(workers):
                    reason = None
                    crashed = not worker.process.is_alive()
                    if crashed and worker.busy:
                        code = worker.process.exitcode
                        reason = (
                            "WorkerCrashError",
                            f"worker process died (exit code {code}) while "
                            "running the point",
                        )
                        self._inc("campaign.workers.died")
                    elif not crashed:
                        why = self._deadline_for(worker, time.monotonic())
                        if why is not None:
                            self._kill(worker)
                            crashed = True
                            reason = ("WorkerStallError", why)
                            self._inc("campaign.workers.killed")
                    if crashed:
                        task = worker.task
                        worker.task = None
                        if task is not None:
                            settle_failure(task, *reason)
                        if remaining > 0 and not draining and not aborting:
                            workers[position] = self._spawn()
                            self._inc("campaign.workers.respawned")

            # Drain epilogue / abort epilogue.
            if remaining > 0:
                abandoned_any = True
                abandoned_reason = (
                    "campaign aborted" if aborting else "interrupted"
                )
                for worker in workers:
                    if worker.busy:
                        task = worker.task
                        worker.task = None
                        hooks.on_abandoned(task.index, abandoned_reason)
                        remaining -= 1
                while ready:
                    task = ready.popleft()
                    hooks.on_abandoned(task.index, abandoned_reason)
                    remaining -= 1
            else:
                abandoned_any = False
        finally:
            for worker in workers:
                if worker.process.is_alive():
                    self._kill(worker)
                else:
                    worker.process.join(timeout=0.1)
                    for conn_end in (worker.task_w, worker.result_r):
                        try:
                            conn_end.close()
                        except OSError:  # pragma: no cover - already closed
                            pass
            for signum, handler in previous_handlers.items():
                try:
                    signal.signal(signum, handler)
                except (ValueError, OSError):  # pragma: no cover
                    pass

        # A Ctrl-C whose drain still finished every point is a complete
        # campaign; only an interrupt that left work behind propagates.
        if self._interrupts > 0 and abandoned_any:
            raise KeyboardInterrupt
