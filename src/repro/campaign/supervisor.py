"""Supervised persistent worker pool for campaign execution.

The PR-2 engine fanned points out over a bare
``ProcessPoolExecutor``; a single hard worker death broke the whole
pool, a wedged worker hung the batch forever (unless the Unix-only
SIGALRM limit fired), and Ctrl-C lost everything in flight.  This
module replaces that path with an explicitly supervised pool:

* **Per-worker pipes.**  Each worker owns a private task pipe and a
  private result pipe.  Nothing is shared between workers, so killing
  one with SIGKILL can never corrupt another's channel (a shared
  ``multiprocessing.Queue`` can deadlock if a writer dies holding its
  feeder lock).  A dead worker is detected two ways: its result pipe
  hits EOF, or ``Process.is_alive()`` goes false while it holds a task.
* **Chunked dispatch.**  Points are shipped in chunks (``chunk_size``
  per message, auto-sized to the batch by default) rather than one
  pickle round trip per point.  The chunk is pickled *once* in the
  parent — configs that share sub-objects (a grid built with
  ``config.with_(...)`` shares every unchanged sub-config by
  reference) are serialized once per chunk through the pickle memo —
  and the parent records the exact payload bytes it shipped.  Workers
  stream one result message back per point as it finishes (with the
  worker-measured wall time), so supervision, journaling, and progress
  stay per-point even though dispatch is batched.
* **Persistent workers + initializer.**  A worker lives for the whole
  batch and can run an ``initializer`` once before its first chunk
  (the engine uses this to pre-warm catalog caches), then sends a
  ``ready`` handshake; the parent records per-worker startup
  milliseconds for the overhead accounting in :attr:`overhead`.
* **Heartbeats + deadlines.**  A daemon thread in every worker sends a
  beat every ``heartbeat_s``; the supervisor kills a busy worker whose
  beats stop for ``stall_timeout_s`` (process wedged below Python — D
  state, C extension without the GIL released) or whose *current
  point* exceeds its wall-clock deadline (``point_timeout_s`` plus
  ``hang_grace_s``; the per-point timer restarts at every streamed
  result, so a chunk of n points gets n budgets, not one).
* **Classified retries.**  A worker *death* or *stall* is transient:
  every not-yet-finished point of the dead worker's chunk — and only
  those; results already streamed back are kept — is requeued with
  bounded exponential backoff (non-blocking: the requeued task carries
  a not-before time) up to ``max_attempts``.  An exception *raised and
  shipped back* by the runner is deterministic — rerunning the same
  seeded simulation reproduces it — and fails the point immediately.
  :class:`PointTimeoutError` is treated as transient (wall-clock is
  about the host, not the config).
* **Graceful drain.**  On SIGINT/SIGTERM the supervisor stops
  dispatching, gives running chunks ``drain_grace_s`` to finish (their
  results are recorded and cached), then kills the rest and reports
  them abandoned so the engine can journal them as in-flight.  A second
  signal skips the grace period.  Handlers are installed only on the
  main thread and always restored.

The supervisor is policy-free about campaign semantics: the engine
passes :class:`SupervisorHooks` and keeps ownership of the journal,
cache, metrics, and progress callbacks, all of which run in the parent.
"""

from __future__ import annotations

import pickle
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection, get_context
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .execution import _execute_point

__all__ = [
    "SupervisedPool",
    "SupervisorHooks",
    "TRANSIENT_ERRORS",
    "WorkerCrashError",
    "WorkerStallError",
    "auto_chunk_size",
    "is_transient_error",
]


class WorkerCrashError(Exception):
    """A worker process died (signal/``os._exit``) while running a point."""


class WorkerStallError(Exception):
    """A worker stopped heartbeating or blew its deadline and was killed."""


#: Error names (``PointFailure.error``) classified as transient: the
#: failure is about the host (a killed/wedged/slow process), not the
#: config, so rerunning the same deterministic simulation can succeed.
TRANSIENT_ERRORS = frozenset(
    {"WorkerCrashError", "WorkerStallError", "PointTimeoutError"}
)


def is_transient_error(error_name: str) -> bool:
    """Whether a failure with this error name is worth retrying."""
    return error_name in TRANSIENT_ERRORS


def auto_chunk_size(points: int, jobs: int) -> int:
    """Default chunk size for a batch of ``points`` over ``jobs`` workers.

    Sized so every worker sees at least ~4 chunks (keeping the retry
    unit small and the tail balanced) and no chunk exceeds 16 points
    (bounding the work a single worker death can force back through
    the requeue path).  Small batches degrade to per-point dispatch.
    """
    if points <= 0:
        return 1
    return max(1, min(-(-points // (max(1, jobs) * 4)), 16))


@dataclass
class SupervisorHooks:
    """Engine callbacks; every hook runs in the submitting process.

    Attributes:
        on_start: ``(index, attempt)`` — point dispatched to a worker
            (fires once per point at chunk dispatch time).
        on_retry: ``(index, attempt, error_name, message)`` — transient
            failure; the point will be requeued (attempt just consumed).
        on_final: ``(index, status, payload, attempts)`` with status
            ``"ok"``/``"error"``; returns False to abort the campaign.
        on_abandoned: ``(index, reason)`` — point not finished because
            of an abort or an interrupt drain.
        on_wall: ``(index, wall_s)`` — worker-measured execution wall
            time for a point, delivered just before its ``on_final``.
    """

    on_start: Callable[[int, int], None] = lambda index, attempt: None
    on_retry: Callable[[int, int, str, str], None] = (
        lambda index, attempt, error, message: None
    )
    on_final: Callable[[int, str, object, int], bool] = (
        lambda index, status, payload, attempts: True
    )
    on_abandoned: Callable[[int, str], None] = lambda index, reason: None
    on_wall: Callable[[int, float], None] = lambda index, wall_s: None


def _worker_main(
    task_conn,
    result_conn,
    runner,
    timeout_s,
    profile_dir,
    trace_dir,
    heartbeat_s,
    initializer,
    initializer_args,
) -> None:
    """Worker loop: receive point chunks, stream results + beats.

    SIGINT is ignored — a terminal Ctrl-C signals the whole process
    group, and the *supervisor* decides how the pool drains.  The
    heartbeat thread shares the result pipe under a lock (``Connection``
    is not thread-safe); a broken pipe means the parent is gone and the
    worker exits rather than simulate into the void.

    The optional ``initializer`` runs once before the ready handshake;
    a failing initializer is reported but not fatal — warming is an
    optimization, the points must still run.  Chunks arrive as raw
    pickled bytes (the parent measures what it ships); each point's
    result is streamed back as it finishes, tagged with the
    worker-measured wall seconds, followed by a ``chunk_done`` marker.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except ValueError:  # pragma: no cover - non-main-thread start method
        pass
    send_lock = threading.Lock()

    def send(message) -> bool:
        with send_lock:
            try:
                result_conn.send(message)
                return True
            except (BrokenPipeError, OSError):
                return False

    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(heartbeat_s):
            if not send(("beat",)):
                return

    threading.Thread(target=beat, daemon=True).start()
    init_error = ""
    init_started = time.perf_counter()
    if initializer is not None:
        try:
            initializer(*initializer_args)
        except Exception as exc:  # noqa: BLE001 - warming is best-effort
            init_error = f"{type(exc).__name__}: {exc}"
    init_ms = (time.perf_counter() - init_started) * 1000.0
    if not send(("ready", init_ms, init_error)):
        stop.set()
        return
    try:
        while True:
            try:
                payload = task_conn.recv_bytes()
            except (EOFError, OSError):
                break
            task = pickle.loads(payload)
            if task is None:
                break
            _tag, points = task
            alive = True
            for index, config in points:
                point_started = time.perf_counter()
                outcome = _execute_point(
                    (index, config, runner, timeout_s, profile_dir, trace_dir)
                )
                wall_s = time.perf_counter() - point_started
                if not send(("result", outcome, wall_s)):
                    alive = False
                    break
            if not alive or not send(("chunk_done",)):
                break
    except KeyboardInterrupt:  # pragma: no cover - SIGINT is ignored
        pass
    finally:
        stop.set()


@dataclass
class _Task:
    index: int
    config: object
    attempts: int = 0  # attempts consumed (carried over on resume)
    not_before: float = 0.0  # monotonic time gating backoff requeues


@dataclass
class _Worker:
    process: object
    task_w: object
    result_r: object
    #: In-flight chunk points keyed by index; removed as results stream
    #: back, so on a crash exactly the unfinished remainder is requeued.
    chunk: Dict[int, _Task] = field(default_factory=dict)
    spawned_at: float = field(default_factory=time.monotonic)
    started_at: float = 0.0
    last_beat: float = field(default_factory=time.monotonic)
    ready: bool = False

    @property
    def busy(self) -> bool:
        return bool(self.chunk)


class SupervisedPool:
    """Run campaign points on supervised workers (see module docstring).

    Args:
        jobs: worker process count.
        runner: picklable per-config runner (see the engine).
        point_timeout_s: in-worker SIGALRM budget; also (plus
            ``hang_grace_s``) the supervisor's per-point kill deadline
            (the timer restarts at every streamed result).
        max_attempts: total attempts per point for *transient* failures.
        backoff_base_s / backoff_cap_s: exponential requeue backoff
            (``base * 2**(attempt-1)``, capped), enforced without
            blocking the supervisor loop.
        heartbeat_s: worker beat interval.
        stall_timeout_s: kill a busy worker silent for this long.
        hang_grace_s: slack over ``point_timeout_s`` before the
            supervisor kills (lets the in-worker SIGALRM win when it
            can, producing the richer traceback).
        drain_grace_s: how long running points may finish after
            SIGINT/SIGTERM before being killed and abandoned.
        chunk_size: points per dispatch message; ``None`` (default)
            auto-sizes with :func:`auto_chunk_size`.
        initializer / initializer_args: optional picklable callable run
            once in every worker before its first chunk (e.g. catalog
            cache warming); failures are recorded, not fatal.
        mp_context: ``multiprocessing`` start-method context (default:
            platform default — fork on Linux).

    After :meth:`run` returns, :attr:`overhead` holds the dispatch
    accounting for the batch: payload bytes pickled, chunk/point
    counts, cumulative dispatch seconds, and per-worker startup and
    initializer milliseconds.
    """

    def __init__(
        self,
        jobs: int,
        runner: Callable,
        point_timeout_s: Optional[float] = None,
        profile_dir: Optional[str] = None,
        trace_dir: Optional[str] = None,
        max_attempts: int = 3,
        backoff_base_s: float = 0.25,
        backoff_cap_s: float = 30.0,
        heartbeat_s: float = 0.2,
        stall_timeout_s: float = 30.0,
        hang_grace_s: float = 5.0,
        drain_grace_s: float = 5.0,
        poll_s: float = 0.05,
        chunk_size: Optional[int] = None,
        initializer: Optional[Callable] = None,
        initializer_args: tuple = (),
        mp_context=None,
        metrics=None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs!r}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts!r}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size!r}")
        self.jobs = jobs
        self.runner = runner
        self.point_timeout_s = point_timeout_s
        self.profile_dir = profile_dir
        self.trace_dir = trace_dir
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.heartbeat_s = heartbeat_s
        self.stall_timeout_s = stall_timeout_s
        self.hang_grace_s = hang_grace_s
        self.drain_grace_s = drain_grace_s
        self.poll_s = poll_s
        self.chunk_size = chunk_size
        self.initializer = initializer
        self.initializer_args = initializer_args
        self.ctx = mp_context if mp_context is not None else get_context()
        self.metrics = metrics
        self._interrupts = 0
        #: Dispatch/startup accounting of the most recent :meth:`run`.
        self.overhead: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def _inc(self, name: str, by: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, by)

    def _spawn(self) -> _Worker:
        task_r, task_w = self.ctx.Pipe(duplex=False)
        result_r, result_w = self.ctx.Pipe(duplex=False)
        process = self.ctx.Process(
            target=_worker_main,
            args=(
                task_r,
                result_w,
                self.runner,
                self.point_timeout_s,
                self.profile_dir,
                self.trace_dir,
                self.heartbeat_s,
                self.initializer,
                self.initializer_args,
            ),
            daemon=True,
        )
        process.start()
        # Close the child's ends in the parent so EOF detection works.
        task_r.close()
        result_w.close()
        self._inc("campaign.workers.spawned")
        return _Worker(process=process, task_w=task_w, result_r=result_r)

    def _kill(self, worker: _Worker) -> None:
        try:
            worker.process.kill()
        except (OSError, AttributeError):  # pragma: no cover - defensive
            try:
                worker.process.terminate()
            except OSError:
                pass
        worker.process.join(timeout=5.0)
        for conn_end in (worker.task_w, worker.result_r):
            try:
                conn_end.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def _deadline_for(self, worker: _Worker, now: float) -> Optional[str]:
        """Why ``worker`` should be killed right now, if any reason."""
        if not worker.busy:
            return None
        if (
            self.point_timeout_s is not None
            and now - worker.started_at
            > self.point_timeout_s + self.hang_grace_s
        ):
            return (
                f"exceeded the {self.point_timeout_s:g}s point budget "
                f"(+{self.hang_grace_s:g}s grace) without returning"
            )
        if now - worker.last_beat > self.stall_timeout_s:
            return (
                f"stopped heartbeating for {self.stall_timeout_s:g}s "
                "while running a point"
            )
        return None

    # ------------------------------------------------------------------
    def run(
        self,
        points: Sequence[Tuple[int, object, int]],
        hooks: SupervisorHooks,
    ) -> None:
        """Execute ``(index, config, prior_attempts)`` triples to completion.

        Returns when every point reached a final state (``on_final``),
        was abandoned after an abort (``on_abandoned``), or — on
        interrupt — after the drain, in which case the pending points
        are reported abandoned and :class:`KeyboardInterrupt` is raised.
        """
        ready = deque(
            _Task(index=index, config=config, attempts=attempts)
            for index, config, attempts in points
        )
        startup_ms: List[float] = []
        initializer_ms: List[float] = []
        self.overhead = {
            "chunk_size": 0,
            "chunks_dispatched": 0,
            "points_dispatched": 0,
            "payload_bytes": 0,
            "dispatch_s": 0.0,
            "worker_startup_ms": startup_ms,
            "worker_initializer_ms": initializer_ms,
        }
        if not ready:
            return
        chunk_size = (
            self.chunk_size
            if self.chunk_size is not None
            else auto_chunk_size(len(ready), self.jobs)
        )
        self.overhead["chunk_size"] = chunk_size
        workers: List[_Worker] = [
            self._spawn()
            for _ in range(min(self.jobs, -(-len(ready) // chunk_size)))
        ]
        remaining = len(ready)
        aborting = False
        draining = False
        drain_deadline = 0.0
        self._interrupts = 0

        on_main_thread = (
            threading.current_thread() is threading.main_thread()
        )
        previous_handlers = {}

        def _on_signal(signum, frame):  # pragma: no cover - timing-dependent
            self._interrupts += 1

        if on_main_thread:
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    previous_handlers[signum] = signal.signal(
                        signum, _on_signal
                    )
                except (ValueError, OSError):
                    pass

        def finish(task: _Task, status: str, payload) -> None:
            nonlocal remaining, aborting
            remaining -= 1
            keep_going = hooks.on_final(
                task.index, status, payload, task.attempts
            )
            if keep_going is False and not aborting:
                aborting = True

        def settle_failure(task: _Task, error: str, message: str) -> None:
            """Requeue a transient failure or finalize it."""
            if (
                is_transient_error(error)
                and task.attempts < self.max_attempts
                and not aborting
                and not draining
            ):
                hooks.on_retry(task.index, task.attempts, error, message)
                self._inc("campaign.points.retried")
                backoff = min(
                    self.backoff_cap_s,
                    self.backoff_base_s * (2 ** (task.attempts - 1)),
                )
                task.not_before = time.monotonic() + backoff
                ready.append(task)
            else:
                finish(task, "error", (error, message, ""))

        def take_chunk(now: float) -> List[_Task]:
            """Pop up to ``chunk_size`` backoff-eligible tasks."""
            taken: List[_Task] = []
            for _ in range(len(ready)):
                if len(taken) >= chunk_size or not ready:
                    break
                candidate = ready.popleft()
                if candidate.not_before <= now:
                    taken.append(candidate)
                else:
                    ready.append(candidate)
            return taken

        def handle_message(worker: _Worker, message) -> None:
            worker.last_beat = time.monotonic()
            tag = message[0]
            if tag == "result":
                _tag, outcome, wall_s = message
                index, status, payload = outcome
                task = worker.chunk.pop(index, None)
                # Restart the per-point deadline: the worker has
                # moved on to the chunk's next point.
                worker.started_at = worker.last_beat
                if task is None:
                    # Should not happen; treat as untracked final.
                    return  # pragma: no cover - defensive
                hooks.on_wall(index, wall_s)
                if status == "ok":
                    finish(task, "ok", payload)
                else:
                    settle_failure(task, payload[0], payload[1])
            elif tag == "ready" and not worker.ready:
                worker.ready = True
                startup_ms.append(
                    (worker.last_beat - worker.spawned_at) * 1000.0
                )
                initializer_ms.append(message[1])
                if message[2]:
                    self._inc("campaign.workers.init_errors")

        def drain_buffered(worker: _Worker) -> None:
            """Consume every message already sitting in the result pipe.

            Results a worker streamed before dying can be buffered
            behind heartbeats; they are finished work and must be
            settled before the crash handler requeues the chunk's
            remainder — otherwise a completed point would run twice.
            """
            while True:
                try:
                    if not worker.result_r.poll():
                        return
                    message = worker.result_r.recv()
                except (EOFError, OSError):
                    return
                handle_message(worker, message)

        try:
            while remaining > 0:
                now = time.monotonic()

                # Interrupt bookkeeping: first signal starts the drain,
                # a second one (or the grace expiring) forces the kill.
                if self._interrupts > 0 and not draining:
                    draining = True
                    drain_deadline = now + self.drain_grace_s
                force_stop = draining and (
                    now >= drain_deadline or self._interrupts > 1
                )

                if aborting or force_stop:
                    break

                # Dispatch: at most one chunk per idle worker, and only
                # tasks whose backoff gate has passed.  The chunk is
                # pickled once here so shared sub-configs serialize
                # once (pickle memo) and the shipped bytes are counted.
                if not draining:
                    for worker in workers:
                        if not ready:
                            break
                        if worker.busy or not worker.process.is_alive():
                            continue
                        chunk = take_chunk(now)
                        if not chunk:
                            break
                        for task in chunk:
                            task.attempts += 1
                        dispatch_started = time.perf_counter()
                        payload = pickle.dumps(
                            (
                                "chunk",
                                [(task.index, task.config) for task in chunk],
                            ),
                            protocol=pickle.HIGHEST_PROTOCOL,
                        )
                        try:
                            worker.task_w.send_bytes(payload)
                        except (BrokenPipeError, OSError):
                            # Worker died before dispatch; requeue the
                            # attempts and let liveness handling respawn.
                            for task in chunk:
                                task.attempts -= 1
                            ready.extendleft(reversed(chunk))
                            continue
                        self.overhead["dispatch_s"] += (
                            time.perf_counter() - dispatch_started
                        )
                        self.overhead["chunks_dispatched"] += 1
                        self.overhead["points_dispatched"] += len(chunk)
                        self.overhead["payload_bytes"] += len(payload)
                        self._inc("campaign.chunks.dispatched")
                        self._inc(
                            "campaign.dispatch.payload_bytes", len(payload)
                        )
                        worker.chunk = {task.index: task for task in chunk}
                        worker.started_at = now
                        worker.last_beat = now
                        for task in chunk:
                            hooks.on_start(task.index, task.attempts)

                if draining and not any(worker.busy for worker in workers):
                    break

                # Wait on every live result pipe at once.
                readable = connection.wait(
                    [
                        worker.result_r
                        for worker in workers
                        if worker.process.is_alive() or worker.busy
                    ],
                    timeout=self.poll_s,
                )
                for pipe in readable:
                    worker = next(
                        candidate
                        for candidate in workers
                        if candidate.result_r is pipe
                    )
                    try:
                        message = pipe.recv()
                    except (EOFError, OSError):
                        # Pipe EOF — the worker is gone; fall through to
                        # the liveness scan below, which classifies it.
                        worker.process.join(timeout=0.1)
                        continue
                    handle_message(worker, message)
                    # Consume the backlog too: a chunk's results can
                    # queue up faster than one recv per loop turn.
                    drain_buffered(worker)

                # Liveness + deadline scan.
                for position, worker in enumerate(workers):
                    reason = None
                    crashed = not worker.process.is_alive()
                    if crashed and worker.busy:
                        code = worker.process.exitcode
                        reason = (
                            "WorkerCrashError",
                            f"worker process died (exit code {code}) while "
                            "running the point",
                        )
                        self._inc("campaign.workers.died")
                    elif not crashed:
                        why = self._deadline_for(worker, time.monotonic())
                        if why is not None:
                            self._kill(worker)
                            crashed = True
                            reason = ("WorkerStallError", why)
                            self._inc("campaign.workers.killed")
                    if crashed:
                        # Settle anything the worker streamed back before
                        # dying, then requeue exactly the unfinished
                        # remainder of the chunk.
                        drain_buffered(worker)
                        chunk_tasks = worker.chunk
                        worker.chunk = {}
                        for index in sorted(chunk_tasks):
                            settle_failure(chunk_tasks[index], *reason)
                        if remaining > 0 and not draining and not aborting:
                            workers[position] = self._spawn()
                            self._inc("campaign.workers.respawned")

            # Drain epilogue / abort epilogue.
            if remaining > 0:
                abandoned_any = True
                abandoned_reason = (
                    "campaign aborted" if aborting else "interrupted"
                )
                for worker in workers:
                    for index in sorted(worker.chunk):
                        hooks.on_abandoned(index, abandoned_reason)
                        remaining -= 1
                    worker.chunk = {}
                while ready:
                    task = ready.popleft()
                    hooks.on_abandoned(task.index, abandoned_reason)
                    remaining -= 1
            else:
                abandoned_any = False
        finally:
            for worker in workers:
                if worker.process.is_alive():
                    self._kill(worker)
                else:
                    worker.process.join(timeout=0.1)
                    for conn_end in (worker.task_w, worker.result_r):
                        try:
                            conn_end.close()
                        except OSError:  # pragma: no cover - already closed
                            pass
            for signum, handler in previous_handlers.items():
                try:
                    signal.signal(signum, handler)
                except (ValueError, OSError):  # pragma: no cover
                    pass

        # A Ctrl-C whose drain still finished every point is a complete
        # campaign; only an interrupt that left work behind propagates.
        if self._interrupts > 0 and abandoned_any:
            raise KeyboardInterrupt
