"""Parallel experiment-execution engine with content-addressed caching.

Every paper figure is a family of parametric curves, and every curve is
an embarrassingly parallel set of independent simulations.  This package
is the single choke point those families compile down to:

* :class:`Campaign` — deduplicates a batch of
  :class:`~repro.experiments.config.ExperimentConfig`\\ s, serves what it
  can from the on-disk cache, fans the rest out over a process pool,
  and isolates per-point failures as error records.
* :class:`ResultCache` — content-addressed storage keyed by a stable
  hash of the full config (faults included) plus a code-version salt.
* :class:`ProgressPrinter` / :class:`ProgressEvent` — optional progress
  callbacks for long campaigns.

The sweep/figure/replication helpers in :mod:`repro.experiments` are
thin shims over :meth:`Campaign.submit`; new code should build configs
and submit them directly (see docs/API.md for the old→new mapping).
"""

from .cache import ResultCache
from .engine import (
    Campaign,
    CampaignPointError,
    CampaignResult,
    CampaignStats,
    PointFailure,
    PointTimeoutError,
)
from .hashing import CODE_VERSION, canonical_config_json, config_digest
from .progress import ProgressEvent, ProgressPrinter

__all__ = [
    "CODE_VERSION",
    "Campaign",
    "CampaignPointError",
    "CampaignResult",
    "CampaignStats",
    "PointFailure",
    "PointTimeoutError",
    "ProgressEvent",
    "ProgressPrinter",
    "ResultCache",
    "canonical_config_json",
    "config_digest",
]
