"""Parallel experiment-execution engine with caching and crash safety.

Every paper figure is a family of parametric curves, and every curve is
an embarrassingly parallel set of independent simulations.  This package
is the single choke point those families compile down to:

* :class:`Campaign` — deduplicates a batch of
  :class:`~repro.experiments.config.ExperimentConfig`\\ s, serves what it
  can from the on-disk cache, fans the rest out over a supervised
  worker pool, and isolates per-point failures as error records.
* :class:`ResultCache` — content-addressed storage keyed by a stable
  hash of the full config (faults included) plus a code-version salt;
  quarantines corrupt entries and sweeps orphaned temp files.
* :class:`CampaignJournal` — durable ``repro-journal/1`` JSONL log of
  point lifecycle events enabling ``submit(..., resume=True)`` after a
  crash or Ctrl-C.
* :class:`SupervisedPool` — persistent heartbeat-monitored workers fed
  chunked point batches (one pickle per chunk, results streamed back
  per point), with kill-and-requeue hang handling, transient-failure
  retries with bounded exponential backoff, and graceful
  SIGINT/SIGTERM draining.
* :class:`ProgressPrinter` / :class:`ProgressEvent` — optional progress
  callbacks for long campaigns.

The sweep/figure/replication helpers in :mod:`repro.experiments` are
thin shims over :meth:`Campaign.submit`; new code should build configs
and submit them directly (see docs/API.md for the old→new mapping, and
docs/RELIABILITY.md for the journal format, resume workflow, and
failure taxonomy).
"""

from .cache import ResultCache
from .engine import (
    Campaign,
    CampaignPointError,
    CampaignResult,
    CampaignStats,
    PointFailure,
    PointTimeoutError,
)
from .hashing import CODE_VERSION, canonical_config_json, config_digest
from .journal import (
    JOURNAL_SCHEMA,
    CampaignJournal,
    JournalCompatError,
    JournalState,
)
from .progress import ProgressEvent, ProgressPrinter
from .supervisor import (
    TRANSIENT_ERRORS,
    SupervisedPool,
    SupervisorHooks,
    WorkerCrashError,
    WorkerStallError,
    auto_chunk_size,
    is_transient_error,
)

__all__ = [
    "CODE_VERSION",
    "JOURNAL_SCHEMA",
    "Campaign",
    "CampaignJournal",
    "CampaignPointError",
    "CampaignResult",
    "CampaignStats",
    "JournalCompatError",
    "JournalState",
    "PointFailure",
    "PointTimeoutError",
    "ProgressEvent",
    "ProgressPrinter",
    "ResultCache",
    "SupervisedPool",
    "SupervisorHooks",
    "TRANSIENT_ERRORS",
    "WorkerCrashError",
    "WorkerStallError",
    "auto_chunk_size",
    "canonical_config_json",
    "config_digest",
    "is_transient_error",
]
