"""The campaign engine: dedup, cache, fan out, isolate, survive.

:meth:`Campaign.submit` is the single public execution surface every
sweep, figure, and replication plan compiles down to.  Execution order
is an implementation detail; results are keyed by config, and a given
config's result is bit-identical whether it ran serially, in a worker
process, on a retry after its first worker was killed, or came from
the cache — workers receive the full config (seed included) and run
the exact same :func:`repro.api.run`.

Failure handling is layered:

* One crashed point produces a :class:`PointFailure` record instead of
  killing the batch (exceptions raised *inside* a worker are caught
  there and shipped back).
* A hard worker death (signal, ``os._exit``) or a wedged worker is
  detected by the :class:`~repro.campaign.supervisor.SupervisedPool`,
  which kills/replaces the worker and requeues the point with bounded
  exponential backoff — transient failures retry, deterministic
  exceptions do not (see
  :data:`~repro.campaign.supervisor.TRANSIENT_ERRORS`).
* With ``journal_path`` set, every point lifecycle event is appended
  durably to a ``repro-journal/1`` JSONL file; after a crash or
  Ctrl-C, ``submit(configs, resume=True)`` skips journaled-done points
  (served from the cache), requeues the ones the dead process left in
  flight, and carries attempt counts forward.
* ``abort_after`` consecutive point failures trip a breaker that stops
  the campaign loudly (remaining points become ``CampaignAborted``
  failure records) instead of grinding through a doomed grid.

Every reliability event (retry, worker kill, resume, abort, quarantined
cache entry) is counted in a :class:`~repro.obs.MetricRegistry` exposed
as :attr:`Campaign.metrics`.
"""

from __future__ import annotations

import os
import sys
import time
import warnings
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..experiments.config import ExperimentConfig
from ..experiments.runner import ExperimentResult
from ..obs import MetricRegistry
from ..rng import derive_seed
from .cache import ResultCache
from .execution import (
    PointTimeoutError,
    _execute_point,
    _wall_clock_limit,
    _warm_catalog_caches,
)
from .hashing import CODE_VERSION, config_digest
from .journal import CampaignJournal, JournalState
from .progress import ProgressCallback, ProgressEvent
from .supervisor import SupervisedPool, SupervisorHooks, is_transient_error

__all__ = [
    "Campaign",
    "CampaignPointError",
    "CampaignResult",
    "CampaignStats",
    "PointFailure",
    "PointTimeoutError",
]


@dataclass(frozen=True)
class PointFailure:
    """Error record of one failed campaign point."""

    config: ExperimentConfig
    error: str
    message: str
    traceback: str = ""
    #: Execution attempts consumed (0 when the point never started,
    #: e.g. abandoned by an abort).
    attempts: int = 1


@dataclass(frozen=True)
class CampaignStats:
    """Execution accounting of one submission."""

    submitted: int
    unique: int
    cache_hits: int
    executed: int
    failures: int
    duration_s: float
    #: Transient-failure retries performed (attempts beyond the first).
    retried: int = 0
    #: Cache hits that a resume's journal had already marked done.
    resumed_done: int = 0
    #: The consecutive-failure breaker stopped the campaign early.
    aborted: bool = False
    #: The campaign was interrupted (stats recorded before re-raise).
    interrupted: bool = False

    @property
    def hit_fraction(self) -> float:
        """Fraction of unique points served from cache."""
        return self.cache_hits / self.unique if self.unique else 0.0


def _catalog_warm_entries(configs, limit: int = 64) -> list:
    """Distinct catalog-builder arguments the batch will need.

    Mirrors the ``(spec, tape_count, capacity_mb, data_blocks,
    replicas)`` key of ``repro.experiments.runner._cached_catalog`` for
    every :class:`ExperimentConfig` in ``configs`` (farm/federation
    configs carry their own nested placement and are skipped — their
    points warm on demand).  Capped at ``limit`` (the runner cache
    size): warming more than the cache can hold would evict itself.
    """
    from ..layout.placement import PlacementSpec

    entries: list = []
    seen = set()
    for config in configs:
        if not isinstance(config, ExperimentConfig):
            continue
        try:
            spec = PlacementSpec(
                layout=config.layout,
                percent_hot=config.percent_hot,
                replicas=config.replicas,
                start_position=config.start_position,
                block_mb=config.block_mb,
                pack_cold=config.pack_cold,
            )
        except (AttributeError, TypeError, ValueError):
            continue
        entry = (
            spec,
            config.tape_count,
            config.capacity_mb,
            config.data_blocks,
            config.replicas,
        )
        if entry in seen:
            continue
        seen.add(entry)
        entries.append(entry)
        if len(entries) >= limit:
            break
    return entries


class CampaignPointError(RuntimeError):
    """Raised when a required campaign point failed to execute."""

    def __init__(self, failure: PointFailure) -> None:
        super().__init__(
            f"campaign point failed ({failure.error}: {failure.message}) "
            f"for {failure.config.describe()}"
        )
        self.failure = failure


class CampaignResult:
    """Results of one submission, keyed by configuration."""

    def __init__(
        self,
        configs: Sequence[ExperimentConfig],
        outcomes: Dict[ExperimentConfig, ExperimentResult],
        failures: Dict[ExperimentConfig, PointFailure],
        stats: CampaignStats,
        journal_path=None,
    ) -> None:
        self.configs: Tuple[ExperimentConfig, ...] = tuple(configs)
        self._outcomes = dict(outcomes)
        self._failures = dict(failures)
        self.stats = stats
        #: Where this submission journaled (None when journaling is off).
        self.journal_path = journal_path

    @property
    def results(self) -> Tuple[ExperimentResult, ...]:
        """Successful results in submission order."""
        return tuple(
            self._outcomes[config]
            for config in self.configs
            if config in self._outcomes
        )

    @property
    def failures(self) -> Tuple[PointFailure, ...]:
        """Error records in submission order."""
        return tuple(
            self._failures[config]
            for config in self.configs
            if config in self._failures
        )

    def result_for(self, config: ExperimentConfig) -> Optional[ExperimentResult]:
        """The result for ``config``, or ``None`` if it failed."""
        return self._outcomes.get(config)

    def failure_for(self, config: ExperimentConfig) -> Optional[PointFailure]:
        """The error record for ``config``, or ``None`` if it succeeded."""
        return self._failures.get(config)

    def require(self, config: ExperimentConfig) -> ExperimentResult:
        """The result for ``config``; raises if the point failed."""
        result = self._outcomes.get(config)
        if result is not None:
            return result
        failure = self._failures.get(config)
        if failure is not None:
            raise CampaignPointError(failure)
        raise KeyError(f"config was not part of this campaign: {config!r}")

    def __len__(self) -> int:
        return len(self.configs)

    def __iter__(self):
        return iter(self.results)


class Campaign:
    """Deduplicating, caching, supervised parallel executor of configs.

    Args:
        jobs: worker processes; 1 (the default) runs in-process.
        cache_dir: directory of the content-addressed result cache, or
            a ready :class:`ResultCache` instance; ``None`` disables
            caching.  Successful points are written to the cache *as
            they finish*, so a crash loses at most the in-flight work.
        progress: optional per-point callback (see
            :class:`~repro.campaign.progress.ProgressEvent`).
        runner: the function executed per config.  Must be picklable
            when ``jobs > 1`` (the default, :func:`repro.api.run`, is;
            it dispatches experiment, farm, and federation configs).
        salt: cache-key code-version salt (see
            :data:`~repro.campaign.hashing.CODE_VERSION`).
        point_timeout_s: wall-clock budget per executed point; a point
            that exceeds it yields a transient failure (error
            ``PointTimeoutError``) instead of hanging the batch, and —
            like every failure — is never written to the cache.
            ``None`` (the default) leaves points unbounded.
        journal_path: durable ``repro-journal/1`` JSONL file recording
            every point lifecycle event.  ``None`` disables journaling.
            A non-resume submission truncates and restarts the journal.
        resume: default for :meth:`submit`'s ``resume`` argument.
        max_attempts: total attempts per point for *transient* failures
            (worker death, stall, wall-clock timeout).  Deterministic
            exceptions never retry — rerunning the same seeded
            simulation would reproduce them.
        backoff_base_s / backoff_cap_s: exponential retry backoff
            (``base * 2**(attempt-1)``, capped).
        abort_after: trip a breaker after this many *consecutive*
            terminal point failures: remaining points become
            ``CampaignAborted`` failure records and the journal gets an
            ``abort`` event.  ``None`` (default) never aborts.
        metrics: a :class:`~repro.obs.MetricRegistry` to count
            reliability events into (default: a fresh private one,
            exposed as :attr:`metrics`).
        chunk_size: points per worker dispatch message under
            ``jobs > 1``; ``None`` (default) auto-sizes per batch (see
            :func:`~repro.campaign.supervisor.auto_chunk_size`).
            Retry, journal, and progress granularity stay per-point
            either way.
        supervisor_options: extra keyword arguments for the
            :class:`~repro.campaign.supervisor.SupervisedPool`
            (``heartbeat_s``, ``stall_timeout_s``, ``hang_grace_s``,
            ``drain_grace_s``, ``poll_s``, ``mp_context``).
        profile_dir: when set, every *executed* point (cache hits are
            exempt) runs under :mod:`cProfile` and dumps its raw stats
            to ``<profile_dir>/<config_digest[:16]>.prof``.  The
            directory is created on construction.
        trace_dir: when set, every *executed* point runs with a
            :class:`~repro.obs.Tracer` attached (if the runner accepts
            an ``obs`` keyword) and dumps
            ``<trace_dir>/<config_digest[:16]>.trace.json`` (Chrome
            trace-event) plus ``....summary.json``.  Cache hits produce
            no trace — tracing rides on execution, and does not alter
            cache keys or results (traced runs are bit-identical).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir=None,
        progress: Optional[ProgressCallback] = None,
        runner: Optional[Callable[[ExperimentConfig], ExperimentResult]] = None,
        salt: str = CODE_VERSION,
        point_timeout_s: Optional[float] = None,
        journal_path=None,
        resume: bool = False,
        max_attempts: int = 3,
        backoff_base_s: float = 0.25,
        backoff_cap_s: float = 30.0,
        abort_after: Optional[int] = None,
        metrics: Optional[MetricRegistry] = None,
        chunk_size: Optional[int] = None,
        supervisor_options: Optional[dict] = None,
        profile_dir: Optional[str] = None,
        trace_dir: Optional[str] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs!r}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size!r}")
        cpu_count = os.cpu_count() or 1
        if jobs > cpu_count:
            warnings.warn(
                f"jobs={jobs} exceeds this machine's {cpu_count} CPU(s); "
                "workers will timeshare cores, so parallel 'speedup' "
                "measures oversubscription, not throughput",
                RuntimeWarning,
                stacklevel=2,
            )
        if point_timeout_s is not None and point_timeout_s <= 0:
            raise ValueError(
                f"point_timeout_s must be positive, got {point_timeout_s!r}"
            )
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts!r}")
        if abort_after is not None and abort_after < 1:
            raise ValueError(f"abort_after must be >= 1, got {abort_after!r}")
        self.jobs = jobs
        self.chunk_size = chunk_size
        self.point_timeout_s = point_timeout_s
        self.salt = salt
        self.journal_path = journal_path
        self.resume = resume
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.abort_after = abort_after
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self.supervisor_options = dict(supervisor_options or {})
        self.profile_dir = profile_dir
        if profile_dir is not None:
            os.makedirs(profile_dir, exist_ok=True)
        self.trace_dir = trace_dir
        if trace_dir is not None:
            os.makedirs(trace_dir, exist_ok=True)
        if cache_dir is None:
            self.cache: Optional[ResultCache] = None
        elif isinstance(cache_dir, ResultCache):
            self.cache = cache_dir
            self.cache.metrics = self.metrics
        else:
            self.cache = ResultCache(cache_dir, salt=salt, metrics=self.metrics)
        self.progress = progress
        if runner is None:
            # The unified facade: experiment, farm, and federation
            # configs all execute through one picklable entry point.
            # Imported lazily — repro.api sits above this package.
            from ..api import run

            runner = run
        self.runner = runner
        #: Stats of the most recent :meth:`submit` (None before any).
        self.last_stats: Optional[CampaignStats] = None
        #: Dispatch-overhead accounting of the most recent parallel
        #: :meth:`submit` (payload bytes, chunk counts, worker startup
        #: ms — see ``SupervisedPool.overhead``); None for serial runs.
        self.last_overhead: Optional[dict] = None

    @staticmethod
    def derive_variants(
        config: ExperimentConfig, count: int, stream: str = "replication"
    ) -> List[ExperimentConfig]:
        """``count`` copies of ``config`` under deterministic derived seeds.

        Seed ``i`` is ``derive_seed(config.seed, f"{stream}:{i}")``, so
        the variant set depends only on the root seed and the stream
        name — identical across processes, sessions, and machines.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count!r}")
        return [
            config.with_(seed=derive_seed(config.seed, f"{stream}:{index}") % (2**31))
            for index in range(count)
        ]

    # ------------------------------------------------------------------
    def submit(
        self,
        configs: Iterable[ExperimentConfig],
        resume: Optional[bool] = None,
    ) -> CampaignResult:
        """Execute every distinct config and return the keyed results.

        Args:
            resume: adopt the journal's prior state — skip points it
                marked done (their results come from the cache), requeue
                the ones it left in flight, and carry attempt counts
                forward.  ``None`` uses the campaign's default.

        Raises:
            KeyboardInterrupt: re-raised after a SIGINT/SIGTERM drain;
                by then finished points are cached, the journal carries
                an ``interrupted`` event, and a resume hint has been
                printed to stderr.
        """
        resume = self.resume if resume is None else bool(resume)
        submitted = list(configs)
        unique = list(dict.fromkeys(submitted))
        started = time.monotonic()
        outcomes: Dict[ExperimentConfig, ExperimentResult] = {}
        failures: Dict[ExperimentConfig, PointFailure] = {}
        state = _SubmissionState(
            campaign=self,
            unique=unique,
            outcomes=outcomes,
            failures=failures,
        )

        journal: Optional[CampaignJournal] = None
        prior: Optional[JournalState] = None
        if self.journal_path is not None:
            journal = CampaignJournal(self.journal_path, salt=self.salt)
            if resume and journal.exists():
                prior = journal.load_state()
            journal.open(fresh=not resume)
        state.journal = journal

        pending: List[ExperimentConfig] = []
        prior_attempts: Dict[ExperimentConfig, int] = {}
        requeued_in_flight = 0
        failed_retried = 0
        for config in unique:
            digest = config_digest(config, salt=self.salt)
            state.digests[config] = digest
            cached = self.cache.get(config) if self.cache is not None else None
            if cached is not None:
                outcomes[config] = cached
                state.hits += 1
                self.metrics.inc("campaign.points.cache_hits")
                if prior is not None and digest in prior.done:
                    state.resumed_done += 1
                    self.metrics.inc("campaign.resume.done_skipped")
                state.record("hit", config)
                continue
            attempts = 0
            if prior is not None:
                fate = prior.classify(digest)
                if fate == "done":
                    # Journal says done but the cache cannot prove it —
                    # the entry is missing or was quarantined; re-run.
                    self.metrics.inc("campaign.resume.done_missing_cache")
                elif fate == "in-flight":
                    attempts = prior.attempts.get(digest, 0)
                    journal.record_requeued(digest, attempts, "resume")
                    requeued_in_flight += 1
                    self.metrics.inc("campaign.resume.requeued_in_flight")
                elif fate == "failed":
                    failed_retried += 1
                    self.metrics.inc("campaign.resume.failed_retried")
            pending.append(config)
            prior_attempts[config] = attempts
        if journal is not None and resume and prior is not None:
            journal.record_resume(
                done=state.resumed_done,
                in_flight=requeued_in_flight,
                failed=failed_retried,
            )

        state.pending = pending
        hooks = state.hooks()
        try:
            if self.jobs > 1 and len(pending) > 1:
                warm_entries = _catalog_warm_entries(pending)
                pool = SupervisedPool(
                    jobs=self.jobs,
                    runner=self.runner,
                    point_timeout_s=self.point_timeout_s,
                    profile_dir=self.profile_dir,
                    trace_dir=self.trace_dir,
                    max_attempts=self.max_attempts,
                    backoff_base_s=self.backoff_base_s,
                    backoff_cap_s=self.backoff_cap_s,
                    metrics=self.metrics,
                    chunk_size=self.chunk_size,
                    initializer=(
                        _warm_catalog_caches if warm_entries else None
                    ),
                    initializer_args=(
                        (warm_entries,) if warm_entries else ()
                    ),
                    **self.supervisor_options,
                )
                try:
                    pool.run(
                        [
                            (index, config, prior_attempts[config])
                            for index, config in enumerate(pending)
                        ],
                        hooks,
                    )
                finally:
                    self.last_overhead = pool.overhead
            else:
                self.last_overhead = None
                self._run_serial(pending, prior_attempts, hooks, state)
        except KeyboardInterrupt:
            self.metrics.inc("campaign.interrupts")
            unfinished = len(unique) - len(outcomes) - len(failures)
            if journal is not None:
                journal.record_interrupted(unfinished)
                print(
                    f"campaign interrupted: {unfinished} of {len(unique)} "
                    f"points unfinished; journal at {journal.path} — "
                    "resubmit with resume=True to continue",
                    file=sys.stderr,
                )
            self.last_stats = self._stats(
                submitted, unique, state, started, interrupted=True
            )
            raise
        finally:
            if journal is not None:
                if journal.broken is not None:
                    warnings.warn(
                        f"campaign journal degraded ({journal.broken}); "
                        "resume information may be incomplete",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                journal.close()

        stats = self._stats(submitted, unique, state, started)
        self.last_stats = stats
        return CampaignResult(
            unique,
            outcomes,
            failures,
            stats,
            journal_path=journal.path if journal is not None else None,
        )

    # ------------------------------------------------------------------
    def _stats(
        self, submitted, unique, state, started, interrupted: bool = False
    ) -> CampaignStats:
        return CampaignStats(
            submitted=len(submitted),
            unique=len(unique),
            cache_hits=state.hits,
            executed=len(state.pending),
            failures=len(state.failures),
            duration_s=time.monotonic() - started,
            retried=state.retried,
            resumed_done=state.resumed_done,
            aborted=state.aborted,
            interrupted=interrupted,
        )

    def store(self, config: ExperimentConfig, result: ExperimentResult) -> None:
        """Write one finished result to the cache, tolerating I/O errors.

        A full disk must not fail the point — the result is still
        returned in memory; the miss is counted
        (``campaign.cache.write_errors``) and warned about.
        """
        if self.cache is None:
            return
        try:
            self.cache.put(result)
        except OSError as error:
            self.metrics.inc("campaign.cache.write_errors")
            warnings.warn(
                f"result cache write failed for {config.describe()}: "
                f"{error}",
                RuntimeWarning,
                stacklevel=2,
            )

    def _run_serial(self, pending, prior_attempts, hooks, state) -> None:
        """In-process execution with the same retry/abort semantics."""
        queue = deque(
            (index, config, prior_attempts[config])
            for index, config in enumerate(pending)
        )
        while queue:
            index, config, attempts = queue.popleft()
            attempts += 1
            hooks.on_start(index, attempts)
            point_started = time.perf_counter()
            _index, status, payload = _execute_point(
                (
                    index,
                    config,
                    self.runner,
                    self.point_timeout_s,
                    self.profile_dir,
                    self.trace_dir,
                )
            )
            hooks.on_wall(index, time.perf_counter() - point_started)
            if status != "ok" and (
                is_transient_error(payload[0]) and attempts < self.max_attempts
            ):
                hooks.on_retry(index, attempts, payload[0], payload[1])
                time.sleep(
                    min(
                        self.backoff_cap_s,
                        self.backoff_base_s * (2 ** (attempts - 1)),
                    )
                )
                queue.append((index, config, attempts))
                continue
            keep_going = hooks.on_final(index, status, payload, attempts)
            if keep_going is False:
                while queue:
                    abandoned_index, _config, _attempts = queue.popleft()
                    hooks.on_abandoned(abandoned_index, "campaign aborted")
                break


class _SubmissionState:
    """Mutable bookkeeping of one ``submit`` call, shared with hooks."""

    def __init__(self, campaign, unique, outcomes, failures) -> None:
        self.campaign = campaign
        self.unique = unique
        self.outcomes = outcomes
        self.failures = failures
        self.digests: Dict[ExperimentConfig, str] = {}
        self.pending: List[ExperimentConfig] = []
        self.journal: Optional[CampaignJournal] = None
        self.hits = 0
        self.retried = 0
        self.resumed_done = 0
        self.aborted = False
        self.finished = 0
        self.consecutive_failures = 0
        self.start_times: Dict[int, float] = {}
        #: Worker-measured execution seconds, streamed per point; used
        #: for journal wall times in preference to the parent-side
        #: dispatch-to-final interval (which includes queue time).
        self.wall_s: Dict[int, float] = {}

    # -- progress ------------------------------------------------------
    def emit(self, kind: str, config, attempt: int = 1) -> None:
        if self.campaign.progress is not None:
            self.campaign.progress(
                ProgressEvent(
                    kind=kind,
                    config=config,
                    completed=self.finished,
                    total=len(self.unique),
                    attempt=attempt,
                )
            )

    def record(self, kind: str, config, attempt: int = 1) -> None:
        self.finished += 1
        self.emit(kind, config, attempt)

    # -- supervisor hooks ----------------------------------------------
    def hooks(self) -> SupervisorHooks:
        return SupervisorHooks(
            on_start=self.on_start,
            on_retry=self.on_retry,
            on_final=self.on_final,
            on_abandoned=self.on_abandoned,
            on_wall=self.on_wall,
        )

    def on_wall(self, index: int, wall_s: float) -> None:
        self.wall_s[index] = wall_s

    def on_start(self, index: int, attempt: int) -> None:
        config = self.pending[index]
        self.start_times[index] = time.monotonic()
        if self.journal is not None:
            self.journal.record_start(self.digests[config], attempt)

    def on_retry(self, index: int, attempt: int, error: str, message: str) -> None:
        config = self.pending[index]
        self.retried += 1
        self.campaign.metrics.inc("campaign.points.retried")
        if self.journal is not None:
            self.journal.record_requeued(self.digests[config], attempt, error)
        self.emit("retry", config, attempt)

    def on_final(self, index: int, status: str, payload, attempts: int) -> bool:
        config = self.pending[index]
        campaign = self.campaign
        wall_s = self.wall_s.pop(index, None)
        if wall_s is None:
            wall_s = time.monotonic() - self.start_times.get(
                index, time.monotonic()
            )
        if status == "ok":
            self.outcomes[config] = payload
            self.consecutive_failures = 0
            campaign.metrics.inc("campaign.points.executed")
            if self.journal is not None:
                self.journal.record_done(self.digests[config], attempts, wall_s)
            campaign.store(config, payload)
            self.record("done", config, attempts)
            return True
        error, message, trace = payload
        self.failures[config] = PointFailure(
            config=config,
            error=error,
            message=message,
            traceback=trace,
            attempts=attempts,
        )
        campaign.metrics.inc("campaign.points.failed")
        if self.journal is not None:
            self.journal.record_failed(self.digests[config], attempts, error)
        self.record("error", config, attempts)
        self.consecutive_failures += 1
        if (
            campaign.abort_after is not None
            and self.consecutive_failures >= campaign.abort_after
            and not self.aborted
        ):
            self.aborted = True
            campaign.metrics.inc("campaign.aborts")
            if self.journal is not None:
                self.journal.record_abort(
                    f"{self.consecutive_failures} consecutive point failures"
                )
            return False
        return True

    def on_abandoned(self, index: int, reason: str) -> None:
        config = self.pending[index]
        if reason == "campaign aborted":
            self.failures[config] = PointFailure(
                config=config,
                error="CampaignAborted",
                message=(
                    "not executed: the campaign breaker tripped after "
                    "consecutive failures"
                ),
                attempts=0,
            )
            self.campaign.metrics.inc("campaign.points.failed")
            if self.journal is not None:
                self.journal.record_failed(
                    self.digests[config], 0, "CampaignAborted"
                )
            self.record("error", config, 0)
        else:
            # Interrupted: leave the point unfinished but journaled as
            # in flight so a resume picks it back up.
            if self.journal is not None:
                self.journal.record_requeued(
                    self.digests[config], 0, "interrupted"
                )
