"""The campaign engine: dedup, cache, fan out, isolate failures.

:meth:`Campaign.submit` is the single public execution surface every
sweep, figure, and replication plan compiles down to.  Execution order
is an implementation detail; results are keyed by config, and a given
config's result is bit-identical whether it ran serially, in a worker
process, or came from the cache — workers receive the full config
(seed included) and run the exact same :func:`run_experiment`.

Failure isolation: one crashed point produces a :class:`PointFailure`
record instead of killing the batch.  Exceptions raised *inside* a
worker are caught there and shipped back; a hard worker death (signal,
``os._exit``) breaks the pool, in which case the still-unfinished
points are re-run serially in-process, each under its own try/except.
"""

from __future__ import annotations

import contextlib
import cProfile
import os
import signal
import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..experiments.config import ExperimentConfig
from ..experiments.runner import ExperimentResult, run_experiment
from ..rng import derive_seed
from .cache import ResultCache
from .hashing import CODE_VERSION, config_digest
from .progress import ProgressCallback, ProgressEvent

__all__ = [
    "Campaign",
    "CampaignPointError",
    "CampaignResult",
    "CampaignStats",
    "PointFailure",
    "PointTimeoutError",
]


class PointTimeoutError(Exception):
    """A campaign point exceeded its wall-clock budget."""


@contextlib.contextmanager
def _wall_clock_limit(timeout_s: Optional[float]):
    """Raise :class:`PointTimeoutError` after ``timeout_s`` real seconds.

    Implemented with ``SIGALRM``/``setitimer``, which interrupts a hung
    simulation loop without cooperation from the running code.  Pool
    tasks execute on each worker process's main thread, so the signal
    lands in the right place; on platforms without ``setitimer``
    (Windows) or off the main thread the limit degrades to a no-op
    rather than failing the point.
    """
    if (
        timeout_s is None
        or not hasattr(signal, "setitimer")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_alarm(signum, frame):
        raise PointTimeoutError(
            f"campaign point exceeded {timeout_s:g}s wall-clock"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@dataclass(frozen=True)
class PointFailure:
    """Error record of one failed campaign point."""

    config: ExperimentConfig
    error: str
    message: str
    traceback: str = ""


@dataclass(frozen=True)
class CampaignStats:
    """Execution accounting of one submission."""

    submitted: int
    unique: int
    cache_hits: int
    executed: int
    failures: int
    duration_s: float

    @property
    def hit_fraction(self) -> float:
        """Fraction of unique points served from cache."""
        return self.cache_hits / self.unique if self.unique else 0.0


class CampaignPointError(RuntimeError):
    """Raised when a required campaign point failed to execute."""

    def __init__(self, failure: PointFailure) -> None:
        super().__init__(
            f"campaign point failed ({failure.error}: {failure.message}) "
            f"for {failure.config.describe()}"
        )
        self.failure = failure


class CampaignResult:
    """Results of one submission, keyed by configuration."""

    def __init__(
        self,
        configs: Sequence[ExperimentConfig],
        outcomes: Dict[ExperimentConfig, ExperimentResult],
        failures: Dict[ExperimentConfig, PointFailure],
        stats: CampaignStats,
    ) -> None:
        self.configs: Tuple[ExperimentConfig, ...] = tuple(configs)
        self._outcomes = dict(outcomes)
        self._failures = dict(failures)
        self.stats = stats

    @property
    def results(self) -> Tuple[ExperimentResult, ...]:
        """Successful results in submission order."""
        return tuple(
            self._outcomes[config]
            for config in self.configs
            if config in self._outcomes
        )

    @property
    def failures(self) -> Tuple[PointFailure, ...]:
        """Error records in submission order."""
        return tuple(
            self._failures[config]
            for config in self.configs
            if config in self._failures
        )

    def result_for(self, config: ExperimentConfig) -> Optional[ExperimentResult]:
        """The result for ``config``, or ``None`` if it failed."""
        return self._outcomes.get(config)

    def failure_for(self, config: ExperimentConfig) -> Optional[PointFailure]:
        """The error record for ``config``, or ``None`` if it succeeded."""
        return self._failures.get(config)

    def require(self, config: ExperimentConfig) -> ExperimentResult:
        """The result for ``config``; raises if the point failed."""
        result = self._outcomes.get(config)
        if result is not None:
            return result
        failure = self._failures.get(config)
        if failure is not None:
            raise CampaignPointError(failure)
        raise KeyError(f"config was not part of this campaign: {config!r}")

    def __len__(self) -> int:
        return len(self.configs)

    def __iter__(self):
        return iter(self.results)


def _dump_trace(trace_dir: str, config: ExperimentConfig, tracer) -> None:
    """Write one executed point's trace artifacts into ``trace_dir``.

    Two files per point, named by config digest: ``<digest>.trace.json``
    (Chrome trace-event JSON, Perfetto-loadable) and
    ``<digest>.summary.json`` (:class:`~repro.obs.TraceSummary`).
    """
    import json

    from ..obs import TraceSummary, write_chrome_trace

    digest = config_digest(config)[:16]
    write_chrome_trace(
        tracer, os.path.join(trace_dir, f"{digest}.trace.json")
    )
    summary = TraceSummary.from_tracer(tracer, warmup_s=config.warmup_s)
    with open(
        os.path.join(trace_dir, f"{digest}.summary.json"), "w", encoding="utf-8"
    ) as handle:
        json.dump(summary.to_dict(), handle, indent=2, sort_keys=True)


def _execute_point(
    item: Tuple[
        int,
        ExperimentConfig,
        Callable,
        Optional[float],
        Optional[str],
        Optional[str],
    ]
) -> tuple:
    """Run one point; never raises (errors are shipped back as data).

    When ``profile_dir`` is set the point runs under :mod:`cProfile`
    and its raw stats are dumped to ``<config_digest[:16]>.prof`` in
    that directory (the dump happens in the worker process, so profiles
    work with ``jobs > 1``).  When ``trace_dir`` is set and the runner
    accepts an ``obs`` keyword (the default :func:`run_experiment`
    does), the point runs with a :class:`~repro.obs.Tracer` attached
    and its trace artifacts are dumped there, also worker-side.  Cache
    hits never reach this function, so every artifact reflects an
    actual execution.
    """
    index, config, runner, timeout_s, profile_dir, trace_dir = item
    try:
        tracer = None
        run = runner
        if trace_dir is not None:
            import inspect

            if "obs" in inspect.signature(runner).parameters:
                from ..obs import Tracer

                tracer = Tracer()
                run = lambda point: runner(point, obs=tracer)  # noqa: E731
        with _wall_clock_limit(timeout_s):
            if profile_dir is None:
                result = run(config)
            else:
                profiler = cProfile.Profile()
                result = profiler.runcall(run, config)
        if profile_dir is not None:
            profiler.dump_stats(
                os.path.join(profile_dir, f"{config_digest(config)[:16]}.prof")
            )
        if tracer is not None:
            _dump_trace(trace_dir, config, tracer)
        return (index, "ok", result)
    except BaseException as exc:  # noqa: BLE001 - isolation is the point
        return (
            index,
            "error",
            (type(exc).__name__, str(exc), traceback.format_exc()),
        )


class Campaign:
    """Deduplicating, caching, parallel executor of experiment configs.

    Args:
        jobs: worker processes; 1 (the default) runs in-process.
        cache_dir: directory of the content-addressed result cache;
            ``None`` disables caching.
        progress: optional per-point callback (see
            :class:`~repro.campaign.progress.ProgressEvent`).
        runner: the function executed per config.  Must be picklable
            when ``jobs > 1`` (the default, :func:`run_experiment`, is).
        salt: cache-key code-version salt (see
            :data:`~repro.campaign.hashing.CODE_VERSION`).
        point_timeout_s: wall-clock budget per executed point; a point
            that exceeds it yields a :class:`PointFailure` (error
            ``PointTimeoutError``) instead of hanging the batch, and —
            like every failure — is never written to the cache.
            ``None`` (the default) leaves points unbounded.
        profile_dir: when set, every *executed* point (cache hits are
            exempt) runs under :mod:`cProfile` and dumps its raw stats
            to ``<profile_dir>/<config_digest[:16]>.prof``.  The
            directory is created on construction.
        trace_dir: when set, every *executed* point runs with a
            :class:`~repro.obs.Tracer` attached (if the runner accepts
            an ``obs`` keyword) and dumps
            ``<trace_dir>/<config_digest[:16]>.trace.json`` (Chrome
            trace-event) plus ``....summary.json``.  Cache hits produce
            no trace — tracing rides on execution, and does not alter
            cache keys or results (traced runs are bit-identical).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir=None,
        progress: Optional[ProgressCallback] = None,
        runner: Callable[[ExperimentConfig], ExperimentResult] = run_experiment,
        salt: str = CODE_VERSION,
        point_timeout_s: Optional[float] = None,
        profile_dir: Optional[str] = None,
        trace_dir: Optional[str] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs!r}")
        if point_timeout_s is not None and point_timeout_s <= 0:
            raise ValueError(
                f"point_timeout_s must be positive, got {point_timeout_s!r}"
            )
        self.jobs = jobs
        self.point_timeout_s = point_timeout_s
        self.profile_dir = profile_dir
        if profile_dir is not None:
            os.makedirs(profile_dir, exist_ok=True)
        self.trace_dir = trace_dir
        if trace_dir is not None:
            os.makedirs(trace_dir, exist_ok=True)
        self.cache = ResultCache(cache_dir, salt=salt) if cache_dir else None
        self.progress = progress
        self.runner = runner
        #: Stats of the most recent :meth:`submit` (None before any).
        self.last_stats: Optional[CampaignStats] = None

    @staticmethod
    def derive_variants(
        config: ExperimentConfig, count: int, stream: str = "replication"
    ) -> List[ExperimentConfig]:
        """``count`` copies of ``config`` under deterministic derived seeds.

        Seed ``i`` is ``derive_seed(config.seed, f"{stream}:{i}")``, so
        the variant set depends only on the root seed and the stream
        name — identical across processes, sessions, and machines.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count!r}")
        return [
            config.with_(seed=derive_seed(config.seed, f"{stream}:{index}") % (2**31))
            for index in range(count)
        ]

    def submit(self, configs: Iterable[ExperimentConfig]) -> CampaignResult:
        """Execute every distinct config and return the keyed results."""
        submitted = list(configs)
        unique = list(dict.fromkeys(submitted))
        started = time.monotonic()
        outcomes: Dict[ExperimentConfig, ExperimentResult] = {}
        failures: Dict[ExperimentConfig, PointFailure] = {}
        finished = 0

        def record(kind: str, config: ExperimentConfig) -> None:
            nonlocal finished
            finished += 1
            if self.progress is not None:
                self.progress(
                    ProgressEvent(
                        kind=kind,
                        config=config,
                        completed=finished,
                        total=len(unique),
                    )
                )

        pending: List[ExperimentConfig] = []
        hits = 0
        for config in unique:
            cached = self.cache.get(config) if self.cache is not None else None
            if cached is not None:
                outcomes[config] = cached
                hits += 1
                record("hit", config)
            else:
                pending.append(config)

        if self.jobs > 1 and len(pending) > 1:
            self._run_parallel(pending, outcomes, failures, record)
        else:
            for config in pending:
                self._run_one(config, outcomes, failures, record)

        if self.cache is not None:
            for config in pending:
                result = outcomes.get(config)
                if result is not None:
                    self.cache.put(result)

        stats = CampaignStats(
            submitted=len(submitted),
            unique=len(unique),
            cache_hits=hits,
            executed=len(pending),
            failures=len(failures),
            duration_s=time.monotonic() - started,
        )
        self.last_stats = stats
        return CampaignResult(unique, outcomes, failures, stats)

    # ------------------------------------------------------------------
    def _run_one(self, config, outcomes, failures, record) -> None:
        _index, status, payload = _execute_point(
            (
                0,
                config,
                self.runner,
                self.point_timeout_s,
                self.profile_dir,
                self.trace_dir,
            )
        )
        self._absorb(config, status, payload, outcomes, failures, record)

    def _absorb(self, config, status, payload, outcomes, failures, record) -> None:
        if status == "ok":
            outcomes[config] = payload
            record("done", config)
        else:
            error, message, trace = payload
            failures[config] = PointFailure(
                config=config, error=error, message=message, traceback=trace
            )
            record("error", config)

    def _run_parallel(self, pending, outcomes, failures, record) -> None:
        unfinished = set(range(len(pending)))
        workers = min(self.jobs, len(pending))
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(
                        _execute_point,
                        (
                            index,
                            config,
                            self.runner,
                            self.point_timeout_s,
                            self.profile_dir,
                            self.trace_dir,
                        ),
                    ): index
                    for index, config in enumerate(pending)
                }
                for future in as_completed(futures):
                    index, status, payload = future.result()
                    unfinished.discard(index)
                    self._absorb(
                        pending[index], status, payload, outcomes, failures, record
                    )
        except (BrokenProcessPool, OSError):
            # A worker died hard (signal/os._exit) and took the pool
            # with it; finish the stragglers serially, each isolated.
            for index in sorted(unfinished):
                self._run_one(pending[index], outcomes, failures, record)
