"""Progress reporting for long campaigns.

A campaign accepts one callback, called once per finished point (cache
hit, simulated, or failed) with a :class:`ProgressEvent`.  The callback
runs in the submitting process — never inside a worker — so it may
freely print, update a UI, or append to a log.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Callable, Optional, TextIO

from ..experiments.config import ExperimentConfig

__all__ = ["ProgressEvent", "ProgressPrinter"]


@dataclass(frozen=True)
class ProgressEvent:
    """One campaign point status change.

    Attributes:
        kind: ``"hit"`` (served from cache), ``"done"`` (simulated),
            ``"error"`` (the point failed terminally; see the
            campaign's failures), or ``"retry"`` (a transient failure —
            killed worker, stall, wall-clock timeout — was requeued;
            the point is *not* finished and ``completed`` does not
            advance).
        config: the point's configuration.
        completed: points finished so far (this one included, except
            for ``"retry"`` events).
        total: unique points in the submission.
        attempt: execution attempts consumed for this point so far.
    """

    kind: str
    config: ExperimentConfig
    completed: int
    total: int
    attempt: int = 1


#: Signature of a campaign progress callback.
ProgressCallback = Callable[[ProgressEvent], None]


class ProgressPrinter:
    """A callback printing one status line per finished point."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr

    def __call__(self, event: ProgressEvent) -> None:
        """Print ``[done/total] kind <config annotation>``."""
        print(
            f"[{event.completed}/{event.total}] {event.kind:5s} "
            f"{event.config.describe()}",
            file=self.stream,
        )
