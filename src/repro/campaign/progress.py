"""Progress reporting for long campaigns.

A campaign accepts one callback, called once per finished point (cache
hit, simulated, or failed) with a :class:`ProgressEvent`.  The callback
runs in the submitting process — never inside a worker — so it may
freely print, update a UI, or append to a log.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Callable, Optional, TextIO

from ..experiments.config import ExperimentConfig

__all__ = ["ProgressEvent", "ProgressPrinter"]


@dataclass(frozen=True)
class ProgressEvent:
    """One finished campaign point.

    Attributes:
        kind: ``"hit"`` (served from cache), ``"done"`` (simulated), or
            ``"error"`` (the point failed; see the campaign's failures).
        config: the point's configuration.
        completed: points finished so far, this one included.
        total: unique points in the submission.
    """

    kind: str
    config: ExperimentConfig
    completed: int
    total: int


#: Signature of a campaign progress callback.
ProgressCallback = Callable[[ProgressEvent], None]


class ProgressPrinter:
    """A callback printing one status line per finished point."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr

    def __call__(self, event: ProgressEvent) -> None:
        """Print ``[done/total] kind <config annotation>``."""
        print(
            f"[{event.completed}/{event.total}] {event.kind:5s} "
            f"{event.config.describe()}",
            file=self.stream,
        )
