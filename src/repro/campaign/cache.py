"""Content-addressed on-disk cache of finished experiment results.

One JSON file per result, at ``<root>/<aa>/<digest>.json`` where
``digest`` is :func:`~repro.campaign.hashing.config_digest` of the
config (two-character sharding keeps directories small on big sweeps).
Files are the same versioned documents :mod:`repro.experiments.store`
writes, so a cache entry can also be inspected or loaded by hand.

Every read is defensive: a missing file, unparsable JSON, a format or
schema-version mismatch, or a stored config that does not equal the
requested one (hash collision or salt misuse) all count as a miss —
the point is then re-simulated and the entry overwritten.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional, Union

from ..experiments.config import ExperimentConfig
from ..experiments.runner import ExperimentResult
from ..experiments.store import result_from_dict, result_to_dict
from .hashing import CODE_VERSION, config_digest


class ResultCache:
    """Content-addressed store of :class:`ExperimentResult` documents."""

    def __init__(self, root: Union[str, Path], salt: str = CODE_VERSION) -> None:
        self.root = Path(root)
        self.salt = salt

    def path_for(self, config: ExperimentConfig) -> Path:
        """Where ``config``'s result lives (whether or not it exists)."""
        digest = config_digest(config, salt=self.salt)
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, config: ExperimentConfig) -> Optional[ExperimentResult]:
        """The cached result for ``config``, or ``None`` on any miss."""
        path = self.path_for(config)
        try:
            payload = json.loads(path.read_text())
            result = result_from_dict(payload)
        except (OSError, ValueError, KeyError, TypeError):
            # Missing, corrupt, stale-version, or stale-schema entries
            # are silently treated as misses and later overwritten.
            return None
        if result.config != config:
            return None
        return result

    def put(self, result: ExperimentResult) -> Path:
        """Store ``result`` (atomically) and return its path."""
        path = self.path_for(result.config)
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        temp.write_text(json.dumps(result_to_dict(result), sort_keys=True))
        os.replace(temp, path)
        return path

    def invalidate(self, config: ExperimentConfig) -> bool:
        """Drop ``config``'s entry; True when one existed."""
        path = self.path_for(config)
        try:
            path.unlink()
            return True
        except FileNotFoundError:
            return False

    def __len__(self) -> int:
        """Number of stored entries (walks the shard directories)."""
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
