"""Content-addressed on-disk cache of finished experiment results.

One JSON file per result, at ``<root>/<aa>/<digest>.json`` where
``digest`` is :func:`~repro.campaign.hashing.config_digest` of the
config (two-character sharding keeps directories small on big sweeps).
Files are the same versioned documents :mod:`repro.experiments.store`
writes, so a cache entry can also be inspected or loaded by hand.

Every read is defensive: a missing file, a format or schema-version
mismatch, or a stored config that does not equal the requested one
(hash collision or salt misuse) all count as a miss — the point is
then re-simulated and the entry overwritten.  An entry that fails to
*parse* (torn write, chaos-injected corruption, bit rot) is not
silently overwritten: it is quarantined by renaming to
``<digest>.json.corrupt`` so post-mortems keep the evidence, counted
on :attr:`ResultCache.quarantined`, and then treated as a miss.

Writes are crash-safe (write to ``.<name>.<pid>.tmp``, then atomic
``os.replace``), which means a writer killed between the two steps
leaves an orphaned temp file behind.  :meth:`ResultCache.clean` sweeps
those; construction runs it automatically with a one-hour age guard so
a *concurrently running* writer's temp file is never swept.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Optional, Union

from ..experiments.config import ExperimentConfig
from ..experiments.runner import ExperimentResult
from ..experiments.store import result_from_dict, result_to_dict
from .hashing import CODE_VERSION, config_digest

#: Age (seconds) a temp file must reach before the construction-time
#: sweep removes it; explicit :meth:`ResultCache.clean` calls use 0.
ORPHAN_TMP_AGE_S = 3600.0


class ResultCache:
    """Content-addressed store of :class:`ExperimentResult` documents.

    Args:
        root: cache directory (created lazily on first write).
        salt: code-version salt mixed into every key.
        metrics: optional :class:`~repro.obs.MetricRegistry`; the cache
            counts ``campaign.cache.quarantined`` and
            ``campaign.cache.orphans_removed`` into it.
        sweep_orphans: run :meth:`clean` (with the age guard) on
            construction.
    """

    def __init__(
        self,
        root: Union[str, Path],
        salt: str = CODE_VERSION,
        metrics=None,
        sweep_orphans: bool = True,
    ) -> None:
        self.root = Path(root)
        self.salt = salt
        self.metrics = metrics
        #: Corrupt entries renamed to ``*.corrupt`` by this instance.
        self.quarantined = 0
        #: Orphaned temp files removed by this instance.
        self.orphans_removed = 0
        if sweep_orphans and self.root.exists():
            self.clean(max_age_s=ORPHAN_TMP_AGE_S)

    def _inc(self, name: str, by: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, by)

    def path_for(self, config: ExperimentConfig) -> Path:
        """Where ``config``'s result lives (whether or not it exists)."""
        digest = config_digest(config, salt=self.salt)
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, config: ExperimentConfig) -> Optional[ExperimentResult]:
        """The cached result for ``config``, or ``None`` on any miss."""
        path = self.path_for(config)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            payload = json.loads(text)
            result = result_from_dict(payload)
        except (ValueError, KeyError, TypeError):
            # The file exists but cannot be trusted: quarantine it so
            # chaos runs (and real incidents) leave evidence instead of
            # silently overwriting, then treat it as a miss.
            self.quarantine(path)
            return None
        if result.config != config:
            return None
        return result

    def quarantine(self, path: Path) -> Optional[Path]:
        """Rename a damaged entry to ``<name>.corrupt``; None on failure."""
        target = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, target)
        except OSError:
            return None
        self.quarantined += 1
        self._inc("campaign.cache.quarantined")
        return target

    def put(self, result: ExperimentResult) -> Path:
        """Store ``result`` (atomically) and return its path."""
        path = self.path_for(result.config)
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        temp.write_text(json.dumps(result_to_dict(result), sort_keys=True))
        os.replace(temp, path)
        return path

    def invalidate(self, config: ExperimentConfig) -> bool:
        """Drop ``config``'s entry; True when one existed."""
        path = self.path_for(config)
        try:
            path.unlink()
            return True
        except FileNotFoundError:
            return False

    def clean(self, max_age_s: float = 0.0) -> int:
        """Remove orphaned ``.<name>.<pid>.tmp`` files; returns the count.

        A writer that crashed between ``write_text`` and ``os.replace``
        leaves its temp file behind forever; nothing ever reads it.
        ``max_age_s`` skips files modified more recently than that —
        the construction-time sweep uses an hour so a live writer in
        another process is never raced.
        """
        if not self.root.exists():
            return 0
        removed = 0
        cutoff = time.time() - max_age_s
        for temp in self.root.glob("*/.*.tmp"):
            try:
                if max_age_s > 0.0 and temp.stat().st_mtime > cutoff:
                    continue
                temp.unlink()
                removed += 1
            except OSError:  # pragma: no cover - raced by another cleaner
                continue
        self.orphans_removed += removed
        if removed:
            self._inc("campaign.cache.orphans_removed", removed)
        return removed

    def corrupt_entries(self) -> list:
        """Paths of quarantined (``*.corrupt``) entries, sorted."""
        if not self.root.exists():
            return []
        return sorted(self.root.glob("*/*.corrupt"))

    def __len__(self) -> int:
        """Number of stored entries (walks the shard directories)."""
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
