"""Stable content addressing for experiment configurations.

The cache key of a run must depend on *everything* that determines its
result: every config field (faults included), the serialized dataclass
schema, and a code-version salt that is bumped whenever the simulation
semantics change in a way the schema fingerprint cannot see (e.g. a
scheduler bug fix).  Python's built-in ``hash()`` is unsuitable — it is
randomized per process for strings — so keys are SHA-256 digests of a
canonical JSON rendering.
"""

from __future__ import annotations

import hashlib
import json

from ..experiments.config import ExperimentConfig
from ..experiments.store import (
    config_to_dict,
    farm_config_to_dict,
    federation_config_to_dict,
    schema_fingerprint,
)

#: Salt mixed into every cache key.  Bump when simulation semantics
#: change without a dataclass field changing (scheduler fixes, timing
#: model corrections, ...): all previously cached results then miss.
CODE_VERSION = "sim-2026.08-pr7"


def _config_payload(config) -> dict:
    """The canonical dict of any config kind, tagged with its kind.

    The kind tag keeps the address spaces disjoint: an experiment and a
    (hypothetical) farm serializing to the same field dict can never
    collide in the cache.
    """
    from ..federation.config import FederationConfig
    from ..service.farm import FarmConfig

    if isinstance(config, ExperimentConfig):
        return {"kind": "experiment", "config": config_to_dict(config)}
    if isinstance(config, FarmConfig):
        return {"kind": "farm", "config": farm_config_to_dict(config)}
    if isinstance(config, FederationConfig):
        return {"kind": "federation", "config": federation_config_to_dict(config)}
    raise TypeError(f"cannot hash config of type {type(config).__name__}")


def canonical_config_json(config) -> str:
    """A canonical (sorted-key, minimal-separator) JSON rendering."""
    return json.dumps(
        _config_payload(config), sort_keys=True, separators=(",", ":")
    )


def config_digest(config, salt: str = CODE_VERSION) -> str:
    """The SHA-256 content address of ``config`` under ``salt``.

    Stable across processes and interpreter restarts; sensitive to every
    config field, to the config kind (experiment / farm / federation),
    to the dataclass schema, and to the salt.
    """
    material = "\n".join((salt, schema_fingerprint(), canonical_config_json(config)))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()
