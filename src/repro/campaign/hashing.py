"""Stable content addressing for experiment configurations.

The cache key of a run must depend on *everything* that determines its
result: every config field (faults included), the serialized dataclass
schema, and a code-version salt that is bumped whenever the simulation
semantics change in a way the schema fingerprint cannot see (e.g. a
scheduler bug fix).  Python's built-in ``hash()`` is unsuitable — it is
randomized per process for strings — so keys are SHA-256 digests of a
canonical JSON rendering.
"""

from __future__ import annotations

import hashlib
import json

from ..experiments.config import ExperimentConfig
from ..experiments.store import config_to_dict, schema_fingerprint

#: Salt mixed into every cache key.  Bump when simulation semantics
#: change without a dataclass field changing (scheduler fixes, timing
#: model corrections, ...): all previously cached results then miss.
CODE_VERSION = "sim-2026.08-pr3"


def canonical_config_json(config: ExperimentConfig) -> str:
    """A canonical (sorted-key, minimal-separator) JSON rendering."""
    return json.dumps(
        config_to_dict(config), sort_keys=True, separators=(",", ":")
    )


def config_digest(config: ExperimentConfig, salt: str = CODE_VERSION) -> str:
    """The SHA-256 content address of ``config`` under ``salt``.

    Stable across processes and interpreter restarts; sensitive to every
    config field, to the dataclass schema, and to the salt.
    """
    material = "\n".join((salt, schema_fingerprint(), canonical_config_json(config)))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()
