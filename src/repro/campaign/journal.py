"""Durable per-campaign execution journal (``repro-journal/1``).

The :class:`~repro.campaign.engine.Campaign` result cache answers *what
has been computed*; the journal answers *what happened while computing
it* — and, crucially, survives the process that was doing the
computing.  It is an append-only JSON-Lines file: one header line, then
one record per point lifecycle event (started, done, failed, requeued)
plus campaign-level events (resume, interrupt, abort).  After a crash,
:meth:`CampaignJournal.load_state` replays the log into a
:class:`JournalState` — which points finished, which were in flight,
how many attempts each has consumed — so ``Campaign.submit(...,
resume=True)`` can skip completed work and requeue whatever the dead
process left dangling.

Durability rules:

* Every record is a single ``write()`` of one ``\\n``-terminated line on
  an ``O_APPEND`` descriptor, flushed (and by default fsynced) before
  the corresponding simulation result is considered recorded.  Two
  processes appending concurrently interleave whole lines, never bytes.
* Reading is tolerant: a truncated or garbage line (the torn tail of a
  crash, or chaos-injected corruption) is counted in
  :attr:`JournalState.corrupt_lines` and skipped — never a crash.  The
  journal being damaged degrades resume precision, not correctness:
  results still come from the content-addressed cache.
* A journal whose header carries a different schema or cache salt is
  refused for resume (:class:`JournalCompatError`) — replaying attempt
  counts across a semantics change would lie.

Points are identified by their config digest
(:func:`~repro.campaign.hashing.config_digest`), so the journal never
needs to serialize configs and stays cheap to append to.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from .hashing import CODE_VERSION

__all__ = [
    "JOURNAL_SCHEMA",
    "CampaignJournal",
    "JournalCompatError",
    "JournalState",
]

#: Schema tag carried by the journal header line.
JOURNAL_SCHEMA = "repro-journal/1"

#: Point lifecycle events (carry a ``digest``).
_POINT_EVENTS = frozenset({"start", "done", "failed", "requeued"})
#: Campaign-level events (no digest).
_CAMPAIGN_EVENTS = frozenset({"resume", "interrupted", "abort"})


class JournalCompatError(RuntimeError):
    """The journal on disk was written under an incompatible schema/salt."""


@dataclass
class JournalState:
    """The replayed truth of a journal: last known fate of every point.

    Attributes:
        done: digests whose last lifecycle event is ``done`` (their
            results should live in the cache; if not, they re-run).
        failed: digest → last recorded error name for points whose
            retries were exhausted (or that failed deterministically).
        in_flight: digests last seen ``start``/``requeued`` with no
            terminal event — the points a crash caught mid-execution.
        attempts: digest → attempts consumed so far (resume carries
            these forward so retry budgets span crashes).
        corrupt_lines: unparsable lines skipped during replay.
        interrupted: the campaign recorded a SIGINT/SIGTERM drain.
        aborted: the campaign breaker tripped (consecutive failures).
    """

    done: Dict[str, float] = field(default_factory=dict)
    failed: Dict[str, str] = field(default_factory=dict)
    in_flight: Dict[str, int] = field(default_factory=dict)
    attempts: Dict[str, int] = field(default_factory=dict)
    corrupt_lines: int = 0
    interrupted: bool = False
    aborted: bool = False

    def classify(self, digest: str) -> str:
        """``"done"``, ``"failed"``, ``"in-flight"``, or ``"unknown"``."""
        if digest in self.done:
            return "done"
        if digest in self.failed:
            return "failed"
        if digest in self.in_flight:
            return "in-flight"
        return "unknown"


class CampaignJournal:
    """Append-only JSONL record of one campaign's execution.

    Args:
        path: journal file location (created on first append).
        salt: cache-key salt recorded in the header; resume refuses a
            journal written under a different salt.
        fsync: fsync after every append (the durability the chaos
            harness assumes).  Disable only for throughput experiments.
    """

    def __init__(
        self,
        path: Union[str, Path],
        salt: str = CODE_VERSION,
        fsync: bool = True,
    ) -> None:
        self.path = Path(path)
        self.salt = salt
        self.fsync = fsync
        self._fd: Optional[int] = None
        #: Set when an append failed (disk full, permissions): the
        #: journal degrades to a no-op rather than failing the campaign.
        self.broken: Optional[str] = None

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def open(self, fresh: bool = False) -> None:
        """Open for appending; ``fresh`` truncates and writes a header.

        Appending to a journal that does not exist yet also writes the
        header.  Opening is idempotent.
        """
        if self._fd is not None:
            return
        needs_header = fresh or not self.path.exists() or (
            self.path.stat().st_size == 0
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        flags = os.O_WRONLY | os.O_CREAT | os.O_APPEND
        if fresh:
            flags |= os.O_TRUNC
        self._fd = os.open(self.path, flags, 0o644)
        if needs_header:
            self._append(
                {
                    "schema": JOURNAL_SCHEMA,
                    "salt": self.salt,
                    "pid": os.getpid(),
                    "created_unix_s": round(time.time(), 3),
                }
            )

    def close(self) -> None:
        if self._fd is not None:
            try:
                os.close(self._fd)
            except OSError:
                pass
            self._fd = None

    def __enter__(self) -> "CampaignJournal":
        self.open()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _append(self, record: dict) -> None:
        """One atomic line; failures mark the journal broken, not fatal."""
        if self.broken is not None:
            return
        if self._fd is None:
            self.open()
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        try:
            os.write(self._fd, (line + "\n").encode("utf-8"))
            if self.fsync:
                os.fsync(self._fd)
        except OSError as error:
            # A journal that cannot be written (disk full, revoked
            # permissions) must not take the campaign down with it;
            # the engine surfaces self.broken loudly at the end.
            self.broken = f"{type(error).__name__}: {error}"

    def record_start(self, digest: str, attempt: int) -> None:
        """Point picked up for execution (attempt is 1-based)."""
        self._append({"event": "start", "digest": digest, "attempt": attempt})

    def record_done(self, digest: str, attempt: int, wall_s: float) -> None:
        """Point finished successfully after ``wall_s`` real seconds."""
        self._append(
            {
                "event": "done",
                "digest": digest,
                "attempt": attempt,
                "wall_s": round(wall_s, 6),
            }
        )

    def record_failed(self, digest: str, attempt: int, error: str) -> None:
        """Point failed terminally (deterministic or retries exhausted)."""
        self._append(
            {"event": "failed", "digest": digest, "attempt": attempt,
             "error": error}
        )

    def record_requeued(self, digest: str, attempt: int, reason: str) -> None:
        """Point will be retried (transient failure, kill, or resume)."""
        self._append(
            {"event": "requeued", "digest": digest, "attempt": attempt,
             "reason": reason}
        )

    def record_resume(self, done: int, in_flight: int, failed: int) -> None:
        """A resumed submission adopted this journal's prior state."""
        self._append(
            {"event": "resume", "done": done, "in_flight": in_flight,
             "failed": failed, "pid": os.getpid()}
        )

    def record_interrupted(self, pending: int) -> None:
        """SIGINT/SIGTERM drain with ``pending`` points unfinished."""
        self._append({"event": "interrupted", "pending": pending})

    def record_abort(self, reason: str) -> None:
        """The consecutive-failure breaker stopped the campaign."""
        self._append({"event": "abort", "reason": reason})

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _iter_lines(self) -> Iterator[Union[dict, None]]:
        """Each parsed record dict, or ``None`` for a corrupt line."""
        try:
            raw = self.path.read_bytes()
        except OSError:
            return
        for line in raw.split(b"\n"):
            if not line.strip():
                continue
            try:
                record = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                yield None
                continue
            yield record if isinstance(record, dict) else None

    def exists(self) -> bool:
        return self.path.exists()

    def load_state(self, strict_salt: bool = True) -> JournalState:
        """Replay the journal into a :class:`JournalState`.

        Args:
            strict_salt: raise :class:`JournalCompatError` when the
                header's schema or salt does not match this journal's
                (attempt counts must not survive a semantics bump).
                A journal with a *missing or corrupt* header is treated
                as salvage: replayed, with the damage counted.
        """
        state = JournalState()
        header_seen = False
        for record in self._iter_lines():
            if record is None:
                state.corrupt_lines += 1
                continue
            if not header_seen and "schema" in record:
                header_seen = True
                if strict_salt and (
                    record.get("schema") != JOURNAL_SCHEMA
                    or record.get("salt") != self.salt
                ):
                    raise JournalCompatError(
                        f"journal {self.path} was written under "
                        f"schema={record.get('schema')!r} "
                        f"salt={record.get('salt')!r}; this campaign uses "
                        f"schema={JOURNAL_SCHEMA!r} salt={self.salt!r}"
                    )
                continue
            event = record.get("event")
            if event in _POINT_EVENTS:
                digest = record.get("digest")
                attempt = record.get("attempt")
                if not isinstance(digest, str) or not isinstance(attempt, int):
                    state.corrupt_lines += 1
                    continue
                state.attempts[digest] = max(
                    attempt, state.attempts.get(digest, 0)
                )
                state.done.pop(digest, None)
                state.failed.pop(digest, None)
                state.in_flight.pop(digest, None)
                if event == "done":
                    state.done[digest] = float(record.get("wall_s", 0.0))
                elif event == "failed":
                    state.failed[digest] = str(record.get("error", ""))
                else:  # start / requeued → in flight
                    state.in_flight[digest] = attempt
            elif event in _CAMPAIGN_EVENTS:
                if event == "interrupted":
                    state.interrupted = True
                elif event == "abort":
                    state.aborted = True
            else:
                state.corrupt_lines += 1
        return state
