"""Worker-side execution of one campaign point.

Shared by the serial path in :mod:`repro.campaign.engine` and the
supervised pool in :mod:`repro.campaign.supervisor` (which is why it
lives in its own module: the supervisor must not import the engine).
Everything here runs where the point runs — in a worker process under
``jobs > 1``, in the submitting process otherwise.
"""

from __future__ import annotations

import contextlib
import cProfile
import os
import signal
import threading
import traceback
import warnings
from typing import Callable, Optional, Tuple

from ..experiments.config import ExperimentConfig
from .hashing import config_digest

__all__ = [
    "PointTimeoutError",
    "_execute_point",
    "_wall_clock_limit",
    "_warm_catalog_caches",
]


def _warm_catalog_caches(entries) -> None:
    """Worker initializer: pre-build catalogs the batch will need.

    ``entries`` are ``(placement_spec, tape_count, capacity_mb,
    data_blocks, replicas)`` tuples — the argument signature of
    :func:`repro.experiments.runner._cached_catalog`.  Building them
    here, once per worker before the first chunk arrives, moves the
    catalog construction cost out of every point's critical path (the
    per-process ``lru_cache`` would otherwise fault it in on first
    use) and overlaps it with the parent's dispatch of the first
    chunks.  Purely an optimization: any failure is swallowed — the
    point execution path builds what it needs on demand.
    """
    from ..experiments.runner import _cached_catalog

    for entry in entries:
        try:
            _cached_catalog(*entry)
        except Exception:  # noqa: BLE001 - warming is best-effort
            continue


class PointTimeoutError(Exception):
    """A campaign point exceeded its wall-clock budget."""


@contextlib.contextmanager
def _wall_clock_limit(timeout_s: Optional[float]):
    """Raise :class:`PointTimeoutError` after ``timeout_s`` real seconds.

    Implemented with ``SIGALRM``/``setitimer``, which interrupts a hung
    simulation loop without cooperation from the running code.  Pool
    tasks execute on each worker process's main thread, so the signal
    lands in the right place.  On platforms without ``setitimer``
    (Windows) or off the main thread (e.g. the serial fallback invoked
    from a thread) the limit degrades to a no-op with a warning rather
    than raising — in the supervised parallel path the supervisor's
    deadline kill covers those cases.
    """
    if timeout_s is None:
        yield
        return
    if not hasattr(signal, "setitimer"):  # pragma: no cover - non-Unix
        warnings.warn(
            "point_timeout_s cannot be enforced in-process without "
            "signal.setitimer on this platform; relying on supervisor "
            "deadlines (if any)",
            RuntimeWarning,
            stacklevel=3,
        )
        yield
        return
    if threading.current_thread() is not threading.main_thread():
        warnings.warn(
            "point_timeout_s cannot be enforced with SIGALRM off the "
            "main thread; running the point without an in-process "
            "wall-clock limit",
            RuntimeWarning,
            stacklevel=3,
        )
        yield
        return

    def _on_alarm(signum, frame):
        raise PointTimeoutError(
            f"campaign point exceeded {timeout_s:g}s wall-clock"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _dump_trace(trace_dir: str, config: ExperimentConfig, tracer) -> None:
    """Write one executed point's trace artifacts into ``trace_dir``.

    Two files per point, named by config digest: ``<digest>.trace.json``
    (Chrome trace-event JSON, Perfetto-loadable) and
    ``<digest>.summary.json`` (:class:`~repro.obs.TraceSummary`).
    """
    import json

    from ..obs import TraceSummary, write_chrome_trace

    digest = config_digest(config)[:16]
    write_chrome_trace(
        tracer, os.path.join(trace_dir, f"{digest}.trace.json")
    )
    summary = TraceSummary.from_tracer(tracer, warmup_s=config.warmup_s)
    with open(
        os.path.join(trace_dir, f"{digest}.summary.json"), "w", encoding="utf-8"
    ) as handle:
        json.dump(summary.to_dict(), handle, indent=2, sort_keys=True)


def _execute_point(
    item: Tuple[
        int,
        ExperimentConfig,
        Callable,
        Optional[float],
        Optional[str],
        Optional[str],
    ]
) -> tuple:
    """Run one point; errors are shipped back as data, never raised.

    The single exception is :class:`KeyboardInterrupt`, which is *not*
    an attribute of the point: it propagates so the serial path can
    journal the interrupt and re-raise (workers ignore SIGINT, so it
    cannot fire there mid-point).

    When ``profile_dir`` is set the point runs under :mod:`cProfile`
    and its raw stats are dumped to ``<config_digest[:16]>.prof`` in
    that directory (the dump happens in the worker process, so profiles
    work with ``jobs > 1``).  When ``trace_dir`` is set and the runner
    accepts an ``obs`` keyword (the default :func:`run_experiment`
    does), the point runs with a :class:`~repro.obs.Tracer` attached
    and its trace artifacts are dumped there, also worker-side.  Cache
    hits never reach this function, so every artifact reflects an
    actual execution.
    """
    index, config, runner, timeout_s, profile_dir, trace_dir = item
    try:
        tracer = None
        run = runner
        if trace_dir is not None:
            import inspect

            if "obs" in inspect.signature(runner).parameters:
                from ..obs import Tracer

                tracer = Tracer()
                run = lambda point: runner(point, obs=tracer)  # noqa: E731
        with _wall_clock_limit(timeout_s):
            if profile_dir is None:
                result = run(config)
            else:
                profiler = cProfile.Profile()
                result = profiler.runcall(run, config)
        if profile_dir is not None:
            profiler.dump_stats(
                os.path.join(profile_dir, f"{config_digest(config)[:16]}.prof")
            )
        if tracer is not None:
            _dump_trace(trace_dir, config, tracer)
        return (index, "ok", result)
    except KeyboardInterrupt:
        raise
    except BaseException as exc:  # noqa: BLE001 - isolation is the point
        return (
            index,
            "error",
            (type(exc).__name__, str(exc), traceback.format_exc()),
        )
