"""The paper's service model wired into the simulation kernel."""

from .metrics import KB, MB, MetricsCollector, MetricsReport
from .farm import FarmReport, run_farm
from .multidrive import MultiDriveSimulator
from .oplog import OpKind, Operation, OperationLog
from .simulator import JukeboxSimulator
from .writeback import DeltaBuffer, WritebackSimulator

__all__ = [
    "DeltaBuffer",
    "FarmReport",
    "JukeboxSimulator",
    "KB",
    "MB",
    "MetricsCollector",
    "MetricsReport",
    "MultiDriveSimulator",
    "OpKind",
    "Operation",
    "OperationLog",
    "WritebackSimulator",
    "run_farm",
]
