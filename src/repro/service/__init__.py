"""The paper's service model wired into the simulation kernel."""

from .metrics import KB, MB, MetricsCollector, MetricsReport
from .farm import FarmConfig, FarmReport, FarmResult, run_farm
from .multidrive import MultiDriveSimulator
from .oplog import OpKind, Operation, OperationLog
from .rollup import ReportRollup, merge_reports, report_registry
from .simulator import JukeboxSimulator
from .writeback import DeltaBuffer, WritebackSimulator

__all__ = [
    "DeltaBuffer",
    "FarmConfig",
    "FarmReport",
    "FarmResult",
    "ReportRollup",
    "merge_reports",
    "report_registry",
    "JukeboxSimulator",
    "KB",
    "MB",
    "MetricsCollector",
    "MetricsReport",
    "MultiDriveSimulator",
    "OpKind",
    "Operation",
    "OperationLog",
    "WritebackSimulator",
    "run_farm",
]
