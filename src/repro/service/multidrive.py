"""Multi-drive jukebox extension (the paper's stated future work).

The paper studies jukeboxes with a single drive and notes that "future
work could extend this to multiple drives".  This module provides that
extension: ``D`` drives share one robot arm, one pool of tapes, and one
pending list.  Each drive runs the four-step service loop with its own
scheduler instance; a tape can be mounted in at most one drive at a
time (drives *claim* tapes), and robot swaps serialize on the shared
arm (a :class:`~repro.des.Resource`).

Scope: the FIFO, static, and dynamic scheduler families are supported.
The envelope-extension algorithm plans globally across all tapes and
would need a redesign to coordinate several drives' envelopes — that
remains future work here too, as in the paper.

When a :class:`~repro.faults.FaultInjector` is attached the fleet runs
in *degraded mode* under faults: a failed drive releases its claimed
tape (the surviving drives' schedulers immediately see it and pick up
the re-queued sweep remainder), faulted reads retry then fail over to
surviving copies through the shared pending list, and robot picks can
fail while the arm is held.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.base import Scheduler, SchedulerContext
from ..core.envelope import EnvelopeScheduler
from ..core.pending import PendingList
from ..core.sweep import ServiceEntry, ServiceList
from ..des import Environment, Event, Resource
from ..faults.injector import FaultInjector
from ..faults.masking import FaultMaskedCatalog
from ..faults.retry import RetryPolicy
from ..layout.catalog import BlockCatalog
from ..obs.tracer import Tracer
from ..qos.manager import QoSManager
from ..tape.drive import TapeDrive
from ..tape.tape import TapePool
from ..tape.timing import DriveTimingModel, EXB_8505XL
from ..workload.requests import Request
from .metrics import MetricsCollector, MetricsReport


class ClaimFilteredPending(PendingList):
    """A pending-list view that hides tapes claimed by other drives.

    Schedulers group requests by candidate tape through
    :meth:`candidate_tapes` / :meth:`requests_for_tape`; filtering here
    keeps every scheduler family multi-drive-safe without changes.
    """

    def __init__(self, inner: PendingList, claims: Dict[int, int], drive_index: int) -> None:
        self._inner = inner
        self._claims = claims
        self._drive_index = drive_index

    def _visible(self, tape_id: int) -> bool:
        owner = self._claims.get(tape_id)
        return owner is None or owner == self._drive_index

    # Delegate the mutating / arrival-ordered interface.
    def __len__(self) -> int:
        return len(self._inner)

    def __iter__(self):
        return iter(self._inner)

    def __contains__(self, request: Request) -> bool:
        return request in self._inner

    @property
    def catalog(self) -> BlockCatalog:
        """The shared block catalog."""
        return self._inner.catalog

    def append(self, request: Request) -> None:
        """Defer ``request`` to the shared pending list."""
        self._inner.append(request)

    def remove_many(self, requests: List[Request]) -> None:
        """Remove scheduled requests from the shared pending list."""
        self._inner.remove_many(requests)

    def snapshot(self) -> List[Request]:
        """Arrival-ordered copy (unfiltered; used by envelope only)."""
        return self._inner.snapshot()

    # Filtered candidate queries.
    def oldest(self) -> Optional[Request]:
        """Oldest request servable by a tape visible to this drive."""
        for request in self._inner:
            replicas = self.catalog.replicas_of(request.block_id)
            if any(self._visible(replica.tape_id) for replica in replicas):
                return request
        return None

    def requests_for_tape(self, tape_id: int) -> List[Request]:
        """Pending requests on ``tape_id`` if it is visible, else []."""
        if not self._visible(tape_id):
            return []
        return self._inner.requests_for_tape(tape_id)

    def candidate_tapes(self) -> Dict[int, List[Request]]:
        """Per-tape pending requests, excluding other drives' claims."""
        return {
            tape_id: requests
            for tape_id, requests in self._inner.candidate_tapes().items()
            if self._visible(tape_id)
        }


@dataclass
class DriveView:
    """The slice of jukebox state one drive's scheduler may see."""

    drive: TapeDrive
    tape_count: int

    @property
    def timing(self) -> DriveTimingModel:
        """Drive timing model."""
        return self.drive.timing

    @property
    def mounted_id(self) -> Optional[int]:
        """Tape mounted in this drive."""
        return self.drive.mounted_id

    @property
    def head_mb(self) -> float:
        """This drive's head position."""
        return self.drive.head_mb


class MultiDriveSimulator:
    """``D`` drives + one robot arm over a shared tape pool."""

    def __init__(
        self,
        env: Environment,
        catalog: BlockCatalog,
        source,
        metrics: MetricsCollector,
        scheduler_factory,
        drive_count: int = 2,
        tape_count: int = 10,
        capacity_mb: float = 7.0 * 1024,
        timing: DriveTimingModel = EXB_8505XL,
        faults: Optional[FaultInjector] = None,
        retry: Optional[RetryPolicy] = None,
        qos: Optional[QoSManager] = None,
        obs: Optional[Tracer] = None,
    ) -> None:
        if drive_count <= 0:
            raise ValueError(f"drive_count must be positive, got {drive_count!r}")
        if drive_count > tape_count:
            raise ValueError("cannot have more drives than tapes")
        self.env = env
        self.catalog = catalog
        self.source = source
        self.metrics = metrics
        self.faults = faults
        self.qos = qos
        #: Optional structured tracer (see :mod:`repro.obs`); every call
        #: site is guarded so ``obs=None`` runs stay bit-identical.
        self.obs = obs
        if obs is not None:
            obs.bind_clock(lambda: env.now)
            if qos is not None:
                qos.obs = obs
            if faults is not None:
                faults.obs = obs
        if retry is None and faults is not None:
            retry = faults.config.retry
        self.retry = retry
        self.pool = TapePool.uniform(tape_count, capacity_mb)
        self.robot = Resource(env, capacity=1)
        self.robot_swap_s = timing.robot_swap_s
        masked_tapes = set()
        scheduler_catalog = catalog
        if faults is not None:
            masked_tapes = faults.failed_tapes
            scheduler_catalog = FaultMaskedCatalog(
                catalog, masked_tapes, faults.known_bad
            )
        #: Catalog as the schedulers see it (fault-masked when enabled).
        self.catalog_view = scheduler_catalog
        self.pending = PendingList(scheduler_catalog)
        #: tape_id -> index of the drive that claimed it.
        self.claims: Dict[int, int] = {}
        self.tape_switches = 0
        self._started = False
        self._wakeups: List[Optional[Event]] = [None] * drive_count

        self.drives: List[TapeDrive] = []
        self.schedulers: List[Scheduler] = []
        self.contexts: List[SchedulerContext] = []
        for drive_index in range(drive_count):
            scheduler = scheduler_factory()
            if isinstance(scheduler, EnvelopeScheduler):
                raise ValueError(
                    "the envelope-extension algorithm is single-drive; "
                    "use a static or dynamic scheduler for multi-drive runs"
                )
            if qos is not None:
                scheduler = qos.wrap_scheduler(scheduler)
            drive = TapeDrive(timing=timing)
            view = DriveView(drive=drive, tape_count=tape_count)
            filtered = ClaimFilteredPending(self.pending, self.claims, drive_index)
            context = SchedulerContext(
                jukebox=view,  # duck-typed: mounted_id / head_mb / timing / tape_count
                catalog=scheduler_catalog,
                pending=filtered,
                masked_tapes=masked_tapes,
                drive_count=drive_count,
            )
            self.drives.append(drive)
            self.schedulers.append(scheduler)
            self.contexts.append(context)

    # ------------------------------------------------------------------
    # Request intake
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Route an arrival to some drive's incremental scheduler.

        The first drive whose in-progress sweep covers a replica of the
        requested block gets the insertion attempt; otherwise (or if the
        attempt fails) the request joins the shared pending list.
        """
        self.metrics.on_arrival(request, self.env.now)
        if self.obs is not None:
            self.obs.on_arrival(request, self.env.now)
        if self.qos is not None and not self.qos.admit(request, len(self.pending)):
            # Shed at the boundary: the request never reaches the shared
            # pending list or any drive's scheduler (and sheds do not
            # spawn closed-population replacements).
            return
        for drive_index, context in enumerate(self.contexts):
            if context.service is None or context.mounted_id is None:
                continue
            if not self.catalog_view.has_replica_on(
                request.block_id, context.mounted_id
            ):
                continue
            self.schedulers[drive_index].on_arrival(context, request)
            # Either inserted into that drive's sweep, or deferred to the
            # shared pending list by the scheduler itself.
            self._wake_idle_drives()
            return
        self.pending.append(request)
        self._wake_idle_drives()

    def _wake_idle_drives(self) -> None:
        for drive_index, wakeup in enumerate(self._wakeups):
            if wakeup is not None and not wakeup.triggered:
                wakeup.succeed()
                self._wakeups[drive_index] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def run(self, horizon_s: float) -> MetricsReport:
        """Run to ``horizon_s`` and report shared steady-state metrics."""
        if self._started:
            raise RuntimeError("simulator already started")
        self._started = True
        for request in self.source.initial_requests(self.env.now):
            if self.qos is not None:
                # Route through admission (no sweeps are in progress yet,
                # so admitted requests land on the shared pending list).
                self.submit(request)
            else:
                self.pending.append(request)
                self.metrics.on_arrival(request, self.env.now)
                if self.obs is not None:
                    self.obs.on_arrival(request, self.env.now)
        for drive_index in range(len(self.drives)):
            self.env.process(self._drive_process(drive_index))
        if not self.source.is_closed:
            self.env.process(self._arrival_process(horizon_s))
        self.env.run(until=horizon_s)
        self.metrics.finalize(self.env.now)
        return self.metrics.report()

    def _arrival_process(self, horizon_s: float):
        for arrival_s, request in self.source.arrivals(horizon_s, self.env.now):
            delay = arrival_s - self.env.now
            if delay > 0:
                yield delay
            self.submit(request)

    # ------------------------------------------------------------------
    # Per-drive service loop
    # ------------------------------------------------------------------
    def _timed(self, duration_s: float) -> float:
        self.metrics.on_drive_busy(self.env.now, duration_s)
        return duration_s

    def _drive_process(self, drive_index: int):
        context = self.contexts[drive_index]
        scheduler = self.schedulers[drive_index]
        drive = self.drives[drive_index]
        block_mb = self.catalog.block_mb
        while True:
            if self.faults is not None:
                if self.faults.drive_failure_due(drive_index, self.env.now):
                    yield from self._repair_drive(drive_index)
                    continue
                self._drop_lost_requests()

            # Expiry-on-dequeue: purge requests whose TTL has already
            # passed so no drive plans undeliverable work.
            if self.qos is not None and len(self.pending):
                self._expire_from_pending()

            decision = (
                scheduler.major_reschedule(context) if len(self.pending) else None
            )
            if decision is None:
                idle_start = self.env.now
                wakeup = self.env.event()
                self._wakeups[drive_index] = wakeup
                yield wakeup
                if self.obs is not None:
                    self.obs.on_op(
                        drive_index, "idle", idle_start, self.env.now - idle_start
                    )
                continue
            if self.obs is not None:
                self.obs.on_decision(
                    self.env.now,
                    drive_index,
                    scheduler.name,
                    decision,
                    len(self.pending),
                )

            switching = decision.tape_id != drive.mounted_id
            start_head = 0.0 if switching else drive.head_mb
            service = ServiceList(decision.entries, head_mb=start_head)
            context.service = service

            if switching:
                # Claim the new tape first so no other drive grabs it
                # while this one rewinds and waits for the arm.
                self.claims[decision.tape_id] = drive_index
                switch_start = self.env.now
                old_tape = drive.mounted_id
                if drive.is_loaded:
                    yield self._timed(drive.rewind())
                    yield self._timed(drive.eject())
                mounted = yield from self._swap_tape(drive_index, decision.tape_id)
                if old_tape is not None:
                    del self.claims[old_tape]
                    self._wake_idle_drives()  # the old tape is free again
                if not mounted:
                    # The pick never succeeded: the tape is out of
                    # service; its planned sweep has been failed over.
                    del self.claims[decision.tape_id]
                    context.service = None
                    self._wake_idle_drives()
                    continue
                yield self._timed(drive.load(self.pool[decision.tape_id]))
                self.tape_switches += 1
                self.metrics.on_tape_switch(self.env.now)
                if self.obs is not None:
                    # One span covers the whole exchange: rewind + eject
                    # + arm wait + swap + load.
                    self.obs.on_op(
                        drive_index,
                        "switch",
                        switch_start,
                        self.env.now - switch_start,
                        tape_id=decision.tape_id,
                    )
            if self.obs is not None:
                self.obs.on_exchange(
                    (
                        request
                        for entry in decision.entries
                        for request in entry.requests
                    ),
                    self.env.now,
                )

            drive_failed = False
            while not service.is_empty:
                if self.faults is not None and self.faults.drive_failure_due(
                    drive_index, self.env.now
                ):
                    # Degraded mode: the unread remainder returns to the
                    # shared pending list, so a surviving drive can pick
                    # it up while this one repairs.
                    self._requeue_entries(service.remaining())
                    while not service.is_empty:
                        service.pop_next()
                    service.finish_in_flight()
                    drive_failed = True
                    break
                entry = service.pop_next()
                if self.qos is not None:
                    live, expired = self.qos.split_expired(
                        entry.requests, self.env.now
                    )
                    if expired:
                        for request in expired:
                            self._expire_request(request)
                        if not live:
                            # Every requester's TTL has passed: skip the
                            # physical read entirely.
                            service.finish_in_flight()
                            continue
                        entry.requests[:] = live
                read_start = self.env.now
                head_before = drive.head_mb if self.obs is not None else 0.0
                duration = drive.access(entry.position_mb, block_mb)
                yield self._timed(duration)
                if self.obs is not None:
                    self.obs.on_op(
                        drive_index,
                        "read",
                        read_start,
                        duration,
                        tape_id=drive.mounted_id,
                        block_id=entry.block_id,
                        position_mb=entry.position_mb,
                    )
                fault = (
                    self.faults.read_fault(drive.mounted_id, entry.block_id)
                    if self.faults is not None
                    else None
                )
                if fault is None:
                    service.finish_in_flight()
                    self._deliver(
                        entry,
                        duration,
                        locate_s=self._locate_of(drive, head_before, entry),
                    )
                else:
                    yield from self._recover_read(drive_index, entry, fault)
                    service.finish_in_flight()

            context.service = None
            scheduler.on_sweep_complete(context)
            if self.qos is not None:
                self.qos.on_progress(len(self.pending))
            if drive_failed:
                yield from self._repair_drive(drive_index)

    # ------------------------------------------------------------------
    # Completion and fault recovery
    # ------------------------------------------------------------------
    def _locate_of(
        self, drive: TapeDrive, head_before_mb: float, entry: ServiceEntry
    ) -> float:
        """Locate component of the access that just served ``entry``
        (pure recomputation; only called when a tracer is attached)."""
        if self.obs is None:
            return 0.0
        return drive.timing.locate(head_before_mb, entry.position_mb)

    def _deliver(
        self, entry: ServiceEntry, service_s: float, locate_s: float = 0.0
    ) -> None:
        """Complete every request coalesced onto a successful read."""
        for request in entry.requests:
            self.metrics.on_completion(request, self.env.now, service_s=service_s)
            if self.obs is not None:
                self.obs.on_complete(
                    request, self.env.now, locate_s, service_s - locate_s
                )
            if self.source.is_closed:
                replacement = self.source.on_completion(self.env.now)
                if replacement is not None:
                    self.submit(replacement)

    def _swap_tape(self, drive_index: int, tape_id: int):
        """Acquire the arm and swap; False when the pick never succeeds."""
        attempts = 0
        while True:
            grant = self.robot.acquire()
            yield grant
            try:
                fault = (
                    self.faults.robot_pick_fault(tape_id)
                    if self.faults is not None
                    else None
                )
                if fault is None:
                    yield self._timed(self.robot_swap_s)
                    return True
                # The failed pick wastes one arm motion with the arm held.
                self.metrics.on_fault(fault.kind, self.env.now)
                if self.qos is not None:
                    self.qos.on_fault()
                if self.obs is not None:
                    self.obs.event(
                        self.env.now,
                        fault.kind,
                        drive=drive_index,
                        tape_id=tape_id,
                    )
                yield self._timed(self.robot_swap_s)
            finally:
                self.robot.release()
            attempts += 1
            if self.retry is not None and self.retry.allows(attempts):
                self.metrics.on_retry(self.env.now)
                backoff_s = self.retry.backoff_s(attempts - 1)
                if backoff_s > 0:
                    yield backoff_s
                continue
            # The cartridge is stuck: mask the tape and fail over the
            # sweep planned against it.
            self.faults.fail_tape(tape_id)
            service = self.contexts[drive_index].service
            if service is not None:
                for entry in service.remaining():
                    self._resolve_replica_failure(entry)
                while not service.is_empty:
                    service.pop_next()
                service.finish_in_flight()
            self._drop_lost_requests()
            return False

    def _recover_read(self, drive_index: int, entry: ServiceEntry, fault):
        """Retry a faulted read in place; escalate to failover if futile."""
        drive = self.drives[drive_index]
        tape_id = drive.mounted_id
        block_mb = self.catalog.block_mb
        attempts = 1
        if self.obs is not None:
            self.obs.on_fault(entry.requests, self.env.now)
        while True:
            self.metrics.on_fault(fault.kind, self.env.now)
            if self.qos is not None:
                self.qos.on_fault()
            if self.obs is not None:
                self.obs.event(
                    self.env.now,
                    fault.kind,
                    drive=drive_index,
                    tape_id=tape_id,
                    block_id=entry.block_id,
                )
            if not (
                fault.transient
                and self.retry is not None
                and self.retry.allows(attempts)
            ):
                break
            backoff_s = self.retry.backoff_s(attempts - 1)
            self.metrics.on_retry(self.env.now)
            if self.obs is not None:
                self.obs.event(
                    self.env.now,
                    "retry",
                    drive=drive_index,
                    block_id=entry.block_id,
                    attempt=attempts,
                )
            if backoff_s > 0:
                backoff_start = self.env.now
                yield backoff_s
                if self.obs is not None:
                    self.obs.on_op(
                        drive_index,
                        "backoff",
                        backoff_start,
                        backoff_s,
                        tape_id=tape_id,
                        block_id=entry.block_id,
                    )
            read_start = self.env.now
            head_before = drive.head_mb if self.obs is not None else 0.0
            duration = drive.access(entry.position_mb, block_mb)
            yield self._timed(duration)
            if self.obs is not None:
                self.obs.on_op(
                    drive_index,
                    "read",
                    read_start,
                    duration,
                    tape_id=tape_id,
                    block_id=entry.block_id,
                    position_mb=entry.position_mb,
                    detail="retry",
                )
            attempts += 1
            fault = self.faults.read_fault(tape_id, entry.block_id)
            if fault is None:
                self._deliver(
                    entry,
                    duration,
                    locate_s=self._locate_of(drive, head_before, entry),
                )
                return
        # Permanent fault, or the retry budget ran out: this copy is done.
        self.faults.condemn_replica(tape_id, entry.block_id)
        self._resolve_replica_failure(entry)

    def _resolve_replica_failure(self, entry: ServiceEntry) -> None:
        """Fail over ``entry``'s requests to a surviving copy, or fail them."""
        if self.faults.surviving_replicas(entry.block_id):
            self.metrics.on_failover(len(entry.requests), self.env.now)
            if self.obs is not None:
                self.obs.event(
                    self.env.now,
                    "failover",
                    block_id=entry.block_id,
                    requests=len(entry.requests),
                )
                self.obs.on_requeue(entry.requests, self.env.now, "failover")
            for request in entry.requests:
                self.pending.append(request)
            self._wake_idle_drives()
        else:
            for request in entry.requests:
                self._fail_request(request)

    def _fail_request(self, request: Request) -> None:
        """Permanently fail ``request`` (keeps a closed population going)."""
        self.metrics.on_request_failed(request, self.env.now)
        if self.obs is not None:
            self.obs.on_failed(request, self.env.now)
        if self.source.is_closed:
            replacement = self.source.on_completion(self.env.now)
            if replacement is not None:
                self.submit(replacement)

    def _expire_request(self, request: Request) -> None:
        """Expire ``request`` (keeps a closed population going)."""
        self.metrics.on_expired(request, self.env.now)
        if self.obs is not None:
            self.obs.on_expired(request, self.env.now)
        if self.source.is_closed:
            replacement = self.source.on_completion(self.env.now)
            if replacement is not None:
                self.submit(replacement)

    def _expire_from_pending(self) -> None:
        """Remove and expire pending requests whose TTL has passed."""
        for request in self.qos.expired_pending(self.pending, self.env.now):
            self._expire_request(request)

    def _requeue_entries(self, entries: List[ServiceEntry]) -> None:
        """Return un-read sweep entries to the shared pending list."""
        for entry in entries:
            if self.obs is not None:
                self.obs.on_requeue(entry.requests, self.env.now, "drive-repair")
            for request in entry.requests:
                self.pending.append(request)
        self._wake_idle_drives()

    def _drop_lost_requests(self) -> None:
        """Fail pending requests whose every known copy is gone."""
        lost = [
            request
            for request in self.pending.snapshot()
            if self.faults.block_lost(request.block_id)
        ]
        if lost:
            self.pending.remove_many(lost)
            for request in lost:
                self._fail_request(request)

    def _repair_drive(self, drive_index: int):
        """Take one drive down for repair while the rest keep serving."""
        drive = self.drives[drive_index]
        failure_start = self.env.now
        self.metrics.on_drive_failure(failure_start)
        self.metrics.on_fault("drive-failure", failure_start)
        if self.qos is not None:
            self.qos.on_fault()
        repair_s = self.faults.begin_repair(drive_index, failure_start)
        self.metrics.on_drive_repair(failure_start, repair_s)
        if self.obs is not None:
            self.obs.event(
                failure_start, "drive-failure", drive=drive_index, repair_s=repair_s
            )
            self.obs.on_op(
                drive_index, "repair", failure_start, repair_s, detail="drive-failure"
            )
        mounted = drive.mounted_id
        drive.force_unload()
        if mounted is not None and self.claims.get(mounted) == drive_index:
            # Release the claim so surviving drives can mount this tape.
            del self.claims[mounted]
            self._wake_idle_drives()
        yield repair_s
