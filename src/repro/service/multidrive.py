"""Multi-drive jukebox extension (the paper's stated future work).

The paper studies jukeboxes with a single drive and notes that "future
work could extend this to multiple drives".  This module provides that
extension: ``D`` drives share one robot arm, one pool of tapes, and one
pending list.  Each drive runs the four-step service loop with its own
scheduler instance; a tape can be mounted in at most one drive at a
time (drives *claim* tapes), and robot swaps serialize on the shared
arm (a :class:`~repro.des.Resource`).

Scope: the FIFO, static, and dynamic scheduler families are supported.
The envelope-extension algorithm plans globally across all tapes and
would need a redesign to coordinate several drives' envelopes — that
remains future work here too, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.base import Scheduler, SchedulerContext
from ..core.envelope import EnvelopeScheduler
from ..core.pending import PendingList
from ..core.sweep import ServiceList
from ..des import Environment, Event, Resource
from ..layout.catalog import BlockCatalog
from ..tape.drive import TapeDrive
from ..tape.tape import TapePool
from ..tape.timing import DriveTimingModel, EXB_8505XL
from ..workload.requests import Request
from .metrics import MetricsCollector, MetricsReport


class ClaimFilteredPending(PendingList):
    """A pending-list view that hides tapes claimed by other drives.

    Schedulers group requests by candidate tape through
    :meth:`candidate_tapes` / :meth:`requests_for_tape`; filtering here
    keeps every scheduler family multi-drive-safe without changes.
    """

    def __init__(self, inner: PendingList, claims: Dict[int, int], drive_index: int) -> None:
        self._inner = inner
        self._claims = claims
        self._drive_index = drive_index

    def _visible(self, tape_id: int) -> bool:
        owner = self._claims.get(tape_id)
        return owner is None or owner == self._drive_index

    # Delegate the mutating / arrival-ordered interface.
    def __len__(self) -> int:
        return len(self._inner)

    def __iter__(self):
        return iter(self._inner)

    def __contains__(self, request: Request) -> bool:
        return request in self._inner

    @property
    def catalog(self) -> BlockCatalog:
        """The shared block catalog."""
        return self._inner.catalog

    def append(self, request: Request) -> None:
        """Defer ``request`` to the shared pending list."""
        self._inner.append(request)

    def remove_many(self, requests: List[Request]) -> None:
        """Remove scheduled requests from the shared pending list."""
        self._inner.remove_many(requests)

    def snapshot(self) -> List[Request]:
        """Arrival-ordered copy (unfiltered; used by envelope only)."""
        return self._inner.snapshot()

    # Filtered candidate queries.
    def oldest(self) -> Optional[Request]:
        """Oldest request servable by a tape visible to this drive."""
        for request in self._inner:
            replicas = self.catalog.replicas_of(request.block_id)
            if any(self._visible(replica.tape_id) for replica in replicas):
                return request
        return None

    def requests_for_tape(self, tape_id: int) -> List[Request]:
        """Pending requests on ``tape_id`` if it is visible, else []."""
        if not self._visible(tape_id):
            return []
        return self._inner.requests_for_tape(tape_id)

    def candidate_tapes(self) -> Dict[int, List[Request]]:
        """Per-tape pending requests, excluding other drives' claims."""
        return {
            tape_id: requests
            for tape_id, requests in self._inner.candidate_tapes().items()
            if self._visible(tape_id)
        }


@dataclass
class DriveView:
    """The slice of jukebox state one drive's scheduler may see."""

    drive: TapeDrive
    tape_count: int

    @property
    def timing(self) -> DriveTimingModel:
        """Drive timing model."""
        return self.drive.timing

    @property
    def mounted_id(self) -> Optional[int]:
        """Tape mounted in this drive."""
        return self.drive.mounted_id

    @property
    def head_mb(self) -> float:
        """This drive's head position."""
        return self.drive.head_mb


class MultiDriveSimulator:
    """``D`` drives + one robot arm over a shared tape pool."""

    def __init__(
        self,
        env: Environment,
        catalog: BlockCatalog,
        source,
        metrics: MetricsCollector,
        scheduler_factory,
        drive_count: int = 2,
        tape_count: int = 10,
        capacity_mb: float = 7.0 * 1024,
        timing: DriveTimingModel = EXB_8505XL,
    ) -> None:
        if drive_count <= 0:
            raise ValueError(f"drive_count must be positive, got {drive_count!r}")
        if drive_count > tape_count:
            raise ValueError("cannot have more drives than tapes")
        self.env = env
        self.catalog = catalog
        self.source = source
        self.metrics = metrics
        self.pool = TapePool.uniform(tape_count, capacity_mb)
        self.robot = Resource(env, capacity=1)
        self.robot_swap_s = timing.robot_swap_s
        self.pending = PendingList(catalog)
        #: tape_id -> index of the drive that claimed it.
        self.claims: Dict[int, int] = {}
        self.tape_switches = 0
        self._started = False
        self._wakeups: List[Optional[Event]] = [None] * drive_count

        self.drives: List[TapeDrive] = []
        self.schedulers: List[Scheduler] = []
        self.contexts: List[SchedulerContext] = []
        for drive_index in range(drive_count):
            scheduler = scheduler_factory()
            if isinstance(scheduler, EnvelopeScheduler):
                raise ValueError(
                    "the envelope-extension algorithm is single-drive; "
                    "use a static or dynamic scheduler for multi-drive runs"
                )
            drive = TapeDrive(timing=timing)
            view = DriveView(drive=drive, tape_count=tape_count)
            filtered = ClaimFilteredPending(self.pending, self.claims, drive_index)
            context = SchedulerContext(
                jukebox=view,  # duck-typed: mounted_id / head_mb / timing / tape_count
                catalog=catalog,
                pending=filtered,
            )
            self.drives.append(drive)
            self.schedulers.append(scheduler)
            self.contexts.append(context)

    # ------------------------------------------------------------------
    # Request intake
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Route an arrival to some drive's incremental scheduler.

        The first drive whose in-progress sweep covers a replica of the
        requested block gets the insertion attempt; otherwise (or if the
        attempt fails) the request joins the shared pending list.
        """
        self.metrics.on_arrival(request, self.env.now)
        for drive_index, context in enumerate(self.contexts):
            if context.service is None or context.mounted_id is None:
                continue
            if not self.catalog.has_replica_on(request.block_id, context.mounted_id):
                continue
            self.schedulers[drive_index].on_arrival(context, request)
            # Either inserted into that drive's sweep, or deferred to the
            # shared pending list by the scheduler itself.
            self._wake_idle_drives()
            return
        self.pending.append(request)
        self._wake_idle_drives()

    def _wake_idle_drives(self) -> None:
        for drive_index, wakeup in enumerate(self._wakeups):
            if wakeup is not None and not wakeup.triggered:
                wakeup.succeed()
                self._wakeups[drive_index] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def run(self, horizon_s: float) -> MetricsReport:
        """Run to ``horizon_s`` and report shared steady-state metrics."""
        if self._started:
            raise RuntimeError("simulator already started")
        self._started = True
        for request in self.source.initial_requests(self.env.now):
            self.pending.append(request)
            self.metrics.on_arrival(request, self.env.now)
        for drive_index in range(len(self.drives)):
            self.env.process(self._drive_process(drive_index))
        if not self.source.is_closed:
            self.env.process(self._arrival_process(horizon_s))
        self.env.run(until=horizon_s)
        self.metrics.finalize(self.env.now)
        return self.metrics.report()

    def _arrival_process(self, horizon_s: float):
        for arrival_s, request in self.source.arrivals(horizon_s, self.env.now):
            delay = arrival_s - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self.submit(request)

    # ------------------------------------------------------------------
    # Per-drive service loop
    # ------------------------------------------------------------------
    def _timed(self, duration_s: float):
        self.metrics.on_drive_busy(self.env.now, duration_s)
        return self.env.timeout(duration_s)

    def _drive_process(self, drive_index: int):
        context = self.contexts[drive_index]
        scheduler = self.schedulers[drive_index]
        drive = self.drives[drive_index]
        block_mb = self.catalog.block_mb
        while True:
            decision = (
                scheduler.major_reschedule(context) if len(self.pending) else None
            )
            if decision is None:
                wakeup = self.env.event()
                self._wakeups[drive_index] = wakeup
                yield wakeup
                continue

            switching = decision.tape_id != drive.mounted_id
            start_head = 0.0 if switching else drive.head_mb
            service = ServiceList(decision.entries, head_mb=start_head)
            context.service = service

            if switching:
                # Claim the new tape first so no other drive grabs it
                # while this one rewinds and waits for the arm.
                self.claims[decision.tape_id] = drive_index
                old_tape = drive.mounted_id
                if drive.is_loaded:
                    yield self._timed(drive.rewind())
                    yield self._timed(drive.eject())
                grant = self.robot.acquire()
                yield grant
                try:
                    yield self._timed(self.robot_swap_s)
                finally:
                    self.robot.release()
                if old_tape is not None:
                    del self.claims[old_tape]
                    self._wake_idle_drives()  # the old tape is free again
                yield self._timed(drive.load(self.pool[decision.tape_id]))
                self.tape_switches += 1
                self.metrics.on_tape_switch(self.env.now)

            while not service.is_empty:
                entry = service.pop_next()
                yield self._timed(drive.access(entry.position_mb, block_mb))
                service.finish_in_flight()
                for request in entry.requests:
                    self.metrics.on_completion(request, self.env.now)
                    if self.source.is_closed:
                        replacement = self.source.on_completion(self.env.now)
                        if replacement is not None:
                            self.submit(replacement)

            context.service = None
            scheduler.on_sweep_complete(context)
