"""Operation logging: a structured trace of everything the drive does.

Attach an :class:`OperationLog` to a simulator to capture each timed
hardware operation — switches, locates+reads, idle waits — with start
time, duration, tape, and position.  Useful for debugging scheduler
behaviour ("why did it switch here?"), for visualizing head movement,
and for asserting fine-grained properties in tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List, Optional


class OpKind(enum.Enum):
    """Kinds of logged drive activity."""

    SWITCH = "switch"
    READ = "read"
    WRITE = "write"
    IDLE = "idle"
    #: An injected fault fired (zero-duration marker; ``detail`` = kind).
    FAULT = "fault"
    #: Backoff wait before retrying a transient fault.
    BACKOFF = "backoff"
    #: Drive down for repair after a hardware failure.
    REPAIR = "repair"


@dataclass(frozen=True)
class Operation:
    """One logged operation."""

    kind: OpKind
    start_s: float
    duration_s: float
    tape_id: Optional[int] = None
    position_mb: Optional[float] = None
    block_id: Optional[int] = None
    #: Free-form qualifier (e.g. the fault kind for FAULT records).
    detail: Optional[str] = None

    @property
    def end_s(self) -> float:
        """Completion time of the operation."""
        return self.start_s + self.duration_s


class OperationLog:
    """Append-only log of :class:`Operation` records."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        self._operations: List[Operation] = []
        self.capacity = capacity
        self.dropped = 0

    def append(self, operation: Operation) -> None:
        """Record ``operation`` (drops silently past ``capacity``)."""
        if self.capacity is not None and len(self._operations) >= self.capacity:
            self.dropped += 1
            return
        self._operations.append(operation)

    def __len__(self) -> int:
        return len(self._operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._operations)

    def of_kind(self, kind: OpKind) -> List[Operation]:
        """All operations of one kind, in time order."""
        return [operation for operation in self._operations if operation.kind is kind]

    def busy_seconds(self) -> float:
        """Total logged non-idle time."""
        return sum(
            operation.duration_s
            for operation in self._operations
            if operation.kind is not OpKind.IDLE
        )

    def validate_non_overlapping(self) -> None:
        """Raise ``AssertionError`` if logged operations overlap in time."""
        previous_end = 0.0
        for operation in self._operations:
            if operation.start_s < previous_end - 1e-9:
                raise AssertionError(
                    f"operation at {operation.start_s} overlaps previous "
                    f"ending {previous_end}"
                )
            previous_end = max(previous_end, operation.end_s)

    def format(self, limit: int = 50) -> str:
        """Human-readable rendering of the first ``limit`` operations."""
        lines = []
        for operation in self._operations[:limit]:
            where = ""
            if operation.tape_id is not None:
                where = f" tape={operation.tape_id}"
            if operation.position_mb is not None:
                where += f" pos={operation.position_mb:g}MB"
            if operation.block_id is not None:
                where += f" block={operation.block_id}"
            if operation.detail is not None:
                where += f" [{operation.detail}]"
            lines.append(
                f"{operation.start_s:12.2f}s  {operation.kind.value:6s} "
                f"{operation.duration_s:9.2f}s{where}"
            )
        if len(self._operations) > limit:
            lines.append(f"... {len(self._operations) - limit} more")
        return "\n".join(lines)


class LoggingSimulatorMixin:
    """Glue for simulators: call the hooks where operations happen."""

    oplog: Optional[OperationLog] = None

    def log_operation(self, **kwargs) -> None:
        """Append to the attached log, if any."""
        if self.oplog is not None:
            self.oplog.append(Operation(**kwargs))
