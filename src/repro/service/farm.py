"""Farms of independent jukeboxes (paper Section 4.8).

The paper's cost-performance argument assumes "the total workload
applied to a farm is spread evenly over the jukeboxes" and that farms
grow one jukebox at a time.  This module makes that setup executable:
``n`` single-drive jukeboxes, each simulated independently with its own
derived random stream, with the per-jukebox closed-queue population set
to an even share of the farm's total.

Jukeboxes in a farm share nothing (each has its own drive, tapes, and
request stream), so they are simulated sequentially in separate
environments and aggregated — semantically identical to a combined
simulation and trivially parallelizable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from typing import TYPE_CHECKING

from ..rng import derive_seed
from .metrics import MetricsReport
from .rollup import ReportRollup

if TYPE_CHECKING:  # pragma: no cover - avoid a circular runtime import
    from ..experiments.config import ExperimentConfig
    from ..obs.tracer import Tracer


@dataclass(frozen=True)
class FarmReport:
    """Aggregate metrics of a farm plus the per-jukebox reports.

    All additive aggregates delegate to :class:`~repro.service.rollup.
    ReportRollup`, the same ``MetricRegistry.merge``-based fold that
    backs :class:`~repro.federation.report.FederationReport`.
    """

    per_jukebox: List[MetricsReport]
    #: Per-jukebox traces, parallel to :attr:`per_jukebox`; empty unless
    #: :func:`run_farm` was given a ``tracer_factory``.
    traces: List["Tracer"] = field(default_factory=list)

    @property
    def rollup(self) -> ReportRollup:
        """The additive rollup over :attr:`per_jukebox`."""
        return ReportRollup(self.per_jukebox)

    @property
    def size(self) -> int:
        """Number of jukeboxes in the farm."""
        return len(self.per_jukebox)

    @property
    def aggregate_throughput_kb_s(self) -> float:
        """Total farm throughput (sum over jukeboxes)."""
        return self.rollup.aggregate_throughput_kb_s

    @property
    def aggregate_requests_per_min(self) -> float:
        """Total farm completion rate."""
        return self.rollup.aggregate_requests_per_min

    @property
    def mean_response_s(self) -> float:
        """Completion-weighted mean response time across the farm."""
        return self.rollup.mean_response_s

    @property
    def throughput_per_jukebox_kb_s(self) -> float:
        """The cost-performance numerator of Section 4.8."""
        return self.aggregate_throughput_kb_s / self.size

    # ------------------------------------------------------------------
    # SLO aggregates (all zero when no jukebox runs with a QoS layer)
    # ------------------------------------------------------------------
    @property
    def total_shed(self) -> int:
        """Requests shed by admission control across the farm."""
        return self.rollup.total_shed

    @property
    def total_expired(self) -> int:
        """Requests expired (TTL passed) across the farm."""
        return self.rollup.total_expired

    @property
    def deadline_miss_rate(self) -> float:
        """Finished-work-weighted deadline-miss rate across the farm."""
        return self.rollup.deadline_miss_rate

    @property
    def worst_p99_response_s(self) -> float:
        """Largest per-jukebox p99 response time (the farm's SLO tail)."""
        return self.rollup.worst_p99_response_s

    @property
    def saturated_count(self) -> int:
        """Jukeboxes whose measurement window completed nothing."""
        return self.rollup.saturated_count


@dataclass(frozen=True)
class FarmConfig:
    """All knobs of one farm run, as a first-class config.

    Historically farms were run positionally via :func:`run_farm`;
    wrapping the same three knobs in a config dataclass gives farms the
    identity every other run kind has — JSON round-trip, content
    digests, campaign caching, and dispatch through
    :func:`repro.api.run`.
    """

    #: The per-jukebox config (its ``queue_length`` and ``seed`` are
    #: overridden per jukebox; everything else applies verbatim).
    base: "ExperimentConfig"
    jukebox_count: int = 2
    #: Farm-wide closed population, split evenly over the jukeboxes.
    total_queue_length: int = 60

    def __post_init__(self) -> None:
        if self.jukebox_count <= 0:
            raise ValueError(
                f"jukebox_count must be positive, got {self.jukebox_count!r}"
            )
        if self.total_queue_length < self.jukebox_count:
            raise ValueError(
                f"total queue {self.total_queue_length} cannot give every one "
                f"of {self.jukebox_count} jukeboxes at least one request"
            )
        if not self.base.is_closed:
            raise ValueError("farms are defined for the closed-queueing model")

    @property
    def warmup_s(self) -> float:
        """Warm-up cutoff in simulated seconds (per jukebox)."""
        return self.base.warmup_s

    def describe(self) -> str:
        """Compact annotation: the base config's plus the farm shape."""
        return (
            f"FARM-{self.jukebox_count} Q-{self.total_queue_length} "
            f"{self.base.describe()}"
        )

    def with_(self, **overrides) -> "FarmConfig":
        """A copy with ``overrides`` applied."""
        from dataclasses import replace

        return replace(self, **overrides)


@dataclass(frozen=True)
class FarmResult:
    """A farm config together with its aggregate report."""

    config: FarmConfig
    report: FarmReport

    @property
    def aggregate_throughput_kb_s(self) -> float:
        """Total farm throughput in KB/s."""
        return self.report.aggregate_throughput_kb_s

    @property
    def mean_response_s(self) -> float:
        """Completion-weighted farm mean response time."""
        return self.report.mean_response_s


def _run_farm(
    base: "ExperimentConfig",
    jukebox_count: int,
    total_queue_length: int,
    tracer_factory: Optional[Callable[[int], "Tracer"]] = None,
) -> FarmReport:
    """Simulate a farm of ``jukebox_count`` identical jukeboxes.

    ``total_queue_length`` is the farm-wide closed population; each
    jukebox serves an even share (remainders go to the first
    jukeboxes).  Seeds are derived per jukebox so streams differ but the
    whole farm stays reproducible from ``base.seed``.

    ``tracer_factory`` (optional) is called as ``tracer_factory(index)``
    per jukebox; each returned :class:`~repro.obs.Tracer` is attached to
    that jukebox's run and collected on :attr:`FarmReport.traces`.
    """
    FarmConfig(base, jukebox_count, total_queue_length)  # shared validation
    from ..experiments.runner import _run_experiment  # circular-import guard

    share, remainder = divmod(total_queue_length, jukebox_count)
    reports: List[MetricsReport] = []
    traces: List["Tracer"] = []
    for index in range(jukebox_count):
        queue_length = share + (1 if index < remainder else 0)
        config = base.with_(
            queue_length=queue_length,
            seed=derive_seed(base.seed, f"farm:{index}") % (2**31),
        )
        obs = tracer_factory(index) if tracer_factory is not None else None
        reports.append(_run_experiment(config, obs=obs).report)
        if obs is not None:
            traces.append(obs)
    return FarmReport(per_jukebox=reports, traces=traces)


def run_farm(
    base: "ExperimentConfig",
    jukebox_count: int,
    total_queue_length: int,
    tracer_factory: Optional[Callable[[int], "Tracer"]] = None,
) -> FarmReport:
    """Deprecated entry point: route through :func:`repro.api.run`.

    Signature and return type are unchanged; new code should call
    ``repro.api.run(FarmConfig(base, jukebox_count, total_queue_length))``
    and use the returned :class:`FarmResult`.
    """
    from ..api import _warn_deprecated, run

    _warn_deprecated(
        "run_farm",
        "repro.api.run(FarmConfig(base, jukebox_count, total_queue_length))",
    )
    config = FarmConfig(base, jukebox_count, total_queue_length)
    return run(config, tracer_factory=tracer_factory).report
