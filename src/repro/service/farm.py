"""Farms of independent jukeboxes (paper Section 4.8).

The paper's cost-performance argument assumes "the total workload
applied to a farm is spread evenly over the jukeboxes" and that farms
grow one jukebox at a time.  This module makes that setup executable:
``n`` single-drive jukeboxes, each simulated independently with its own
derived random stream, with the per-jukebox closed-queue population set
to an even share of the farm's total.

Jukeboxes in a farm share nothing (each has its own drive, tapes, and
request stream), so they are simulated sequentially in separate
environments and aggregated — semantically identical to a combined
simulation and trivially parallelizable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from typing import TYPE_CHECKING

from ..rng import derive_seed
from .metrics import MetricsReport

if TYPE_CHECKING:  # pragma: no cover - avoid a circular runtime import
    from ..experiments.config import ExperimentConfig
    from ..obs.tracer import Tracer


@dataclass(frozen=True)
class FarmReport:
    """Aggregate metrics of a farm plus the per-jukebox reports."""

    per_jukebox: List[MetricsReport]
    #: Per-jukebox traces, parallel to :attr:`per_jukebox`; empty unless
    #: :func:`run_farm` was given a ``tracer_factory``.
    traces: List["Tracer"] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Number of jukeboxes in the farm."""
        return len(self.per_jukebox)

    @property
    def aggregate_throughput_kb_s(self) -> float:
        """Total farm throughput (sum over jukeboxes)."""
        return sum(report.throughput_kb_s for report in self.per_jukebox)

    @property
    def aggregate_requests_per_min(self) -> float:
        """Total farm completion rate."""
        return sum(report.requests_per_min for report in self.per_jukebox)

    @property
    def mean_response_s(self) -> float:
        """Completion-weighted mean response time across the farm."""
        total_completed = sum(report.completed for report in self.per_jukebox)
        if total_completed == 0:
            return 0.0
        weighted = sum(
            report.mean_response_s * report.completed for report in self.per_jukebox
        )
        return weighted / total_completed

    @property
    def throughput_per_jukebox_kb_s(self) -> float:
        """The cost-performance numerator of Section 4.8."""
        return self.aggregate_throughput_kb_s / self.size

    # ------------------------------------------------------------------
    # SLO aggregates (all zero when no jukebox runs with a QoS layer)
    # ------------------------------------------------------------------
    @property
    def total_shed(self) -> int:
        """Requests shed by admission control across the farm."""
        return sum(report.shed_requests for report in self.per_jukebox)

    @property
    def total_expired(self) -> int:
        """Requests expired (TTL passed) across the farm."""
        return sum(report.expired_requests for report in self.per_jukebox)

    @property
    def deadline_miss_rate(self) -> float:
        """Finished-work-weighted deadline-miss rate across the farm."""
        finished = sum(
            report.completed + report.expired_requests
            for report in self.per_jukebox
        )
        if finished == 0:
            return 0.0
        misses = sum(report.deadline_misses for report in self.per_jukebox)
        return misses / finished

    @property
    def worst_p99_response_s(self) -> float:
        """Largest per-jukebox p99 response time (the farm's SLO tail)."""
        return max(
            (report.p99_response_s for report in self.per_jukebox), default=0.0
        )

    @property
    def saturated_count(self) -> int:
        """Jukeboxes whose measurement window completed nothing."""
        return sum(1 for report in self.per_jukebox if report.saturated)


def run_farm(
    base: "ExperimentConfig",
    jukebox_count: int,
    total_queue_length: int,
    tracer_factory: Optional[Callable[[int], "Tracer"]] = None,
) -> FarmReport:
    """Simulate a farm of ``jukebox_count`` identical jukeboxes.

    ``total_queue_length`` is the farm-wide closed population; each
    jukebox serves an even share (remainders go to the first
    jukeboxes).  Seeds are derived per jukebox so streams differ but the
    whole farm stays reproducible from ``base.seed``.

    ``tracer_factory`` (optional) is called as ``tracer_factory(index)``
    per jukebox; each returned :class:`~repro.obs.Tracer` is attached to
    that jukebox's run and collected on :attr:`FarmReport.traces`.
    """
    if jukebox_count <= 0:
        raise ValueError(f"jukebox_count must be positive, got {jukebox_count!r}")
    if total_queue_length < jukebox_count:
        raise ValueError(
            f"total queue {total_queue_length} cannot give every one of "
            f"{jukebox_count} jukeboxes at least one request"
        )
    if not base.is_closed:
        raise ValueError("farms are defined for the closed-queueing model")
    from ..experiments.runner import run_experiment  # circular-import guard

    share, remainder = divmod(total_queue_length, jukebox_count)
    reports: List[MetricsReport] = []
    traces: List["Tracer"] = []
    for index in range(jukebox_count):
        queue_length = share + (1 if index < remainder else 0)
        config = base.with_(
            queue_length=queue_length,
            seed=derive_seed(base.seed, f"farm:{index}") % (2**31),
        )
        obs = tracer_factory(index) if tracer_factory is not None else None
        reports.append(run_experiment(config, obs=obs).report)
        if obs is not None:
            traces.append(obs)
    return FarmReport(per_jukebox=reports, traces=traces)
