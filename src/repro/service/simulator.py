"""The service model (paper Section 2.2) as a discrete-event process.

The drive process repeatedly cycles through the paper's four steps:

1. invoke the major rescheduler on the pending list;
2. switch to the selected tape if it is not already loaded;
3. execute the service list, handing requests that arrive mid-sweep to
   the incremental scheduler;
4. if the pending list is empty, wait for a request to arrive.

Operation durations come from the jukebox's timing model; state changes
are committed at operation start and the simulated clock advances by the
returned duration, so a request arriving during an operation sees the
operation as already committed (it may only affect the not-yet-started
remainder of the sweep).

When a :class:`~repro.faults.FaultInjector` is attached, each physical
operation may fail: transient faults are retried under the
:class:`~repro.faults.RetryPolicy` (backoff waits elapse in simulated
time with the drive idle), permanent ones trigger *replica failover* —
the failed read's requests re-enter the pending list and the schedulers,
consulting the catalog through the fault-masked view, re-plan them onto
a surviving copy.  Requests whose every copy is lost fail permanently.
Without an injector every fault branch is skipped outright, so
fault-free runs are bit-identical to the pre-fault simulator.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.base import Scheduler, SchedulerContext
from ..core.pending import PendingList
from ..core.sweep import ServiceEntry
from ..des import Environment, Event
from ..faults.injector import FaultInjector
from ..faults.masking import FaultMaskedCatalog
from ..faults.retry import RetryPolicy
from ..layout.catalog import BlockCatalog
from ..obs.tracer import Tracer
from ..qos.manager import QoSManager
from ..tape.jukebox import Jukebox
from ..workload.requests import Request
from .metrics import MetricsCollector, MetricsReport
from .oplog import OpKind, Operation, OperationLog


class JukeboxSimulator:
    """Couples jukebox hardware, a scheduler, and a request source."""

    def __init__(
        self,
        env: Environment,
        jukebox: Jukebox,
        catalog: BlockCatalog,
        scheduler: Scheduler,
        source,
        metrics: MetricsCollector,
        oplog: Optional[OperationLog] = None,
        faults: Optional[FaultInjector] = None,
        retry: Optional[RetryPolicy] = None,
        qos: Optional[QoSManager] = None,
        obs: Optional[Tracer] = None,
    ) -> None:
        self.env = env
        self.jukebox = jukebox
        self.qos = qos
        #: Optional structured tracer (see :mod:`repro.obs`).  Every
        #: call site is guarded, so ``obs=None`` adds no work and runs
        #: stay bit-identical to an untraced build.
        self.obs = obs
        if obs is not None:
            obs.bind_clock(lambda: env.now)
            if qos is not None:
                qos.obs = obs
            if faults is not None:
                faults.obs = obs
        if qos is not None:
            # Starvation guard (when configured) intercepts only the
            # major reschedule; every other scheduler call delegates.
            scheduler = qos.wrap_scheduler(scheduler)
        self.scheduler = scheduler
        self.source = source
        self.metrics = metrics
        self.faults = faults
        if retry is None and faults is not None:
            retry = faults.config.retry
        self.retry = retry
        masked_tapes = set()
        scheduler_catalog = catalog
        if faults is not None:
            # Schedulers (and the pending list's candidate queries) see
            # the catalog through the fault mask, so a tape taken out of
            # service or a copy discovered bad vanishes from the next
            # scheduling decision.
            masked_tapes = faults.failed_tapes
            scheduler_catalog = FaultMaskedCatalog(
                catalog, masked_tapes, faults.known_bad
            )
        self.context = SchedulerContext(
            jukebox=jukebox,
            catalog=scheduler_catalog,
            pending=PendingList(scheduler_catalog),
            masked_tapes=masked_tapes,
        )
        self._wakeup: Optional[Event] = None
        self._started = False
        #: Count of arrivals absorbed into an in-progress sweep.
        self.absorbed_arrivals = 0
        #: Optional hook invoked as ``hook(request, now)`` after each
        #: completion (used by the storage-hierarchy tier to promote
        #: blocks into its caches and finish the user-visible request).
        self.on_request_complete = None
        #: Optional structured trace of drive operations.
        self.oplog = oplog

    def _log(self, kind: OpKind, start_s: float, duration_s: float, **where) -> None:
        if self.oplog is not None:
            self.oplog.append(
                Operation(kind=kind, start_s=start_s, duration_s=duration_s, **where)
            )
        if self.obs is not None:
            self.obs.on_op(
                0,
                kind.value,
                start_s,
                duration_s,
                tape_id=where.get("tape_id"),
                block_id=where.get("block_id"),
                position_mb=where.get("position_mb"),
                detail=where.get("detail"),
            )

    # ------------------------------------------------------------------
    # Request intake
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        """A request arrives: incremental-schedule it or defer it."""
        self.metrics.on_arrival(request, self.env.now)
        if self.obs is not None:
            self.obs.on_arrival(request, self.env.now)
        if self.qos is not None and not self.qos.admit(
            request, len(self.context.pending)
        ):
            # Shed at the boundary: the request never reaches the
            # pending list or the schedulers.  Shed requests do not
            # spawn closed-population replacements (re-offering a fresh
            # request at the same instant would be shed again forever).
            return
        if self.context.service is not None:
            if self.scheduler.on_arrival(self.context, request):
                self.absorbed_arrivals += 1
        else:
            self.context.pending.append(request)
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, horizon_s: float) -> None:
        """Inject initial requests and start the simulation processes."""
        if self._started:
            raise RuntimeError("simulator already started")
        self._started = True
        for request in self.source.initial_requests(self.env.now):
            self.submit(request)
        self.env.process(self._drive_process())
        if not self.source.is_closed:
            self.env.process(self._arrival_process(horizon_s))

    def run(self, horizon_s: float, finalize: bool = True) -> MetricsReport:
        """Run until ``horizon_s`` and return the metrics report."""
        self.start(horizon_s)
        self.env.run(until=horizon_s)
        if finalize:
            self.metrics.finalize(self.env.now)
        return self.metrics.report()

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    def _arrival_process(self, horizon_s: float):
        """Open-queueing Poisson arrival stream."""
        for arrival_s, request in self.source.arrivals(horizon_s, self.env.now):
            delay = arrival_s - self.env.now
            if delay > 0:
                yield delay
            self.submit(request)

    def _timed(self, duration_s: float) -> float:
        """Record drive busy time; return the delay for a bare yield."""
        self.metrics.on_drive_busy(self.env.now, duration_s)
        return duration_s

    def _drive_process(self):
        """The paper's four-step service loop (fault-aware when enabled)."""
        context = self.context
        block_mb = context.catalog.block_mb
        while True:
            if self.faults is not None and self.faults.drive_failure_due(
                0, self.env.now
            ):
                yield from self._repair_drive()
                continue

            # Step 4: idle-wait for work.
            while len(context.pending) == 0:
                idle_start = self.env.now
                self._wakeup = self.env.event()
                yield self._wakeup
                self._wakeup = None
                self._log(OpKind.IDLE, idle_start, self.env.now - idle_start)

            # Requests whose every known copy is gone can never be
            # scheduled (the masked catalog shows them no replicas) —
            # fail them before planning, then re-check for work.
            if self.faults is not None:
                self._drop_lost_requests()
                if len(context.pending) == 0:
                    continue

            # Expiry-on-dequeue: purge requests whose TTL has already
            # passed so the scheduler never plans undeliverable work.
            if self.qos is not None:
                self._expire_from_pending()
                if len(context.pending) == 0:
                    continue

            # Step 1: major reschedule.
            decision = self.scheduler.major_reschedule(context)
            if decision is None:  # pragma: no cover - pending was non-empty
                continue
            if self.faults is not None and self.faults.tape_failed(decision.tape_id):
                # Backstop for schedulers that plan outside the masked
                # pending view (envelope): fail over the whole decision.
                for entry in decision.entries:
                    self._resolve_replica_failure(entry)
                continue
            if self.obs is not None:
                self.obs.on_decision(
                    self.env.now,
                    0,
                    self.scheduler.name,
                    decision,
                    len(context.pending),
                )

            # Step 2: switch tapes if necessary.  The service list exists
            # during the switch so arriving requests can be inserted.
            switching = decision.tape_id != self.jukebox.mounted_id
            start_head = 0.0 if switching else self.jukebox.head_mb
            service = self.scheduler.build_service_list(
                decision.entries, head_mb=start_head
            )
            context.service = service
            if switching:
                if self.faults is not None:
                    mounted = yield from self._switch_with_faults(decision.tape_id)
                    if not mounted:
                        context.service = None
                        continue
                else:
                    switch_start = self.env.now
                    duration = self.jukebox.switch_to(decision.tape_id)
                    yield self._timed(duration)
                    self.metrics.on_tape_switch(self.env.now)
                    self._log(
                        OpKind.SWITCH, switch_start, duration, tape_id=decision.tape_id
                    )
                if self.obs is not None:
                    self.obs.on_exchange(
                        (
                            request
                            for entry in decision.entries
                            for request in entry.requests
                        ),
                        self.env.now,
                    )

            # Step 3: execute the service list as one sweep.
            drive_failed = False
            while not service.is_empty:
                if self.faults is not None and self.faults.drive_failure_due(
                    0, self.env.now
                ):
                    # The drive died mid-sweep: the unread remainder goes
                    # back to the pending list to be re-planned after
                    # repair (same tape, same copies — nothing was lost).
                    self._requeue_entries(service.remaining())
                    while not service.is_empty:
                        service.pop_next()
                    service.finish_in_flight()
                    drive_failed = True
                    break
                entry = service.pop_next()
                if self.qos is not None:
                    live, expired = self.qos.split_expired(
                        entry.requests, self.env.now
                    )
                    if expired:
                        for request in expired:
                            self._expire_request(request)
                        if not live:
                            # Every requester's TTL has passed: skip the
                            # physical read entirely.
                            service.finish_in_flight()
                            continue
                        entry.requests[:] = live
                read_start = self.env.now
                head_before = self.jukebox.head_mb if self.obs is not None else 0.0
                duration = self.jukebox.access(entry.position_mb, block_mb)
                yield self._timed(duration)
                self._log(
                    OpKind.READ,
                    read_start,
                    duration,
                    tape_id=self.jukebox.mounted_id,
                    position_mb=entry.position_mb,
                    block_id=entry.block_id,
                )
                fault = (
                    self.faults.read_fault(self.jukebox.mounted_id, entry.block_id)
                    if self.faults is not None
                    else None
                )
                if fault is None:
                    service.finish_in_flight()
                    self._deliver(
                        entry, duration, locate_s=self._locate_of(head_before, entry)
                    )
                else:
                    yield from self._recover_read(entry, fault)
                    service.finish_in_flight()

            context.service = None
            self.scheduler.on_sweep_complete(context)
            if self.qos is not None:
                self.qos.on_progress(len(context.pending))
            if drive_failed:
                yield from self._repair_drive()

    # ------------------------------------------------------------------
    # Completion and fault recovery
    # ------------------------------------------------------------------
    def _locate_of(self, head_before_mb: float, entry: ServiceEntry) -> float:
        """Locate component of the access that just served ``entry``.

        ``DriveTimingModel.locate`` is pure (and memoized), so this
        recomputes the exact figure the drive charged without touching
        any simulation state.  Only called when a tracer is attached.
        """
        if self.obs is None:
            return 0.0
        return self.jukebox.timing.locate(head_before_mb, entry.position_mb)

    def _deliver(
        self, entry: ServiceEntry, service_s: float, locate_s: float = 0.0
    ) -> None:
        """Complete every request coalesced onto a successful read."""
        for request in entry.requests:
            self.metrics.on_completion(request, self.env.now, service_s=service_s)
            if self.obs is not None:
                self.obs.on_complete(
                    request, self.env.now, locate_s, service_s - locate_s
                )
            if self.on_request_complete is not None:
                self.on_request_complete(request, self.env.now)
            if self.source.is_closed:
                replacement = self.source.on_completion(self.env.now)
                if replacement is not None:
                    self.submit(replacement)

    def _recover_read(self, entry: ServiceEntry, fault):
        """Retry a faulted read in place; escalate to failover if futile."""
        tape_id = self.jukebox.mounted_id
        block_mb = self.context.catalog.block_mb
        attempts = 1
        if self.obs is not None:
            self.obs.on_fault(entry.requests, self.env.now)
        while True:
            self.metrics.on_fault(fault.kind, self.env.now)
            if self.qos is not None:
                self.qos.on_fault()
            self._log(
                OpKind.FAULT,
                self.env.now,
                0.0,
                tape_id=tape_id,
                position_mb=entry.position_mb,
                block_id=entry.block_id,
                detail=fault.kind,
            )
            if not (
                fault.transient
                and self.retry is not None
                and self.retry.allows(attempts)
            ):
                break
            backoff_s = self.retry.backoff_s(attempts - 1)
            self.metrics.on_retry(self.env.now)
            if self.obs is not None:
                self.obs.event(
                    self.env.now,
                    "retry",
                    drive=0,
                    block_id=entry.block_id,
                    attempt=attempts,
                )
            if backoff_s > 0:
                backoff_start = self.env.now
                yield backoff_s
                self._log(
                    OpKind.BACKOFF,
                    backoff_start,
                    backoff_s,
                    tape_id=tape_id,
                    block_id=entry.block_id,
                )
            read_start = self.env.now
            head_before = self.jukebox.head_mb if self.obs is not None else 0.0
            duration = self.jukebox.access(entry.position_mb, block_mb)
            yield self._timed(duration)
            self._log(
                OpKind.READ,
                read_start,
                duration,
                tape_id=tape_id,
                position_mb=entry.position_mb,
                block_id=entry.block_id,
                detail="retry",
            )
            attempts += 1
            fault = self.faults.read_fault(tape_id, entry.block_id)
            if fault is None:
                self._deliver(
                    entry, duration, locate_s=self._locate_of(head_before, entry)
                )
                return
        # Permanent fault, or the retry budget ran out: this copy is done.
        self.faults.condemn_replica(tape_id, entry.block_id)
        self._resolve_replica_failure(entry)

    def _resolve_replica_failure(self, entry: ServiceEntry) -> None:
        """Fail over ``entry``'s requests to a surviving copy, or fail them."""
        if self.faults.surviving_replicas(entry.block_id):
            self.metrics.on_failover(len(entry.requests), self.env.now)
            if self.obs is not None:
                self.obs.event(
                    self.env.now,
                    "failover",
                    drive=0,
                    block_id=entry.block_id,
                    requests=len(entry.requests),
                )
                self.obs.on_requeue(entry.requests, self.env.now, "failover")
            for request in entry.requests:
                self.context.pending.append(request)
        else:
            for request in entry.requests:
                self._fail_request(request)

    def _fail_request(self, request: Request) -> None:
        """Permanently fail ``request`` (keeps a closed population going)."""
        self.metrics.on_request_failed(request, self.env.now)
        if self.obs is not None:
            self.obs.on_failed(request, self.env.now)
        if self.source.is_closed:
            replacement = self.source.on_completion(self.env.now)
            if replacement is not None:
                self.submit(replacement)

    def _expire_request(self, request: Request) -> None:
        """Expire ``request`` (keeps a closed population going)."""
        self.metrics.on_expired(request, self.env.now)
        if self.obs is not None:
            self.obs.on_expired(request, self.env.now)
        if self.source.is_closed:
            replacement = self.source.on_completion(self.env.now)
            if replacement is not None:
                self.submit(replacement)

    def _expire_from_pending(self) -> None:
        """Remove and expire pending requests whose TTL has passed."""
        for request in self.qos.expired_pending(
            self.context.pending, self.env.now
        ):
            self._expire_request(request)

    def _requeue_entries(self, entries: List[ServiceEntry]) -> None:
        """Return un-read sweep entries to the pending list (no failover)."""
        for entry in entries:
            if self.obs is not None:
                self.obs.on_requeue(entry.requests, self.env.now, "drive-repair")
            for request in entry.requests:
                self.context.pending.append(request)

    def _drop_lost_requests(self) -> None:
        """Fail pending requests whose every known copy is gone."""
        lost = [
            request
            for request in self.context.pending.snapshot()
            if self.faults.block_lost(request.block_id)
        ]
        if lost:
            self.context.pending.remove_many(lost)
            for request in lost:
                self._fail_request(request)

    def _switch_with_faults(self, tape_id: int):
        """Mount ``tape_id`` under robot pick faults; True when mounted."""
        attempts = 0
        while True:
            fault = self.faults.robot_pick_fault(tape_id)
            if fault is None:
                switch_start = self.env.now
                duration = self.jukebox.switch_to(tape_id)
                yield self._timed(duration)
                self.metrics.on_tape_switch(self.env.now)
                self._log(OpKind.SWITCH, switch_start, duration, tape_id=tape_id)
                return True
            attempts += 1
            self.metrics.on_fault(fault.kind, self.env.now)
            if self.qos is not None:
                self.qos.on_fault()
            # The failed pick still wastes one arm motion.
            wasted_start = self.env.now
            yield self._timed(self.jukebox.timing.robot_swap_s)
            self._log(
                OpKind.FAULT,
                wasted_start,
                self.jukebox.timing.robot_swap_s,
                tape_id=tape_id,
                detail=fault.kind,
            )
            if self.retry is not None and self.retry.allows(attempts):
                backoff_s = self.retry.backoff_s(attempts - 1)
                self.metrics.on_retry(self.env.now)
                if backoff_s > 0:
                    backoff_start = self.env.now
                    yield backoff_s
                    self._log(OpKind.BACKOFF, backoff_start, backoff_s, tape_id=tape_id)
                continue
            # The cartridge is stuck: take the tape out of service and
            # fail over everything scheduled against it.
            self.faults.fail_tape(tape_id)
            service = self.context.service
            if service is not None:
                for entry in service.remaining():
                    self._resolve_replica_failure(entry)
                while not service.is_empty:
                    service.pop_next()
                service.finish_in_flight()
            self._drop_lost_requests()
            return False

    def _repair_drive(self):
        """Take the drive down for repair; re-arm its failure clock."""
        failure_start = self.env.now
        self.metrics.on_drive_failure(failure_start)
        self.metrics.on_fault("drive-failure", failure_start)
        if self.qos is not None:
            self.qos.on_fault()
        repair_s = self.faults.begin_repair(0, failure_start)
        self.metrics.on_drive_repair(failure_start, repair_s)
        if self.obs is not None:
            self.obs.event(
                failure_start, "drive-failure", drive=0, repair_s=repair_s
            )
        self.jukebox.unload_for_repair()
        self._log(OpKind.REPAIR, failure_start, repair_s, detail="drive-failure")
        yield repair_s
