"""The service model (paper Section 2.2) as a discrete-event process.

The drive process repeatedly cycles through the paper's four steps:

1. invoke the major rescheduler on the pending list;
2. switch to the selected tape if it is not already loaded;
3. execute the service list, handing requests that arrive mid-sweep to
   the incremental scheduler;
4. if the pending list is empty, wait for a request to arrive.

Operation durations come from the jukebox's timing model; state changes
are committed at operation start and the simulated clock advances by the
returned duration, so a request arriving during an operation sees the
operation as already committed (it may only affect the not-yet-started
remainder of the sweep).
"""

from __future__ import annotations

from typing import Optional

from ..core.base import Scheduler, SchedulerContext
from ..core.pending import PendingList
from ..core.sweep import ServiceList
from ..des import Environment, Event
from ..layout.catalog import BlockCatalog
from ..tape.jukebox import Jukebox
from ..workload.requests import Request
from .metrics import MetricsCollector, MetricsReport
from .oplog import OpKind, Operation, OperationLog


class JukeboxSimulator:
    """Couples jukebox hardware, a scheduler, and a request source."""

    def __init__(
        self,
        env: Environment,
        jukebox: Jukebox,
        catalog: BlockCatalog,
        scheduler: Scheduler,
        source,
        metrics: MetricsCollector,
        oplog: Optional[OperationLog] = None,
    ) -> None:
        self.env = env
        self.jukebox = jukebox
        self.scheduler = scheduler
        self.source = source
        self.metrics = metrics
        self.context = SchedulerContext(
            jukebox=jukebox, catalog=catalog, pending=PendingList(catalog)
        )
        self._wakeup: Optional[Event] = None
        self._started = False
        #: Count of arrivals absorbed into an in-progress sweep.
        self.absorbed_arrivals = 0
        #: Optional hook invoked as ``hook(request, now)`` after each
        #: completion (used by the storage-hierarchy tier to promote
        #: blocks into its caches and finish the user-visible request).
        self.on_request_complete = None
        #: Optional structured trace of drive operations.
        self.oplog = oplog

    def _log(self, kind: OpKind, start_s: float, duration_s: float, **where) -> None:
        if self.oplog is not None:
            self.oplog.append(
                Operation(kind=kind, start_s=start_s, duration_s=duration_s, **where)
            )

    # ------------------------------------------------------------------
    # Request intake
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        """A request arrives: incremental-schedule it or defer it."""
        self.metrics.on_arrival(request, self.env.now)
        if self.context.service is not None:
            if self.scheduler.on_arrival(self.context, request):
                self.absorbed_arrivals += 1
        else:
            self.context.pending.append(request)
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, horizon_s: float) -> None:
        """Inject initial requests and start the simulation processes."""
        if self._started:
            raise RuntimeError("simulator already started")
        self._started = True
        for request in self.source.initial_requests(self.env.now):
            self.submit(request)
        self.env.process(self._drive_process())
        if not self.source.is_closed:
            self.env.process(self._arrival_process(horizon_s))

    def run(self, horizon_s: float, finalize: bool = True) -> MetricsReport:
        """Run until ``horizon_s`` and return the metrics report."""
        self.start(horizon_s)
        self.env.run(until=horizon_s)
        if finalize:
            self.metrics.finalize(self.env.now)
        return self.metrics.report()

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    def _arrival_process(self, horizon_s: float):
        """Open-queueing Poisson arrival stream."""
        for arrival_s, request in self.source.arrivals(horizon_s, self.env.now):
            delay = arrival_s - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self.submit(request)

    def _timed(self, duration_s: float):
        """Record drive busy time and return the matching timeout event."""
        self.metrics.on_drive_busy(self.env.now, duration_s)
        return self.env.timeout(duration_s)

    def _drive_process(self):
        """The paper's four-step service loop."""
        context = self.context
        block_mb = context.catalog.block_mb
        while True:
            # Step 4: idle-wait for work.
            while len(context.pending) == 0:
                idle_start = self.env.now
                self._wakeup = self.env.event()
                yield self._wakeup
                self._wakeup = None
                self._log(OpKind.IDLE, idle_start, self.env.now - idle_start)

            # Step 1: major reschedule.
            decision = self.scheduler.major_reschedule(context)
            if decision is None:  # pragma: no cover - pending was non-empty
                continue

            # Step 2: switch tapes if necessary.  The service list exists
            # during the switch so arriving requests can be inserted.
            switching = decision.tape_id != self.jukebox.mounted_id
            start_head = 0.0 if switching else self.jukebox.head_mb
            service = self.scheduler.build_service_list(
                decision.entries, head_mb=start_head
            )
            context.service = service
            if switching:
                switch_start = self.env.now
                duration = self.jukebox.switch_to(decision.tape_id)
                yield self._timed(duration)
                self.metrics.on_tape_switch(self.env.now)
                self._log(
                    OpKind.SWITCH, switch_start, duration, tape_id=decision.tape_id
                )

            # Step 3: execute the service list as one sweep.
            while not service.is_empty:
                entry = service.pop_next()
                read_start = self.env.now
                duration = self.jukebox.access(entry.position_mb, block_mb)
                yield self._timed(duration)
                self._log(
                    OpKind.READ,
                    read_start,
                    duration,
                    tape_id=self.jukebox.mounted_id,
                    position_mb=entry.position_mb,
                    block_id=entry.block_id,
                )
                service.finish_in_flight()
                for request in entry.requests:
                    self.metrics.on_completion(request, self.env.now, service_s=duration)
                    if self.on_request_complete is not None:
                        self.on_request_complete(request, self.env.now)
                    if self.source.is_closed:
                        replacement = self.source.on_completion(self.env.now)
                        if replacement is not None:
                            self.submit(replacement)

            context.service = None
            self.scheduler.on_sweep_complete(context)
