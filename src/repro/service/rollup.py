"""Additive rollup of :class:`MetricsReport` sets via ``MetricRegistry``.

Farms and federations both need the same aggregation: sum the additive
quantities of N per-library reports (throughput, completions, shed and
expired counts, weighted response-time numerators) and derive the
ratios from the sums.  Before this module each aggregate was a bespoke
``sum(...)`` comprehension on :class:`~repro.service.farm.FarmReport`;
now one conversion (:func:`report_registry`) maps a report onto named
counters and one fold (:func:`merge_reports`) accumulates any number of
them through :meth:`repro.obs.MetricRegistry.merge` — the same
mechanism campaigns use to aggregate reliability counters.

Addition order is the report order, exactly as the historical
comprehensions summed, so every rolled-up float is bit-identical to the
pre-rollup implementation.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..obs.registry import MetricRegistry
from .metrics import MetricsReport

#: Additive ``MetricsReport`` fields rolled straight into counters.
ADDITIVE_FIELDS = (
    "completed",
    "arrivals",
    "total_completed",
    "throughput_kb_s",
    "requests_per_min",
    "tape_switches",
    "shed_requests",
    "expired_requests",
    "deadline_misses",
    "retries",
    "failovers",
    "failed_requests",
    "drive_failures",
    "forced_promotions",
    "breaker_trips",
)

#: Derived counters (weighted-mean numerators and denominators).
DERIVED_COUNTERS = (
    "response_weighted_s",
    "finished_with_expired",
    "saturated",
)


def report_registry(report: MetricsReport) -> MetricRegistry:
    """One report's additive quantities as a :class:`MetricRegistry`.

    Counter names are the report field names, plus three derived ones:
    ``response_weighted_s`` (mean response x completions, the weighted
    mean numerator), ``finished_with_expired`` (completed + expired, the
    deadline-miss-rate denominator), and ``saturated`` (0/1, so the
    merged counter is the saturated-library count).
    """
    registry = MetricRegistry()
    for name in ADDITIVE_FIELDS:
        registry.inc(name, getattr(report, name))
    registry.inc("response_weighted_s", report.mean_response_s * report.completed)
    registry.inc("finished_with_expired", report.completed + report.expired_requests)
    registry.inc("saturated", 1 if report.saturated else 0)
    return registry


def merge_reports(reports: Iterable[MetricsReport]) -> MetricRegistry:
    """Fold per-library reports into one additive registry.

    Built on :meth:`MetricRegistry.merge`, so the result composes with
    any other registry (e.g. campaign reliability counters) and keeps
    the left-to-right addition order of the input sequence.
    """
    merged = MetricRegistry()
    for report in reports:
        merged.merge(report_registry(report))
    return merged


class ReportRollup:
    """Shared aggregate view over per-library reports.

    The property set mirrors what :class:`~repro.service.farm.FarmReport`
    has always exposed; :class:`~repro.federation.report.FederationReport`
    exposes the same rollup for a fleet of libraries.
    """

    def __init__(self, reports: Sequence[MetricsReport]) -> None:
        self.reports = list(reports)
        self.registry = merge_reports(self.reports)

    @property
    def size(self) -> int:
        """Number of rolled-up reports."""
        return len(self.reports)

    @property
    def aggregate_throughput_kb_s(self) -> float:
        """Total throughput (sum over libraries)."""
        return self.registry.count("throughput_kb_s")

    @property
    def aggregate_requests_per_min(self) -> float:
        """Total completion rate (sum over libraries)."""
        return self.registry.count("requests_per_min")

    @property
    def mean_response_s(self) -> float:
        """Completion-weighted mean response time."""
        completed = self.registry.count("completed")
        if completed == 0:
            return 0.0
        return self.registry.count("response_weighted_s") / completed

    @property
    def total_shed(self) -> int:
        """Requests shed by admission control across the set."""
        return self.registry.count("shed_requests")

    @property
    def total_expired(self) -> int:
        """Requests expired (TTL passed) across the set."""
        return self.registry.count("expired_requests")

    @property
    def deadline_miss_rate(self) -> float:
        """Finished-work-weighted deadline-miss rate across the set."""
        finished = self.registry.count("finished_with_expired")
        if finished == 0:
            return 0.0
        return self.registry.count("deadline_misses") / finished

    @property
    def worst_p99_response_s(self) -> float:
        """Largest per-library p99 response time (the fleet's SLO tail)."""
        return max((report.p99_response_s for report in self.reports), default=0.0)

    @property
    def saturated_count(self) -> int:
        """Libraries whose measurement window completed nothing."""
        return self.registry.count("saturated")
