"""Delta-file write-back: idle-time and piggybacked writes.

The paper's workload section assumes "writes would be directed to
disk-resident delta files, occasionally written to tape during idle
time or piggybacked on the read schedule".  This module implements that
mechanism:

* a :class:`DeltaBuffer` stages dirty logical blocks on disk — one
  pending write item per physical copy (a replicated block is clean
  only when every copy has been rewritten);
* a :class:`WritebackSimulator` extends the service loop so that

  - each read sweep is **piggybacked** with the staged writes destined
    for the mounted tape (they join the same forward/reverse sweep, so
    they ride on positioning the schedule pays for anyway), and
  - when the jukebox goes **idle** with writes outstanding, the drive
    performs a pure write sweep on the tape with the most staged writes
    instead of sitting still.

Transfer cost of a write equals a read of the same size (helical-scan
overwrite-in-place simplification; the paper's delta-file design makes
the same assumption implicitly by piggybacking writes on read sweeps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.sweep import ServiceEntry, ServiceList
from ..layout.catalog import BlockCatalog
from ..stats import RunningStats
from ..workload.requests import Request
from .simulator import JukeboxSimulator


@dataclass(frozen=True)
class WriteItem:
    """One pending physical write: a block copy on a specific tape."""

    block_id: int
    tape_id: int
    position_mb: float
    staged_s: float


@dataclass
class DeltaBuffer:
    """Disk-resident staging area for not-yet-hardened writes."""

    catalog: BlockCatalog
    #: (block_id, tape_id) -> staged item, so re-dirtying coalesces.
    _items: Dict[tuple, WriteItem] = field(default_factory=dict)
    staged_total: int = 0
    written_total: int = 0
    write_latency: RunningStats = field(default_factory=RunningStats)

    def stage(self, block_id: int, now: float) -> int:
        """Mark ``block_id`` dirty; returns how many copies need writing."""
        replicas = self.catalog.replicas_of(block_id)
        for replica in replicas:
            key = (block_id, replica.tape_id)
            if key not in self._items:
                self._items[key] = WriteItem(
                    block_id=block_id,
                    tape_id=replica.tape_id,
                    position_mb=replica.position_mb,
                    staged_s=now,
                )
        self.staged_total += 1
        return len(replicas)

    def __len__(self) -> int:
        return len(self._items)

    def items_for_tape(self, tape_id: int) -> List[WriteItem]:
        """Staged writes whose target copy lives on ``tape_id``."""
        return sorted(
            (item for item in self._items.values() if item.tape_id == tape_id),
            key=lambda item: item.position_mb,
        )

    def backlog_by_tape(self) -> Dict[int, int]:
        """tape_id -> number of staged writes targeting it."""
        backlog: Dict[int, int] = {}
        for item in self._items.values():
            backlog[item.tape_id] = backlog.get(item.tape_id, 0) + 1
        return backlog

    def complete(self, item: WriteItem, now: float) -> None:
        """A copy was written to tape; record its staging latency."""
        self._items.pop((item.block_id, item.tape_id), None)
        self.written_total += 1
        self.write_latency.add(now - item.staged_s)


class _WriteEntry(ServiceEntry):
    """A sweep entry that writes instead of reads (no waiting requests)."""

    def __init__(self, item: WriteItem) -> None:
        super().__init__(position_mb=item.position_mb, block_id=item.block_id)
        self.write_item = item


class WritebackSimulator(JukeboxSimulator):
    """Service model with piggybacked and idle-time write-back.

    ``write_interarrival_s`` adds a Poisson stream of block updates
    (drawn by the same skew as reads, from ``write_rng``); pass ``None``
    and call :meth:`delta.stage` directly for scripted writes.
    """

    def __init__(
        self,
        *args,
        write_interarrival_s: Optional[float] = None,
        write_rng=None,
        piggyback: bool = True,
        idle_flush: bool = True,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.delta = DeltaBuffer(catalog=self.context.catalog)
        self.write_interarrival_s = write_interarrival_s
        self.write_rng = write_rng
        self.piggyback = piggyback
        self.idle_flush = idle_flush
        self.piggybacked_writes = 0
        self.idle_flush_sweeps = 0
        if write_interarrival_s is not None and write_rng is None:
            raise ValueError("write_interarrival_s requires write_rng")

    # ------------------------------------------------------------------
    def start(self, horizon_s: float) -> None:
        """Start the read machinery plus the write arrival stream."""
        super().start(horizon_s)
        if self.write_interarrival_s is not None:
            self.env.process(self._write_arrival_process(horizon_s))

    def _write_arrival_process(self, horizon_s: float):
        skew = getattr(self.source, "skew", None)
        while True:
            delay = self.write_rng.expovariate(1.0 / self.write_interarrival_s)
            if self.env.now + delay > horizon_s:
                return
            yield delay
            if skew is not None:
                block_id = skew.draw_block(self.write_rng, self.context.catalog)
            else:
                block_id = self.write_rng.randrange(self.context.catalog.n_blocks)
            self.delta.stage(block_id, self.env.now)
            if self._wakeup is not None and not self._wakeup.triggered:
                self._wakeup.succeed()

    # ------------------------------------------------------------------
    def _drive_process(self):
        """The four-step loop, with write piggybacking and idle flushes."""
        context = self.context
        block_mb = context.catalog.block_mb
        while True:
            while len(context.pending) == 0:
                if self.idle_flush and len(self.delta) > 0:
                    yield from self._flush_sweep(block_mb)
                    if len(context.pending) > 0:
                        break
                    continue
                self._wakeup = self.env.event()
                yield self._wakeup
                self._wakeup = None
            if len(context.pending) == 0:
                continue

            decision = self.scheduler.major_reschedule(context)
            if decision is None:  # pragma: no cover - pending non-empty
                continue

            switching = decision.tape_id != self.jukebox.mounted_id
            start_head = 0.0 if switching else self.jukebox.head_mb
            entries: List[ServiceEntry] = list(decision.entries)
            if self.piggyback:
                scheduled_blocks = {entry.block_id for entry in entries}
                for item in self.delta.items_for_tape(decision.tape_id):
                    if item.block_id in scheduled_blocks:
                        continue  # a read of the same block passes anyway
                    entries.append(_WriteEntry(item))
                    self.piggybacked_writes += 1
            service = ServiceList(entries, head_mb=start_head)
            context.service = service
            if switching:
                duration = self.jukebox.switch_to(decision.tape_id)
                yield self._timed(duration)
                self.metrics.on_tape_switch(self.env.now)

            yield from self._execute_sweep(service, block_mb)
            context.service = None
            self.scheduler.on_sweep_complete(context)

    def _execute_sweep(self, service: ServiceList, block_mb: float):
        while not service.is_empty:
            entry = service.pop_next()
            duration = self.jukebox.access(entry.position_mb, block_mb)
            yield self._timed(duration)
            service.finish_in_flight()
            if isinstance(entry, _WriteEntry):
                self.delta.complete(entry.write_item, self.env.now)
                continue
            for request in entry.requests:
                self.metrics.on_completion(request, self.env.now)
                if self.source.is_closed:
                    replacement = self.source.on_completion(self.env.now)
                    if replacement is not None:
                        self.submit(replacement)

    def _flush_sweep(self, block_mb: float):
        """Idle-time write sweep on the most write-laden tape."""
        backlog = self.delta.backlog_by_tape()
        if not backlog:
            return
        tape_id = max(sorted(backlog), key=backlog.get)
        items = self.delta.items_for_tape(tape_id)
        switching = tape_id != self.jukebox.mounted_id
        start_head = 0.0 if switching else self.jukebox.head_mb
        service = ServiceList([_WriteEntry(item) for item in items], head_mb=start_head)
        self.context.service = service
        self.idle_flush_sweeps += 1
        if switching:
            duration = self.jukebox.switch_to(tape_id)
            yield self._timed(duration)
            self.metrics.on_tape_switch(self.env.now)
        yield from self._execute_sweep(service, block_mb)
        self.context.service = None
        self.scheduler.on_sweep_complete(self.context)
