"""Metric collection for jukebox simulations.

Collects the paper's reported quantities — throughput (KB/s and
requests/minute), mean response time (delay), and tape-switch counts —
as steady-state averages after a warm-up window, plus diagnostics
(queue-length trace, drive utilization breakdown).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..stats import Histogram, RunningStats, TimeWeightedStats
from ..workload.requests import Request

#: Bytes per KB for throughput reporting.
KB = 1024.0
MB = 1024.0 * 1024.0


@dataclass(frozen=True)
class MetricsReport:
    """Steady-state summary of one simulation run."""

    measured_s: float
    completed: int
    throughput_kb_s: float
    requests_per_min: float
    mean_response_s: float
    p95_response_s: float
    max_response_s: float
    tape_switches: int
    switches_per_hour: float
    mean_queue_length: float
    drive_busy_fraction: float
    arrivals: int
    total_completed: int
    #: Mean time spent queued before the delivering read began (0.0
    #: when the simulator did not supply per-read service durations).
    mean_waiting_s: float = 0.0
    #: Injected-fault counts by kind (empty without fault injection).
    fault_counts: Mapping[str, int] = field(default_factory=dict)
    #: Transient-fault retries performed.
    retries: int = 0
    #: Requests re-queued against a surviving replica after a failure.
    failovers: int = 0
    #: Requests that permanently failed (no readable copy remained).
    failed_requests: int = 0
    #: Post-warm-up fraction of finished requests actually served
    #: (1.0 when nothing failed — the per-request availability).
    served_fraction: float = 1.0
    #: Drive hardware failures repaired during the run.
    drive_failures: int = 0
    #: Observed mean time to repair a failed drive (0.0 without failures).
    mean_repair_s: float = 0.0
    #: Median response time (histogram-interpolated, like p95).
    p50_response_s: float = 0.0
    #: 99th-percentile response time.
    p99_response_s: float = 0.0
    #: Post-warm-up arrivals shed by admission control / degraded mode.
    shed_requests: int = 0
    #: Post-warm-up shed counts by reason (queue-full/rate-limit/degraded).
    shed_by_reason: Mapping[str, int] = field(default_factory=dict)
    #: Post-warm-up requests that expired (TTL passed before delivery).
    expired_requests: int = 0
    #: Post-warm-up deadline misses: expired plus delivered-late requests.
    deadline_misses: int = 0
    #: Misses over finished deadline-bearing work (0.0 without deadlines).
    deadline_miss_rate: float = 0.0
    #: Requests force-promoted into a sweep by the starvation guard.
    forced_promotions: int = 0
    #: Times the QoS circuit breaker tripped into degraded mode.
    breaker_trips: int = 0
    #: True when the measurement window saw arrivals but zero
    #: completions — a saturated (or fully stalled) run whose
    #: throughput/response fields degrade to 0.0 instead of NaN.
    saturated: bool = False

    def __str__(self) -> str:  # pragma: no cover - human-readable aid
        return (
            f"throughput {self.throughput_kb_s:8.1f} KB/s | "
            f"{self.requests_per_min:6.3f} req/min | "
            f"delay {self.mean_response_s:8.1f} s | "
            f"switches/h {self.switches_per_hour:6.2f} | "
            f"queue {self.mean_queue_length:6.1f}"
        )


def report_digest(report: MetricsReport) -> str:
    """A content hash of the full report (field-order independent).

    The canonical form is ``json.dumps`` of ``dataclasses.asdict`` with
    sorted keys, so two reports hash equal exactly when every metric is
    bit-identical.  Golden-hash regression tests pin these digests to
    prove optimization passes introduce zero behavioural drift.
    """
    payload = json.dumps(dataclasses.asdict(report), sort_keys=True, default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class MetricsCollector:
    """Accumulates run metrics; samples before ``warmup_s`` are dropped."""

    def __init__(self, block_mb: float, warmup_s: float = 0.0) -> None:
        if warmup_s < 0:
            raise ValueError(f"warmup_s must be >= 0, got {warmup_s!r}")
        self.block_mb = block_mb
        self.warmup_s = warmup_s
        self.response = RunningStats()
        self.response_hist = Histogram(bin_width=10.0)
        #: Time spent queued before the delivering read began.
        self.waiting = RunningStats()
        self.queue = TimeWeightedStats()
        self._outstanding = 0
        self.completed_after_warmup = 0
        self.total_completed = 0
        self.arrivals = 0
        self.tape_switches = 0
        self.busy_s_after_warmup = 0.0
        self._end_s: Optional[float] = None
        #: Fault/recovery counters (all stay zero without fault injection).
        self.fault_counts: Dict[str, int] = {}
        self.retries = 0
        self.failovers = 0
        self.total_failed = 0
        self.failed_after_warmup = 0
        self.drive_failures = 0
        self.repair_s = 0.0
        #: QoS counters (all stay zero without a QoS layer attached).
        self.total_shed = 0
        self.shed_after_warmup = 0
        self.shed_by_reason: Dict[str, int] = {}
        self.total_expired = 0
        self.expired_after_warmup = 0
        self.late_completions = 0
        self.forced_promotions = 0
        self.breaker_trips = 0

    # ------------------------------------------------------------------
    # Event hooks (called by the simulator)
    # ------------------------------------------------------------------
    def on_arrival(self, request: Request, now: float) -> None:
        """A request entered the system."""
        self.arrivals += 1
        self._outstanding += 1
        self.queue.update(now, self._outstanding)

    def on_completion(self, request: Request, now: float, service_s: float = None) -> None:
        """A request's block was delivered.

        ``service_s``, when provided, is the duration of the physical
        operation that delivered the block; the remainder of the
        response time is recorded as queueing/waiting delay.
        """
        request.completion_s = now
        self.total_completed += 1
        self._outstanding -= 1
        self.queue.update(now, self._outstanding)
        if now >= self.warmup_s:
            self.completed_after_warmup += 1
            self.response.add(request.response_s)
            self.response_hist.add(request.response_s)
            if service_s is not None:
                self.waiting.add(max(0.0, request.response_s - service_s))
            if request.deadline_s is not None and now > request.deadline_s:
                self.late_completions += 1

    def on_fault(self, kind: str, now: float) -> None:
        """The injector raised a fault of ``kind``."""
        self.fault_counts[kind] = self.fault_counts.get(kind, 0) + 1

    def on_retry(self, now: float) -> None:
        """A transient fault is being retried (after backoff)."""
        self.retries += 1

    def on_failover(self, count: int, now: float) -> None:
        """``count`` requests were re-queued against surviving replicas."""
        self.failovers += count

    def on_request_failed(self, request: Request, now: float) -> None:
        """A request permanently failed: no readable copy of its block."""
        self.total_failed += 1
        self._outstanding -= 1
        self.queue.update(now, self._outstanding)
        if now >= self.warmup_s:
            self.failed_after_warmup += 1

    def on_shed(self, request: Request, now: float, reason: str = "admission") -> None:
        """Admission control (or degraded mode) turned ``request`` away."""
        self.total_shed += 1
        self._outstanding -= 1
        self.queue.update(now, self._outstanding)
        if now >= self.warmup_s:
            self.shed_after_warmup += 1
            self.shed_by_reason[reason] = self.shed_by_reason.get(reason, 0) + 1

    def on_expired(self, request: Request, now: float) -> None:
        """``request``'s TTL passed before its block could be delivered."""
        self.total_expired += 1
        self._outstanding -= 1
        self.queue.update(now, self._outstanding)
        if now >= self.warmup_s:
            self.expired_after_warmup += 1

    def on_forced_promotion(self, count: int, now: float) -> None:
        """The starvation guard force-promoted ``count`` requests."""
        if now >= self.warmup_s:
            self.forced_promotions += count

    def on_breaker_trip(self, now: float) -> None:
        """The QoS circuit breaker tripped into degraded shed-load mode."""
        self.breaker_trips += 1

    @property
    def outstanding(self) -> int:
        """Requests admitted but not yet completed, failed, or expired."""
        return self._outstanding

    def on_drive_failure(self, now: float) -> None:
        """A drive hardware failure occurred."""
        self.drive_failures += 1

    def on_drive_repair(self, now: float, duration_s: float) -> None:
        """A failed drive entered repair for ``duration_s`` seconds."""
        self.repair_s += duration_s

    def on_tape_switch(self, now: float) -> None:
        """A tape switch completed."""
        if now >= self.warmup_s:
            self.tape_switches += 1

    def on_drive_busy(self, start_s: float, duration_s: float) -> None:
        """The drive performed a timed operation in [start, start+duration)."""
        end_s = start_s + duration_s
        overlap = max(0.0, end_s - max(start_s, self.warmup_s))
        self.busy_s_after_warmup += overlap

    # ------------------------------------------------------------------
    def finalize(self, now: float) -> None:
        """Close the measurement window at time ``now``.

        The drive operation in flight at the horizon was credited for its
        full duration at start time; clip the busy total to the window so
        utilization never exceeds 1.
        """
        self.queue.finalize(now)
        self._end_s = now
        window = max(0.0, now - self.warmup_s)
        self.busy_s_after_warmup = min(self.busy_s_after_warmup, window)

    def report(self) -> MetricsReport:
        """Produce the steady-state summary (requires :meth:`finalize`)."""
        if self._end_s is None:
            raise RuntimeError("finalize() must be called before report()")
        measured_s = max(0.0, self._end_s - self.warmup_s)
        bytes_read = self.completed_after_warmup * self.block_mb * MB
        throughput_kb_s = bytes_read / KB / measured_s if measured_s > 0 else 0.0
        requests_per_min = (
            self.completed_after_warmup / (measured_s / 60.0) if measured_s > 0 else 0.0
        )
        switches_per_hour = (
            self.tape_switches / (measured_s / 3600.0) if measured_s > 0 else 0.0
        )
        if self.response_hist.count:
            p50 = self.response_hist.percentile(0.50)
            p95 = self.response_hist.percentile(0.95)
            p99 = self.response_hist.percentile(0.99)
        else:
            p50 = p95 = p99 = 0.0
        # Every mean below degrades to 0.0 (and served_fraction to 1.0)
        # when its denominator is zero, so a run with no completed
        # requests still yields a finite, NaN-free report.
        finished = self.completed_after_warmup + self.failed_after_warmup
        served_fraction = (
            self.completed_after_warmup / finished if finished > 0 else 1.0
        )
        mean_repair_s = (
            self.repair_s / self.drive_failures if self.drive_failures > 0 else 0.0
        )
        # Deadline misses: expired requests never delivered plus requests
        # delivered after their TTL.  The rate is over finished
        # deadline-eligible work, NaN-free when nothing finished.
        deadline_misses = self.expired_after_warmup + self.late_completions
        deadline_finished = self.completed_after_warmup + self.expired_after_warmup
        deadline_miss_rate = (
            deadline_misses / deadline_finished if deadline_finished > 0 else 0.0
        )
        # A saturated (or fully stalled) run: work arrived but nothing
        # completed inside the measurement window.  Every mean above has
        # already degraded to a finite 0.0; the flag makes the condition
        # explicit instead of reporting a silently-zero response time.
        saturated = (
            measured_s > 0 and self.arrivals > 0 and self.completed_after_warmup == 0
        )
        return MetricsReport(
            measured_s=measured_s,
            completed=self.completed_after_warmup,
            throughput_kb_s=throughput_kb_s,
            requests_per_min=requests_per_min,
            mean_response_s=self.response.mean,
            p95_response_s=p95,
            max_response_s=self.response.maximum,
            tape_switches=self.tape_switches,
            switches_per_hour=switches_per_hour,
            mean_queue_length=self.queue.mean,
            drive_busy_fraction=(
                self.busy_s_after_warmup / measured_s if measured_s > 0 else 0.0
            ),
            arrivals=self.arrivals,
            total_completed=self.total_completed,
            mean_waiting_s=self.waiting.mean,
            fault_counts=dict(self.fault_counts),
            retries=self.retries,
            failovers=self.failovers,
            failed_requests=self.failed_after_warmup,
            served_fraction=served_fraction,
            drive_failures=self.drive_failures,
            mean_repair_s=mean_repair_s,
            p50_response_s=p50,
            p99_response_s=p99,
            shed_requests=self.shed_after_warmup,
            shed_by_reason=dict(self.shed_by_reason),
            expired_requests=self.expired_after_warmup,
            deadline_misses=deadline_misses,
            deadline_miss_rate=deadline_miss_rate,
            forced_promotions=self.forced_promotions,
            breaker_trips=self.breaker_trips,
            saturated=saturated,
        )
