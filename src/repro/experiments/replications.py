"""Replicated runs: many seeds per configuration, with error bars.

The paper plots one long run per parameter point.  For shorter horizons
(or when publishing error bars) the standard alternative is independent
replications: run the same configuration under ``n`` seeds and form a
Student-t confidence interval over the per-run estimates.  This module
provides that harness plus a helper to decide whether two
configurations differ significantly — used by tests to keep the
benchmark assertions honest about noise.

.. deprecated::
    :func:`replicate` is a shim over
    :meth:`repro.campaign.Campaign.submit`; the derived-seed variants
    come from :meth:`repro.campaign.Campaign.derive_variants`, so seeds
    are identical to the historical serial loop.  Pass ``campaign=`` to
    run replications in parallel and/or cached.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from ..stats.batchmeans import ConfidenceInterval, t_quantile_975
from .config import ExperimentConfig
from .runner import ExperimentResult, _run_experiment


@dataclass(frozen=True)
class ReplicatedMetric:
    """One metric's across-seed summary."""

    name: str
    values: tuple
    interval: ConfidenceInterval


@dataclass(frozen=True)
class ReplicationReport:
    """Summaries for the standard metrics over ``n`` independent runs."""

    config: ExperimentConfig
    results: tuple
    throughput_kb_s: ReplicatedMetric
    mean_response_s: ReplicatedMetric

    @property
    def replications(self) -> int:
        """Number of independent runs."""
        return len(self.results)


def _interval(values: Sequence[float]) -> ConfidenceInterval:
    count = len(values)
    mean = sum(values) / count
    if count < 2:
        return ConfidenceInterval(mean=mean, half_width=float("inf"), batch_count=count)
    variance = sum((value - mean) ** 2 for value in values) / (count - 1)
    half_width = t_quantile_975(count - 1) * math.sqrt(variance / count)
    return ConfidenceInterval(mean=mean, half_width=half_width, batch_count=count)


def replicate(
    config: ExperimentConfig,
    replications: int = 5,
    runner: Callable[[ExperimentConfig], ExperimentResult] = _run_experiment,
    campaign=None,
) -> ReplicationReport:
    """Run ``config`` under ``replications`` derived seeds.

    When ``campaign`` is given it executes the variants (possibly in
    parallel, possibly from cache) and ``runner`` is ignored; otherwise
    an implicit serial campaign wraps ``runner``, preserving the
    original behaviour and seeds exactly.
    """
    from ..campaign import Campaign

    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications!r}")
    variants = Campaign.derive_variants(config, replications)
    if campaign is None:
        campaign = Campaign(runner=runner)
    submission = campaign.submit(variants)
    results = tuple(submission.require(variant) for variant in variants)
    throughputs = tuple(result.throughput_kb_s for result in results)
    delays = tuple(result.mean_response_s for result in results)
    return ReplicationReport(
        config=config,
        results=results,
        throughput_kb_s=ReplicatedMetric(
            "throughput_kb_s", throughputs, _interval(throughputs)
        ),
        mean_response_s=ReplicatedMetric("mean_response_s", delays, _interval(delays)),
    )


def significantly_better(
    candidate: ReplicationReport,
    baseline: ReplicationReport,
    metric: str = "throughput_kb_s",
) -> bool:
    """True when ``candidate`` beats ``baseline`` beyond overlapping CIs.

    A deliberately conservative test: the 95% intervals must not
    overlap.  (Welch's t-test would be sharper; non-overlap is the
    standard eyeball rule for plotted error bars and errs toward "not
    significant".)
    """
    candidate_metric: ReplicatedMetric = getattr(candidate, metric)
    baseline_metric: ReplicatedMetric = getattr(baseline, metric)
    if metric == "mean_response_s":  # lower is better
        return candidate_metric.interval.high < baseline_metric.interval.low
    return candidate_metric.interval.low > baseline_metric.interval.high
