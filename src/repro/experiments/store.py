"""Persistence of run results as JSON — experiments, farms, federations.

Long parameter sweeps are expensive; storing results lets analyses and
documents (EXPERIMENTS.md) be regenerated without re-simulating.  The
format is a stable, versioned JSON document: the config's fields plus
the metric report's fields, tagged with the run ``kind`` (experiment /
farm / federation) so :func:`result_from_dict` rebuilds the right
result type — which is what lets the campaign cache, journal, and
resume treat all three kinds through one surface.

Two guards make the round trip safe to use as a cache substrate
(see :mod:`repro.campaign`):

* ``version`` — the container format; bumped on incompatible layout
  changes to the document itself.
* ``schema`` — a fingerprint of the dataclass field sets
  (:class:`ExperimentConfig`, :class:`MetricsReport`, farm and
  federation configs, and the nested fault dataclasses).  When a field
  is added, removed, or renamed the fingerprint changes and old
  documents are *rejected* instead of silently loading with defaults
  filled in for the missing fields.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import List, Union

from ..faults.config import FaultConfig
from ..faults.retry import RetryPolicy
from ..layout.placement import Layout
from ..qos.config import QoSConfig
from ..service.metrics import MetricsReport
from .config import ExperimentConfig
from .runner import ExperimentResult

#: Format version; bump on incompatible changes to the document layout.
FORMAT_VERSION = 2


def _field_names(cls) -> tuple:
    return tuple(sorted(field.name for field in dataclasses.fields(cls)))


def schema_fingerprint() -> str:
    """A stable fingerprint of the serialized dataclass field sets.

    Any change to the fields of the config or report dataclasses (the
    payload of a stored result) changes this value, so stale documents
    fail loudly on load rather than deserializing into a dataclass
    whose new fields silently took their defaults.  Farm and federation
    config classes are included, so their evolution invalidates stale
    cache entries exactly like the experiment schema does.
    """
    # Imported here: store sits below repro.federation / repro.service
    # in several import chains, and the fingerprint is only needed at
    # (de)serialization time.
    from ..federation.config import FederationConfig, LibraryConfig
    from ..service.farm import FarmConfig

    parts = [
        f"{cls.__name__}:{','.join(_field_names(cls))}"
        for cls in (
            ExperimentConfig,
            MetricsReport,
            FaultConfig,
            RetryPolicy,
            QoSConfig,
            FarmConfig,
            LibraryConfig,
            FederationConfig,
        )
    ]
    digest = hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()
    return digest[:16]


def config_to_dict(config: ExperimentConfig) -> dict:
    """A JSON-ready dict of one experiment configuration."""
    payload = dataclasses.asdict(config)
    payload["layout"] = config.layout.value
    return payload


def _rebuild_nested(config_fields: dict) -> dict:
    """Rebuild ``faults``/``qos`` sub-dicts into their dataclasses.

    dataclasses.asdict flattens the nested frozen dataclasses to plain
    dicts (and JSON turns tuples into lists); shared by the experiment
    and federation config round trips.
    """
    if config_fields.get("faults") is not None:
        fault_fields = dict(config_fields["faults"])
        fault_fields["retry"] = RetryPolicy(**fault_fields["retry"])
        fault_fields["tape_media_error_rates"] = tuple(
            (tape_id, rate)
            for tape_id, rate in fault_fields["tape_media_error_rates"]
        )
        config_fields["faults"] = FaultConfig(**fault_fields)
    if config_fields.get("qos") is not None:
        config_fields["qos"] = QoSConfig(**dict(config_fields["qos"]))
    return config_fields


def config_from_dict(payload: dict) -> ExperimentConfig:
    """Rebuild an :class:`ExperimentConfig` from :func:`config_to_dict`."""
    config_fields = _rebuild_nested(dict(payload))
    config_fields["layout"] = Layout(config_fields["layout"])
    return ExperimentConfig(**config_fields)


# ----------------------------------------------------------------------
# Farm round trip
# ----------------------------------------------------------------------
def farm_config_to_dict(config) -> dict:
    """A JSON-ready dict of one :class:`~repro.service.farm.FarmConfig`."""
    return {
        "base": config_to_dict(config.base),
        "jukebox_count": config.jukebox_count,
        "total_queue_length": config.total_queue_length,
    }


def farm_config_from_dict(payload: dict):
    """Rebuild a :class:`~repro.service.farm.FarmConfig`."""
    from ..service.farm import FarmConfig

    return FarmConfig(
        base=config_from_dict(payload["base"]),
        jukebox_count=payload["jukebox_count"],
        total_queue_length=payload["total_queue_length"],
    )


# ----------------------------------------------------------------------
# Federation round trip
# ----------------------------------------------------------------------
def federation_config_to_dict(config) -> dict:
    """A JSON-ready dict of one federation configuration."""
    payload = dataclasses.asdict(config)
    payload["layout"] = config.layout.value
    return payload


def federation_config_from_dict(payload: dict):
    """Rebuild a :class:`~repro.federation.config.FederationConfig`."""
    from ..federation.config import FederationConfig, LibraryConfig

    config_fields = _rebuild_nested(dict(payload))
    config_fields["layout"] = Layout(config_fields["layout"])
    config_fields["libraries"] = tuple(
        LibraryConfig(**dict(library)) for library in config_fields["libraries"]
    )
    return FederationConfig(**config_fields)


# ----------------------------------------------------------------------
# Kind-tagged result documents
# ----------------------------------------------------------------------
def result_to_dict(result) -> dict:
    """A JSON-ready dict of one run result (any kind).

    The document is tagged with ``"kind"``: ``"experiment"`` (the
    historical default), ``"farm"``, or ``"federation"``; traces are
    never persisted.
    """
    from ..federation.runner import FederationResult
    from ..service.farm import FarmResult

    envelope = {
        "version": FORMAT_VERSION,
        "schema": schema_fingerprint(),
    }
    if isinstance(result, ExperimentResult):
        envelope["kind"] = "experiment"
        envelope["config"] = config_to_dict(result.config)
        envelope["report"] = dataclasses.asdict(result.report)
    elif isinstance(result, FarmResult):
        envelope["kind"] = "farm"
        envelope["config"] = farm_config_to_dict(result.config)
        envelope["report"] = {
            "per_jukebox": [
                dataclasses.asdict(report)
                for report in result.report.per_jukebox
            ],
        }
    elif isinstance(result, FederationResult):
        envelope["kind"] = "federation"
        envelope["config"] = federation_config_to_dict(result.config)
        envelope["report"] = {
            "per_library": [
                dataclasses.asdict(report)
                for report in result.report.per_library
            ],
            "routed_requests": list(result.report.routed_requests),
            "policy": result.report.policy,
        }
    else:
        raise TypeError(
            f"cannot serialize result of type {type(result).__name__}"
        )
    return envelope


def result_from_dict(payload: dict):
    """Rebuild a run result (any kind) from a stored dict.

    Raises :class:`ValueError` when the document was written by an
    incompatible format version or a different dataclass schema.
    Documents without a ``"kind"`` tag are experiments (the only kind
    earlier formats could store).
    """
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported result format version {version!r}")
    schema = payload.get("schema")
    if schema != schema_fingerprint():
        raise ValueError(
            f"result schema mismatch: stored {schema!r}, "
            f"current {schema_fingerprint()!r}"
        )
    kind = payload.get("kind", "experiment")
    if kind == "experiment":
        config = config_from_dict(payload["config"])
        report = MetricsReport(**payload["report"])
        return ExperimentResult(config=config, report=report)
    if kind == "farm":
        from ..service.farm import FarmReport, FarmResult

        config = farm_config_from_dict(payload["config"])
        report = FarmReport(
            per_jukebox=[
                MetricsReport(**fields)
                for fields in payload["report"]["per_jukebox"]
            ]
        )
        return FarmResult(config=config, report=report)
    if kind == "federation":
        from ..federation.report import FederationReport
        from ..federation.runner import FederationResult

        config = federation_config_from_dict(payload["config"])
        report = FederationReport(
            per_library=[
                MetricsReport(**fields)
                for fields in payload["report"]["per_library"]
            ],
            routed_requests=tuple(payload["report"]["routed_requests"]),
            policy=payload["report"]["policy"],
        )
        return FederationResult(config=config, report=report)
    raise ValueError(f"unknown result kind {kind!r}")


def save_results(results: List[ExperimentResult], path: Union[str, Path]) -> None:
    """Write results to ``path`` as a JSON array."""
    documents = [result_to_dict(result) for result in results]
    Path(path).write_text(json.dumps(documents, indent=2, sort_keys=True))


def load_results(path: Union[str, Path]) -> List[ExperimentResult]:
    """Read results previously written by :func:`save_results`."""
    documents = json.loads(Path(path).read_text())
    if not isinstance(documents, list):
        raise ValueError("result file must contain a JSON array")
    return [result_from_dict(document) for document in documents]
