"""Persistence of experiment results as JSON.

Long parameter sweeps are expensive; storing results lets analyses and
documents (EXPERIMENTS.md) be regenerated without re-simulating.  The
format is a stable, versioned JSON document: the config's fields plus
the metric report's fields.

Two guards make the round trip safe to use as a cache substrate
(see :mod:`repro.campaign`):

* ``version`` — the container format; bumped on incompatible layout
  changes to the document itself.
* ``schema`` — a fingerprint of the dataclass field sets
  (:class:`ExperimentConfig`, :class:`MetricsReport`, and the nested
  fault dataclasses).  When a field is added, removed, or renamed the
  fingerprint changes and old documents are *rejected* instead of
  silently loading with defaults filled in for the missing fields.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import List, Union

from ..faults.config import FaultConfig
from ..faults.retry import RetryPolicy
from ..layout.placement import Layout
from ..qos.config import QoSConfig
from ..service.metrics import MetricsReport
from .config import ExperimentConfig
from .runner import ExperimentResult

#: Format version; bump on incompatible changes to the document layout.
FORMAT_VERSION = 2


def _field_names(cls) -> tuple:
    return tuple(sorted(field.name for field in dataclasses.fields(cls)))


def schema_fingerprint() -> str:
    """A stable fingerprint of the serialized dataclass field sets.

    Any change to the fields of the config or report dataclasses (the
    payload of a stored result) changes this value, so stale documents
    fail loudly on load rather than deserializing into a dataclass
    whose new fields silently took their defaults.
    """
    parts = [
        f"{cls.__name__}:{','.join(_field_names(cls))}"
        for cls in (
            ExperimentConfig,
            MetricsReport,
            FaultConfig,
            RetryPolicy,
            QoSConfig,
        )
    ]
    digest = hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()
    return digest[:16]


def config_to_dict(config: ExperimentConfig) -> dict:
    """A JSON-ready dict of one experiment configuration."""
    payload = dataclasses.asdict(config)
    payload["layout"] = config.layout.value
    return payload


def config_from_dict(payload: dict) -> ExperimentConfig:
    """Rebuild an :class:`ExperimentConfig` from :func:`config_to_dict`."""
    config_fields = dict(payload)
    config_fields["layout"] = Layout(config_fields["layout"])
    if config_fields.get("faults") is not None:
        # dataclasses.asdict flattens the nested frozen dataclasses to
        # plain dicts (and JSON turns tuples into lists); rebuild them.
        fault_fields = dict(config_fields["faults"])
        fault_fields["retry"] = RetryPolicy(**fault_fields["retry"])
        fault_fields["tape_media_error_rates"] = tuple(
            (tape_id, rate)
            for tape_id, rate in fault_fields["tape_media_error_rates"]
        )
        config_fields["faults"] = FaultConfig(**fault_fields)
    if config_fields.get("qos") is not None:
        config_fields["qos"] = QoSConfig(**dict(config_fields["qos"]))
    return ExperimentConfig(**config_fields)


def result_to_dict(result: ExperimentResult) -> dict:
    """A JSON-ready dict of one experiment result."""
    return {
        "version": FORMAT_VERSION,
        "schema": schema_fingerprint(),
        "config": config_to_dict(result.config),
        "report": dataclasses.asdict(result.report),
    }


def result_from_dict(payload: dict) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from a stored dict.

    Raises :class:`ValueError` when the document was written by an
    incompatible format version or a different dataclass schema.
    """
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported result format version {version!r}")
    schema = payload.get("schema")
    if schema != schema_fingerprint():
        raise ValueError(
            f"result schema mismatch: stored {schema!r}, "
            f"current {schema_fingerprint()!r}"
        )
    config = config_from_dict(payload["config"])
    report = MetricsReport(**payload["report"])
    return ExperimentResult(config=config, report=report)


def save_results(results: List[ExperimentResult], path: Union[str, Path]) -> None:
    """Write results to ``path`` as a JSON array."""
    documents = [result_to_dict(result) for result in results]
    Path(path).write_text(json.dumps(documents, indent=2, sort_keys=True))


def load_results(path: Union[str, Path]) -> List[ExperimentResult]:
    """Read results previously written by :func:`save_results`."""
    documents = json.loads(Path(path).read_text())
    if not isinstance(documents, list):
        raise ValueError("result file must contain a JSON array")
    return [result_from_dict(document) for document in documents]
