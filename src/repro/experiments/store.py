"""Persistence of experiment results as JSON.

Long parameter sweeps are expensive; storing results lets analyses and
documents (EXPERIMENTS.md) be regenerated without re-simulating.  The
format is a stable, versioned JSON document: the config's fields plus
the metric report's fields.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import List, Union

from ..faults.config import FaultConfig
from ..faults.retry import RetryPolicy
from ..layout.placement import Layout
from ..service.metrics import MetricsReport
from .config import ExperimentConfig
from .runner import ExperimentResult

#: Format version; bump on incompatible changes.
FORMAT_VERSION = 1


def result_to_dict(result: ExperimentResult) -> dict:
    """A JSON-ready dict of one experiment result."""
    config = dataclasses.asdict(result.config)
    config["layout"] = result.config.layout.value
    return {
        "version": FORMAT_VERSION,
        "config": config,
        "report": dataclasses.asdict(result.report),
    }


def result_from_dict(payload: dict) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from a stored dict."""
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported result format version {version!r}")
    config_fields = dict(payload["config"])
    config_fields["layout"] = Layout(config_fields["layout"])
    if config_fields.get("faults") is not None:
        # dataclasses.asdict flattens the nested frozen dataclasses to
        # plain dicts (and JSON turns tuples into lists); rebuild them.
        fault_fields = dict(config_fields["faults"])
        fault_fields["retry"] = RetryPolicy(**fault_fields["retry"])
        fault_fields["tape_media_error_rates"] = tuple(
            (tape_id, rate)
            for tape_id, rate in fault_fields["tape_media_error_rates"]
        )
        config_fields["faults"] = FaultConfig(**fault_fields)
    config = ExperimentConfig(**config_fields)
    report = MetricsReport(**payload["report"])
    return ExperimentResult(config=config, report=report)


def save_results(results: List[ExperimentResult], path: Union[str, Path]) -> None:
    """Write results to ``path`` as a JSON array."""
    documents = [result_to_dict(result) for result in results]
    Path(path).write_text(json.dumps(documents, indent=2, sort_keys=True))


def load_results(path: Union[str, Path]) -> List[ExperimentResult]:
    """Read results previously written by :func:`save_results`."""
    documents = json.loads(Path(path).read_text())
    if not isinstance(documents, list):
        raise ValueError("result file must contain a JSON array")
    return [result_from_dict(document) for document in documents]
