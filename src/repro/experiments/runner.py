"""Single-experiment executor: config in, metrics out."""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

from ..core.registry import make_scheduler
from ..des import Environment
from ..faults.injector import FaultInjector
from ..layout.placement import PlacementSpec, build_catalog
from ..layout.validate import validate_catalog
from ..obs.tracer import Tracer
from ..qos.manager import QoSManager
from ..service.metrics import MetricsCollector, MetricsReport
from ..service.simulator import JukeboxSimulator
from ..tape.jukebox import Jukebox
from ..tape.timing import EXB_8505XL
from ..workload.closed import ClosedSource
from ..workload.open import OpenSource
from ..workload.skew import HotColdSkew
from .config import ExperimentConfig


@dataclass(frozen=True)
class ExperimentResult:
    """A config together with its measured steady-state metrics."""

    config: ExperimentConfig
    report: MetricsReport

    @property
    def throughput_kb_s(self) -> float:
        """Steady-state throughput in KB/s."""
        return self.report.throughput_kb_s

    @property
    def requests_per_min(self) -> float:
        """Steady-state completion rate."""
        return self.report.requests_per_min

    @property
    def mean_response_s(self) -> float:
        """Steady-state mean delay in seconds."""
        return self.report.mean_response_s


@lru_cache(maxsize=64)
def _cached_catalog(
    spec: PlacementSpec,
    tape_count: int,
    capacity_mb: float,
    data_blocks: int,
    expected_replicas: int,
):
    """Build-and-validate a catalog, memoized on the placement inputs.

    Catalog construction is deterministic (no RNG) and the result is
    immutable, so sweeps and campaigns that vary only the scheduler,
    seed, or workload knobs share one catalog instead of rebuilding and
    revalidating it per point — a large fraction of short-run wall time.
    """
    catalog = build_catalog(spec, tape_count, capacity_mb, data_blocks=data_blocks)
    validate_catalog(
        catalog, tape_count, capacity_mb, expected_replicas=expected_replicas
    )
    return catalog


def build_simulator(
    config: ExperimentConfig, obs: Optional[Tracer] = None
) -> JukeboxSimulator:
    """Assemble (but do not run) the simulator for ``config``.

    ``obs`` optionally attaches a :class:`~repro.obs.Tracer`.  It is a
    parameter rather than a config field so traced and untraced runs
    share one config identity (campaign cache keys, digests, and the
    golden-hash pins are all computed from the config alone).
    """
    if config.drive_technology == "serpentine":
        from ..tape.serpentine import DLT_STYLE

        timing = DLT_STYLE
    else:
        timing = EXB_8505XL
    if config.drive_speedup != 1.0:
        timing = timing.scaled(config.drive_speedup)
    spec = PlacementSpec(
        layout=config.layout,
        percent_hot=config.percent_hot,
        replicas=config.replicas,
        start_position=config.start_position,
        block_mb=config.block_mb,
        pack_cold=config.pack_cold,
    )
    catalog = _cached_catalog(
        spec,
        config.tape_count,
        config.capacity_mb,
        config.data_blocks,
        config.replicas,
    )
    rng = random.Random(config.seed)
    if config.zipf_theta is not None:
        from ..workload.zipf import ZipfSkew

        skew = ZipfSkew(theta=config.zipf_theta)
    else:
        skew = HotColdSkew(percent_requests_hot=config.percent_requests_hot)
    if config.is_closed:
        source = ClosedSource(config.queue_length, skew, catalog, rng)
    else:
        source = OpenSource(config.mean_interarrival_s, skew, catalog, rng)
    metrics = MetricsCollector(block_mb=config.block_mb, warmup_s=config.warmup_s)
    env = Environment()

    # Pay-for-what-you-use: the injector exists only when some fault
    # rate is nonzero, so fault-free runs take the exact pre-fault path.
    faults = None
    if config.faults is not None and config.faults.enabled:
        faults = FaultInjector(
            config.faults, catalog, drive_count=config.drive_count
        )

    # Same pattern for overload control: the QoS manager exists only
    # when some knob is set, so unconfigured runs take the exact
    # pre-QoS path.
    qos = None
    if config.qos is not None and config.qos.enabled:
        qos = QoSManager(config.qos, env, metrics)

    if config.drive_count > 1:
        from ..service.multidrive import MultiDriveSimulator

        return MultiDriveSimulator(
            env=env,
            catalog=catalog,
            source=source,
            metrics=metrics,
            scheduler_factory=lambda: make_scheduler(config.scheduler),
            drive_count=config.drive_count,
            tape_count=config.tape_count,
            capacity_mb=config.capacity_mb,
            timing=timing,
            faults=faults,
            qos=qos,
            obs=obs,
        )

    jukebox = Jukebox.build(
        tape_count=config.tape_count, capacity_mb=config.capacity_mb, timing=timing
    )
    scheduler = make_scheduler(config.scheduler)
    return JukeboxSimulator(
        env=env,
        jukebox=jukebox,
        catalog=catalog,
        scheduler=scheduler,
        source=source,
        metrics=metrics,
        faults=faults,
        qos=qos,
        obs=obs,
    )


def _run_experiment(
    config: ExperimentConfig, obs: Optional[Tracer] = None
) -> ExperimentResult:
    """Run one simulation to its horizon and collect steady-state metrics."""
    simulator = build_simulator(config, obs=obs)
    report = simulator.run(config.horizon_s)
    return ExperimentResult(config=config, report=report)


def run_experiment(
    config: ExperimentConfig, obs: Optional[Tracer] = None
) -> ExperimentResult:
    """Deprecated entry point: route through :func:`repro.api.run`.

    Signature and return type are unchanged; new code should call
    ``repro.api.run(config)``, which dispatches experiment, farm, and
    federation configs through one surface.
    """
    from ..api import _warn_deprecated, run

    _warn_deprecated("run_experiment", "repro.api.run(config)")
    return run(config, obs=obs)
