"""Evaluation harness: configs, runs, sweeps, and figure regeneration."""

from .config import DEFAULT_HORIZON_S, ExperimentConfig
from .figures import FIGURES, FigureData
from .replications import ReplicationReport, replicate, significantly_better
from .runner import ExperimentResult, build_simulator, run_experiment
from .store import load_results, save_results
from .sweeps import (
    CurvePoint,
    PAPER_QUEUE_LENGTHS,
    curve_family,
    interarrival_sweep,
    queue_sweep,
)

__all__ = [
    "CurvePoint",
    "DEFAULT_HORIZON_S",
    "ExperimentConfig",
    "ExperimentResult",
    "FIGURES",
    "FigureData",
    "PAPER_QUEUE_LENGTHS",
    "ReplicationReport",
    "build_simulator",
    "curve_family",
    "interarrival_sweep",
    "load_results",
    "queue_sweep",
    "replicate",
    "run_experiment",
    "save_results",
    "significantly_better",
]
