"""Evaluation harness: configs, runs, sweeps, and figure regeneration.

The sweep/figure/replication helpers here are compatibility shims over
:class:`repro.campaign.Campaign` — the execution engine with process
parallelism, content-addressed result caching, and failure isolation.
New code should build :class:`ExperimentConfig` batches and call
:meth:`Campaign.submit` directly (docs/API.md maps old calls to new).
"""

from .config import DEFAULT_HORIZON_S, ExperimentConfig
from .figures import FIGURES, FigureData
from .replications import ReplicationReport, replicate, significantly_better
from .runner import ExperimentResult, build_simulator, run_experiment
from .store import (
    config_from_dict,
    config_to_dict,
    load_results,
    save_results,
    schema_fingerprint,
)
from .sweeps import (
    CurvePoint,
    PAPER_QUEUE_LENGTHS,
    curve_family,
    interarrival_sweep,
    queue_sweep,
    queue_sweep_configs,
)

__all__ = [
    "CurvePoint",
    "DEFAULT_HORIZON_S",
    "ExperimentConfig",
    "ExperimentResult",
    "FIGURES",
    "FigureData",
    "PAPER_QUEUE_LENGTHS",
    "ReplicationReport",
    "build_simulator",
    "config_from_dict",
    "config_to_dict",
    "curve_family",
    "interarrival_sweep",
    "load_results",
    "queue_sweep",
    "queue_sweep_configs",
    "replicate",
    "run_experiment",
    "save_results",
    "schema_fingerprint",
    "significantly_better",
]
