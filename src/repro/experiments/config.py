"""Experiment configuration: the paper's six-dimensional parameter space.

One :class:`ExperimentConfig` fully determines a simulation run: the
workload (arrival process, intensity, skew), the data layout (placement,
replication, block size), the hardware (tape count, capacity, drive
speed), and the scheduling algorithm.  The paper's graph annotations map
directly: ``PH`` = ``percent_hot``, ``RH`` = ``percent_requests_hot``,
``NR`` = ``replicas``, ``SP`` = ``start_position``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..faults.config import FaultConfig
from ..layout.placement import Layout
from ..qos.config import QoSConfig

#: The paper simulates 10 million seconds; the default here is shorter
#: (steady-state means converge much earlier) and benchmarks can dial it.
DEFAULT_HORIZON_S = 1_000_000.0


@dataclass(frozen=True)
class ExperimentConfig:
    """All knobs of one simulation run (defaults = the paper's base point)."""

    scheduler: str = "dynamic-max-bandwidth"
    layout: Layout = Layout.HORIZONTAL
    percent_hot: float = 10.0
    percent_requests_hot: float = 40.0
    replicas: int = 0
    start_position: float = 0.0
    block_mb: float = 16.0
    tape_count: int = 10
    capacity_mb: float = 7.0 * 1024.0
    #: Closed-queueing intensity; ``None`` selects the open model.
    queue_length: Optional[int] = 60
    #: Open-queueing mean interarrival; requires ``queue_length=None``.
    mean_interarrival_s: Optional[float] = None
    horizon_s: float = DEFAULT_HORIZON_S
    warmup_fraction: float = 0.1
    seed: int = 42
    pack_cold: bool = False
    drive_speedup: float = 1.0
    #: "helical" = the paper's single-pass EXB-8505XL model;
    #: "serpentine" = the DLT-style extension model (see repro.tape.serpentine).
    drive_technology: str = "helical"
    #: Drives per jukebox; > 1 selects the multi-drive extension
    #: (static/dynamic/fifo schedulers only — see repro.service.multidrive).
    drive_count: int = 1
    #: Zipf skew exponent; when set, replaces the hot/cold RH model
    #: (theta = 0 is uniform; ~0.8-1.2 is web/video-like).
    zipf_theta: Optional[float] = None
    #: Cap on logical data volume (blocks); ``None`` fills the jukebox.
    #: Partial fills model the Section 4.8 lifecycle stages.
    data_blocks: Optional[int] = None
    #: Fault-injection knobs; ``None`` (or all-zero rates) runs the
    #: fault-free simulator — results stay bit-identical to builds
    #: without the fault subsystem (see repro.faults).
    faults: Optional[FaultConfig] = None
    #: Overload-control knobs (admission, deadlines, starvation guard,
    #: circuit breaker); ``None`` (or all-off) runs the QoS-free
    #: simulator — results stay bit-identical to builds without the QoS
    #: subsystem (see repro.qos).
    qos: Optional[QoSConfig] = None

    def __post_init__(self) -> None:
        if self.drive_technology not in ("helical", "serpentine"):
            raise ValueError(
                f"drive_technology must be 'helical' or 'serpentine', "
                f"got {self.drive_technology!r}"
            )
        if self.drive_count < 1:
            raise ValueError(f"drive_count must be >= 1, got {self.drive_count!r}")
        if self.zipf_theta is not None and self.zipf_theta < 0:
            raise ValueError(f"zipf_theta must be >= 0, got {self.zipf_theta!r}")
        closed = self.queue_length is not None
        open_model = self.mean_interarrival_s is not None
        if closed == open_model:
            raise ValueError(
                "exactly one of queue_length (closed) or mean_interarrival_s "
                "(open) must be set"
            )
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError(
                f"warmup_fraction must be in [0, 1), got {self.warmup_fraction!r}"
            )
        if self.horizon_s <= 0:
            raise ValueError(f"horizon_s must be positive, got {self.horizon_s!r}")
        if self.drive_speedup <= 0:
            raise ValueError(
                f"drive_speedup must be positive, got {self.drive_speedup!r}"
            )
        if self.tape_count < 1:
            raise ValueError(f"tape_count must be >= 1, got {self.tape_count!r}")
        if self.capacity_mb <= 0:
            raise ValueError(f"capacity_mb must be positive, got {self.capacity_mb!r}")
        if self.block_mb <= 0:
            raise ValueError(f"block_mb must be positive, got {self.block_mb!r}")
        if self.replicas < 0:
            raise ValueError(f"replicas must be >= 0, got {self.replicas!r}")
        if self.replicas >= self.tape_count:
            # NR counts *extra* copies, each on a distinct tape, so a
            # block needs replicas + 1 distinct tapes to live on.
            raise ValueError(
                f"replicas must be < tape_count ({self.tape_count}): a block "
                f"needs {self.replicas + 1} distinct tapes, got replicas="
                f"{self.replicas!r}"
            )
        for name in ("percent_hot", "percent_requests_hot"):
            value = getattr(self, name)
            if not 0.0 <= value <= 100.0:
                raise ValueError(f"{name} must be in [0, 100], got {value!r}")
        if self.queue_length is not None and self.queue_length < 1:
            raise ValueError(
                f"queue_length must be >= 1, got {self.queue_length!r}"
            )
        if self.mean_interarrival_s is not None and self.mean_interarrival_s <= 0:
            raise ValueError(
                f"mean_interarrival_s must be positive, "
                f"got {self.mean_interarrival_s!r}"
            )

    @property
    def is_closed(self) -> bool:
        """True for the closed-queueing arrival model."""
        return self.queue_length is not None

    @property
    def warmup_s(self) -> float:
        """Warm-up cutoff in simulated seconds."""
        return self.horizon_s * self.warmup_fraction

    def with_(self, **overrides) -> "ExperimentConfig":
        """A copy with ``overrides`` applied (convenience for sweeps)."""
        return replace(self, **overrides)

    def describe(self) -> str:
        """The paper's compact annotation, e.g. ``PH-10 RH-40 NR-0 SP-0``."""
        intensity = (
            f"Q-{self.queue_length}"
            if self.is_closed
            else f"IA-{self.mean_interarrival_s:g}s"
        )
        return (
            f"PH-{self.percent_hot:g} RH-{self.percent_requests_hot:g} "
            f"NR-{self.replicas} SP-{self.start_position:g} "
            f"{self.layout.value} {self.scheduler} {intensity}"
        )
