"""One function per paper figure: regenerate the plotted series.

Every function returns a :class:`FigureData`: labelled series of points
matching what the paper plots.  ``horizon_s`` and ``queue_lengths``
default to values that finish quickly; crank them up (the paper used
10 million simulated seconds) for tighter estimates — the shapes are
stable well below that.

Each figure compiles to **one** campaign submission (see
:mod:`repro.campaign`): pass ``campaign=Campaign(jobs=8, cache_dir=...)``
to regenerate a figure in parallel and serve repeated points from the
content-addressed cache.  With the default ``campaign=None`` everything
runs serially in-process, exactly as the historical loops did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..analysis.costperf import (
    cost_performance_ratio,
    effective_queue_length,
    expansion_table,
)
from ..layout.placement import Layout, expansion_factor
from .config import ExperimentConfig
from .sweeps import _campaign_or_default, curve_family, PAPER_QUEUE_LENGTHS

#: Default simulated horizon for figure regeneration (seconds).
FIGURE_HORIZON_S = 400_000.0


@dataclass
class FigureData:
    """A figure's regenerated data: labelled series of plotted points."""

    figure: str
    title: str
    annotation: str
    series: Dict[str, List] = field(default_factory=dict)

    def labels(self) -> List[str]:
        """Series labels in insertion order."""
        return list(self.series)


def _base(horizon_s: float, **overrides) -> ExperimentConfig:
    return ExperimentConfig(horizon_s=horizon_s, **overrides)


# ----------------------------------------------------------------------
# Figure 3: the effect of transfer size
# ----------------------------------------------------------------------
def figure3(
    horizon_s: float = FIGURE_HORIZON_S,
    block_sizes_mb: Sequence[float] = (1, 2, 4, 8, 16, 32, 64),
    queue_lengths: Sequence[int] = (20, 60, 100, 140),
    campaign=None,
) -> FigureData:
    """Throughput (KB/s) vs I/O transfer size, one curve per queue length.

    Paper setting: PH-10 RH-40 NR-0 SP-0, dynamic max-bandwidth.
    """
    data = FigureData(
        figure="3",
        title="The Effect of Transfer Size",
        annotation="PH-10 RH-40 NR-0 SP-0 dynamic-max-bandwidth",
    )
    grid: Dict[str, List[Tuple[float, ExperimentConfig]]] = {}
    for queue_length in queue_lengths:
        grid[f"Q-{queue_length}"] = [
            (
                float(block_mb),
                _base(
                    horizon_s,
                    scheduler="dynamic-max-bandwidth",
                    block_mb=float(block_mb),
                    queue_length=queue_length,
                ),
            )
            for block_mb in block_sizes_mb
        ]
    submission = _campaign_or_default(campaign).submit(
        config for row in grid.values() for _block, config in row
    )
    for label, row in grid.items():
        data.series[label] = [
            (block_mb, submission.require(config).throughput_kb_s)
            for block_mb, config in row
        ]
    return data


# ----------------------------------------------------------------------
# Figure 4: scheduling algorithms, no replication
# ----------------------------------------------------------------------
FIGURE4_ALGORITHMS = (
    "fifo",
    "static-round-robin",
    "static-max-requests",
    "static-max-bandwidth",
    "static-oldest-max-bandwidth",
    "dynamic-round-robin",
    "dynamic-max-requests",
    "dynamic-max-bandwidth",
    "dynamic-oldest-max-bandwidth",
)


def figure4(
    horizon_s: float = FIGURE_HORIZON_S,
    algorithms: Sequence[str] = FIGURE4_ALGORITHMS,
    queue_lengths: Sequence[int] = PAPER_QUEUE_LENGTHS,
    campaign=None,
) -> FigureData:
    """Throughput/delay parametric curves for nine algorithms (NR-0)."""
    data = FigureData(
        figure="4",
        title="Relative Performance of Scheduling Algorithms (No Replication)",
        annotation="PH-10 RH-40 NR-0 SP-0",
    )
    bases = {
        algorithm: _base(horizon_s, scheduler=algorithm) for algorithm in algorithms
    }
    data.series = curve_family(bases, queue_lengths, campaign=campaign)
    return data


# ----------------------------------------------------------------------
# Figure 5: placement of hot data, no replication
# ----------------------------------------------------------------------
def figure5(
    horizon_s: float = FIGURE_HORIZON_S,
    start_positions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    queue_lengths: Sequence[int] = PAPER_QUEUE_LENGTHS,
    campaign=None,
) -> FigureData:
    """Throughput/delay as hot data placement varies (NR-0), plus vertical."""
    data = FigureData(
        figure="5",
        title="Throughput and Latency as a Function of Hot Data Placement "
        "(No Replication)",
        annotation="PH-10 RH-40 NR-0 dynamic-max-bandwidth",
    )
    bases: Dict[str, ExperimentConfig] = {}
    for start_position in start_positions:
        bases[f"SP-{start_position:g}"] = _base(
            horizon_s, start_position=start_position
        )
    bases["vertical"] = _base(horizon_s, layout=Layout.VERTICAL)
    data.series = curve_family(bases, queue_lengths, campaign=campaign)
    return data


# ----------------------------------------------------------------------
# Figure 6: number of replicas of hot data
# ----------------------------------------------------------------------
def figure6(
    horizon_s: float = FIGURE_HORIZON_S,
    replica_counts: Sequence[int] = (0, 1, 2, 4, 6, 9),
    queue_lengths: Sequence[int] = PAPER_QUEUE_LENGTHS,
    campaign=None,
) -> FigureData:
    """Throughput/delay as the number of replicas varies (vertical, SP-1)."""
    data = FigureData(
        figure="6",
        title="Throughput and Latency as a Function of Number of Replicas "
        "of Hot Data",
        annotation="PH-10 RH-40 SP-1.0 vertical dynamic-max-bandwidth",
    )
    bases = {
        f"NR-{replicas}": _base(
            horizon_s,
            layout=Layout.VERTICAL,
            replicas=replicas,
            start_position=1.0 if replicas else 0.0,
        )
        for replicas in replica_counts
    }
    data.series = curve_family(bases, queue_lengths, campaign=campaign)
    return data


# ----------------------------------------------------------------------
# Figure 7: placement of replicas
# ----------------------------------------------------------------------
def figure7(
    horizon_s: float = FIGURE_HORIZON_S,
    start_positions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    queue_lengths: Sequence[int] = PAPER_QUEUE_LENGTHS,
    campaign=None,
) -> FigureData:
    """Throughput/delay as replica placement varies under full replication."""
    data = FigureData(
        figure="7",
        title="Throughput and Latency as a Function of Replica Placement",
        annotation="PH-10 RH-40 NR-9 vertical dynamic-max-bandwidth",
    )
    bases = {
        f"SP-{start_position:g}": _base(
            horizon_s,
            layout=Layout.VERTICAL,
            replicas=9,
            start_position=start_position,
        )
        for start_position in start_positions
    }
    data.series = curve_family(bases, queue_lengths, campaign=campaign)
    return data


# ----------------------------------------------------------------------
# Figure 8: scheduling algorithms with replication
# ----------------------------------------------------------------------
FIGURE8_ALGORITHMS = (
    "static-max-bandwidth",
    "dynamic-max-requests",
    "dynamic-max-bandwidth",
    "envelope-oldest-max-requests",
    "envelope-max-requests",
    "envelope-max-bandwidth",
)


def figure8(
    horizon_s: float = FIGURE_HORIZON_S,
    algorithms: Sequence[str] = FIGURE8_ALGORITHMS,
    queue_lengths: Sequence[int] = PAPER_QUEUE_LENGTHS,
    campaign=None,
) -> FigureData:
    """Throughput/delay curves under full replication (envelope vs rest)."""
    data = FigureData(
        figure="8",
        title="Relative Performance of Scheduling Algorithms With Replication",
        annotation="PH-10 RH-40 NR-9 SP-1.0 vertical",
    )
    bases = {
        algorithm: _base(
            horizon_s,
            scheduler=algorithm,
            layout=Layout.VERTICAL,
            replicas=9,
            start_position=1.0,
        )
        for algorithm in algorithms
    }
    data.series = curve_family(bases, queue_lengths, campaign=campaign)
    return data


# ----------------------------------------------------------------------
# Figure 9: importance of skew
# ----------------------------------------------------------------------
def figure9(
    horizon_s: float = FIGURE_HORIZON_S,
    skews: Sequence[float] = (20.0, 40.0, 60.0, 80.0),
    queue_lengths: Sequence[int] = PAPER_QUEUE_LENGTHS,
    campaign=None,
) -> FigureData:
    """Throughput/delay vs skew, replicated (solid) and not (dotted).

    Best placements per the earlier figures: SP-0 for no replication,
    SP-1.0 for full replication; best algorithm (max-bandwidth envelope).
    """
    data = FigureData(
        figure="9",
        title="The Relationship Between Skew and Performance Improvements",
        annotation="PH-10 envelope-max-bandwidth",
    )
    bases: Dict[str, ExperimentConfig] = {}
    for skew in skews:
        bases[f"RH-{skew:g} NR-0"] = _base(
            horizon_s,
            scheduler="envelope-max-bandwidth",
            percent_requests_hot=skew,
            replicas=0,
            start_position=0.0,
        )
        bases[f"RH-{skew:g} NR-9"] = _base(
            horizon_s,
            scheduler="envelope-max-bandwidth",
            percent_requests_hot=skew,
            layout=Layout.VERTICAL,
            replicas=9,
            start_position=1.0,
        )
    data.series = curve_family(bases, queue_lengths, campaign=campaign)
    return data


# ----------------------------------------------------------------------
# Figure 10: cost effectiveness of replication
# ----------------------------------------------------------------------
def figure10a(
    replica_counts: Sequence[int] = tuple(range(10)),
    percent_hot_values: Sequence[float] = (5.0, 10.0, 20.0, 30.0),
    campaign=None,
) -> FigureData:
    """Expansion factor E = 1 + NR * PH / 100 (analytic).

    ``campaign`` is accepted for interface uniformity with the other
    figures but unused: no simulation runs.
    """
    data = FigureData(
        figure="10a",
        title="Storage Expansion Factor",
        annotation="E = 1 + NR x PH / 100",
    )
    for percent_hot, row in expansion_table(replica_counts, percent_hot_values).items():
        data.series[f"PH-{percent_hot:g}"] = row
    return data


def _figure10b_config(
    horizon_s: float,
    skew: float,
    replicas: int,
    queue_length: int,
) -> ExperimentConfig:
    return ExperimentConfig(
        scheduler="envelope-max-bandwidth",
        layout=Layout.VERTICAL,
        percent_hot=10.0,
        percent_requests_hot=skew,
        replicas=replicas,
        start_position=1.0 if replicas else 0.0,
        queue_length=queue_length,
        horizon_s=horizon_s,
    )


def figure10b(
    horizon_s: float = FIGURE_HORIZON_S,
    skews: Sequence[float] = (20.0, 40.0, 60.0, 80.0),
    replica_counts: Sequence[int] = (0, 1, 2, 4, 6, 9),
    base_queue_length: int = 60,
    campaign=None,
) -> FigureData:
    """Cost-performance ratio of replication vs none, per skew.

    The replicated farm needs E times more jukeboxes for the same data,
    so each jukebox sees the base workload scaled down by 1/E (paper
    Section 4.8): queue length ``round(60 / E)``.  All skews' baseline
    and replicated runs go out as one campaign submission.
    """
    data = FigureData(
        figure="10b",
        title="Cost-Performance of Replication",
        annotation=f"PH-10 SP-1.0 vertical, queue {base_queue_length}/E",
    )
    baselines: Dict[float, ExperimentConfig] = {}
    replicated: Dict[float, List[Tuple[int, ExperimentConfig]]] = {}
    for skew in skews:
        baselines[skew] = _figure10b_config(horizon_s, skew, 0, base_queue_length)
        replicated[skew] = [
            (
                replicas,
                _figure10b_config(
                    horizon_s,
                    skew,
                    replicas,
                    effective_queue_length(
                        base_queue_length, expansion_factor(replicas, 10.0)
                    ),
                ),
            )
            for replicas in replica_counts
            if replicas > 0
        ]
    submission = _campaign_or_default(campaign).submit(
        list(baselines.values())
        + [config for row in replicated.values() for _nr, config in row]
    )
    for skew in skews:
        baseline_kb_s = submission.require(baselines[skew]).throughput_kb_s
        curve: List[Tuple[int, float]] = []
        for replicas in replica_counts:
            if replicas == 0:
                curve.append((0, 1.0))
                continue
            config = dict(replicated[skew])[replicas]
            curve.append(
                (
                    replicas,
                    cost_performance_ratio(
                        submission.require(config).throughput_kb_s, baseline_kb_s
                    ),
                )
            )
        data.series[f"RH-{skew:g}"] = curve
    return data


# ----------------------------------------------------------------------
# Beyond the paper: fleet-level replica placement (repro.federation)
# ----------------------------------------------------------------------
def _fed_nr_config(
    horizon_s: float,
    placement: str,
    fleet_replicas: int,
    queue_length: int,
) -> "FederationConfig":
    from ..federation import FederationConfig, LibraryConfig

    return FederationConfig(
        libraries=(
            LibraryConfig(drive_count=1, drive_speedup=0.5),
            LibraryConfig(drive_count=3, drive_speedup=2.0),
        ),
        global_policy="predicted-service",
        placement=placement,
        fleet_replicas=fleet_replicas,
        percent_requests_hot=80.0,
        queue_length=queue_length,
        horizon_s=horizon_s,
    )


def figure_fed_nr(
    horizon_s: float = 200_000.0,
    replica_counts: Sequence[int] = (0, 1),
    queue_length: int = 60,
    campaign=None,
) -> FigureData:
    """Fleet throughput vs replica count: spread vs home placement.

    Not a paper figure — the paper replicates hot data *within* one
    jukebox.  This extends its NR sweep to a heterogeneous two-library
    federation (one slow single-drive library, one fast three-drive
    library) at equal total copies: ``home`` keeps every copy in the
    block's home library (the paper's placement, per library), while
    ``spread`` pushes the copies to the *other* library so the global
    scheduler can route hot requests to whichever library is faster.
    With predicted-service routing and strong skew, spread wins —
    cross-library replication converts copies into routing freedom,
    which beats local seek locality when drive speeds differ.
    """
    data = FigureData(
        figure="fed-nr",
        title="Fleet-Level Replication: Spread vs Home Placement",
        annotation=(
            "FED-2 (1x0.5-drive + 3x2.0-drive) PH-10 RH-80 "
            f"predicted-service Q-{queue_length}"
        ),
    )
    grid = {
        placement: [
            (
                replicas,
                _fed_nr_config(horizon_s, placement, replicas, queue_length),
            )
            for replicas in replica_counts
        ]
        for placement in ("home", "spread")
    }
    submission = _campaign_or_default(campaign).submit(
        config for row in grid.values() for _nr, config in row
    )
    for placement, row in grid.items():
        results = [(nr, submission.require(config)) for nr, config in row]
        data.series[placement] = [
            (nr, result.report.aggregate_throughput_kb_s)
            for nr, result in results
        ]
        data.series[f"{placement} resp-s"] = [
            (nr, result.report.mean_response_s) for nr, result in results
        ]
    return data


def figure_gap(
    horizon_s: float = 200_000.0,
    queue_lengths: Sequence[int] = (20, 60, 100),
    campaign=None,
) -> FigureData:
    """Optimality gap: every heuristic vs the exact LTSP baseline.

    Not a paper figure — the paper never measures distance from
    optimal.  Each series is one scheduler's gap ratio (mean response
    over the ``exact-batch`` baseline's) across the scenario matrix of
    :func:`repro.analysis.gap.gap_scenarios`; 1.0 is optimal, and the
    paper's four heuristic families sit at or above it everywhere.
    The envelope series has no point at the multidrive scenario
    (multi-drive service excludes extension scheduling).
    """
    from ..analysis.gap import compute_gap, gap_scenarios

    scenarios = gap_scenarios(horizon_s=horizon_s, queue_lengths=queue_lengths)
    report = compute_gap(scenarios=scenarios, campaign=campaign)
    data = FigureData(
        figure="gap",
        title="Optimality Gap vs Exact LTSP Baseline",
        annotation="x = scenario: " + ", ".join(
            f"{index}={row.scenario.key}" for index, row in enumerate(report.rows)
        ),
    )
    for scheduler in report.schedulers:
        data.series[scheduler] = [
            (index, row.cell(scheduler).ratio)
            for index, row in enumerate(report.rows)
            if row.cell(scheduler) is not None
        ]
    return data


#: Registry used by the CLI: figure id -> generator function.
#: Every generator accepts ``campaign=`` (10a ignores it — analytic).
#: ``fed-nr`` goes beyond the paper: the fleet-level NR sweep of
#: :mod:`repro.federation` (see docs/FEDERATION.md).  ``gap`` goes
#: beyond it too: the optimality-gap matrix of :mod:`repro.analysis.gap`
#: (see docs/SCHEDULERS.md).
FIGURES = {
    "3": figure3,
    "4": figure4,
    "5": figure5,
    "6": figure6,
    "7": figure7,
    "8": figure8,
    "9": figure9,
    "10a": figure10a,
    "10b": figure10b,
    "fed-nr": figure_fed_nr,
    "gap": figure_gap,
}
