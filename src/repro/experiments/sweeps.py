"""Parametric sweeps: families of runs traced by workload intensity.

Most of the paper's graphs are *parametric*: the independent variable
(queue length) is not on either axis; as it grows it traces a curve in
(throughput, delay) space, and a second variable (algorithm, placement,
skew, ...) yields a family of curves.

.. deprecated::
    These helpers are thin shims over
    :meth:`repro.campaign.Campaign.submit` — the single execution
    surface with parallelism, caching, and failure isolation.  They
    keep their original signatures (a bare call runs serially and
    uncached, exactly as before) and gain an optional ``campaign=``
    argument; new code should build configs and submit a campaign
    directly.  See docs/API.md for the old→new mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from .config import ExperimentConfig
from .runner import ExperimentResult

#: The paper's queue lengths: plotted points 20, 40, ..., 140.
PAPER_QUEUE_LENGTHS = (20, 40, 60, 80, 100, 120, 140)


@dataclass(frozen=True)
class CurvePoint:
    """One plotted point of a parametric curve."""

    intensity: float
    throughput_kb_s: float
    requests_per_min: float
    mean_response_s: float
    tape_switches_per_hour: float

    @classmethod
    def from_result(cls, result: ExperimentResult) -> "CurvePoint":
        """Extract the plotted quantities from a finished run."""
        config, report = result.config, result.report
        intensity = (
            float(config.queue_length)
            if config.is_closed
            else 1.0 / config.mean_interarrival_s
        )
        return cls(
            intensity=intensity,
            throughput_kb_s=report.throughput_kb_s,
            requests_per_min=report.requests_per_min,
            mean_response_s=report.mean_response_s,
            tape_switches_per_hour=report.switches_per_hour,
        )


def _campaign_or_default(campaign):
    if campaign is not None:
        return campaign
    from ..campaign import Campaign

    return Campaign()


def queue_sweep_configs(
    base: ExperimentConfig,
    queue_lengths: Sequence[int] = PAPER_QUEUE_LENGTHS,
) -> List[ExperimentConfig]:
    """The configs a closed-queueing sweep submits, in plot order."""
    return [base.with_(queue_length=queue_length) for queue_length in queue_lengths]


def queue_sweep(
    base: ExperimentConfig,
    queue_lengths: Sequence[int] = PAPER_QUEUE_LENGTHS,
    campaign=None,
) -> List[CurvePoint]:
    """Trace one closed-queueing parametric curve over ``queue_lengths``."""
    configs = queue_sweep_configs(base, queue_lengths)
    submission = _campaign_or_default(campaign).submit(configs)
    return [CurvePoint.from_result(submission.require(config)) for config in configs]


def interarrival_sweep(
    base: ExperimentConfig,
    interarrivals_s: Sequence[float],
    campaign=None,
) -> List[CurvePoint]:
    """Trace one open-queueing curve over mean interarrival times."""
    configs = [
        base.with_(queue_length=None, mean_interarrival_s=interarrival_s)
        for interarrival_s in interarrivals_s
    ]
    submission = _campaign_or_default(campaign).submit(configs)
    return [CurvePoint.from_result(submission.require(config)) for config in configs]


def curve_family(
    bases: Dict[str, ExperimentConfig],
    queue_lengths: Sequence[int] = PAPER_QUEUE_LENGTHS,
    campaign=None,
) -> Dict[str, List[CurvePoint]]:
    """One labelled parametric curve per base config.

    The whole family goes out as **one** campaign submission, so with a
    parallel campaign every point of every curve runs concurrently.
    """
    family_configs: Dict[str, List[ExperimentConfig]] = {
        label: queue_sweep_configs(base, queue_lengths)
        for label, base in bases.items()
    }
    all_configs = [
        config for configs in family_configs.values() for config in configs
    ]
    submission = _campaign_or_default(campaign).submit(all_configs)
    return {
        label: [
            CurvePoint.from_result(submission.require(config)) for config in configs
        ]
        for label, configs in family_configs.items()
    }
