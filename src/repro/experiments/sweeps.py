"""Parametric sweeps: families of runs traced by workload intensity.

Most of the paper's graphs are *parametric*: the independent variable
(queue length) is not on either axis; as it grows it traces a curve in
(throughput, delay) space, and a second variable (algorithm, placement,
skew, ...) yields a family of curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from .config import ExperimentConfig
from .runner import ExperimentResult, run_experiment

#: The paper's queue lengths: plotted points 20, 40, ..., 140.
PAPER_QUEUE_LENGTHS = (20, 40, 60, 80, 100, 120, 140)


@dataclass(frozen=True)
class CurvePoint:
    """One plotted point of a parametric curve."""

    intensity: float
    throughput_kb_s: float
    requests_per_min: float
    mean_response_s: float
    tape_switches_per_hour: float

    @classmethod
    def from_result(cls, result: ExperimentResult) -> "CurvePoint":
        """Extract the plotted quantities from a finished run."""
        config, report = result.config, result.report
        intensity = (
            float(config.queue_length)
            if config.is_closed
            else 1.0 / config.mean_interarrival_s
        )
        return cls(
            intensity=intensity,
            throughput_kb_s=report.throughput_kb_s,
            requests_per_min=report.requests_per_min,
            mean_response_s=report.mean_response_s,
            tape_switches_per_hour=report.switches_per_hour,
        )


def queue_sweep(
    base: ExperimentConfig,
    queue_lengths: Sequence[int] = PAPER_QUEUE_LENGTHS,
) -> List[CurvePoint]:
    """Trace one closed-queueing parametric curve over ``queue_lengths``."""
    points = []
    for queue_length in queue_lengths:
        result = run_experiment(base.with_(queue_length=queue_length))
        points.append(CurvePoint.from_result(result))
    return points


def interarrival_sweep(
    base: ExperimentConfig,
    interarrivals_s: Sequence[float],
) -> List[CurvePoint]:
    """Trace one open-queueing curve over mean interarrival times."""
    points = []
    for interarrival_s in interarrivals_s:
        result = run_experiment(
            base.with_(queue_length=None, mean_interarrival_s=interarrival_s)
        )
        points.append(CurvePoint.from_result(result))
    return points


def curve_family(
    bases: Dict[str, ExperimentConfig],
    queue_lengths: Sequence[int] = PAPER_QUEUE_LENGTHS,
) -> Dict[str, List[CurvePoint]]:
    """One labelled parametric curve per base config."""
    return {
        label: queue_sweep(base, queue_lengths) for label, base in bases.items()
    }
