"""Zipf-distributed access skew (extension beyond the paper's hot/cold).

The paper deliberately uses a two-level hot/cold skew (PH, RH).  Real
archives often show smoother rank-frequency skew; a Zipf law with
exponent ``theta`` generalizes both extremes: ``theta = 0`` is uniform
access, large ``theta`` concentrates traffic on the lowest-ranked
blocks.  Rank equals block id, so ids below ``catalog.n_hot`` — the
blocks the layouts replicate — are also the most popular, keeping the
replication machinery meaningful under Zipf traffic.

Sampling uses the inverse-CDF over precomputed cumulative weights,
O(log n) per draw after an O(n) precomputation per catalog size.
"""

from __future__ import annotations

import bisect
import random
from typing import Dict, List

from ..layout.catalog import BlockCatalog


class ZipfSkew:
    """Zipf(``theta``) popularity over block ids (rank = id)."""

    def __init__(self, theta: float = 1.0) -> None:
        if theta < 0:
            raise ValueError(f"theta must be >= 0, got {theta!r}")
        self.theta = float(theta)
        self._cdf_cache: Dict[int, List[float]] = {}

    def _cdf(self, n_blocks: int) -> List[float]:
        cdf = self._cdf_cache.get(n_blocks)
        if cdf is None:
            weights = [1.0 / (rank + 1) ** self.theta for rank in range(n_blocks)]
            total = 0.0
            cdf = []
            for weight in weights:
                total += weight
                cdf.append(total)
            self._cdf_cache[n_blocks] = cdf
        return cdf

    def draw_block(self, rng: random.Random, catalog: BlockCatalog) -> int:
        """Draw one block id according to the Zipf law."""
        n_blocks = catalog.n_blocks
        if n_blocks == 0:
            raise ValueError("catalog has no blocks to request")
        cdf = self._cdf(n_blocks)
        point = rng.random() * cdf[-1]
        return bisect.bisect_left(cdf, point)

    def popularity_of_top(self, fraction: float, n_blocks: int) -> float:
        """Fraction of traffic hitting the top ``fraction`` of blocks.

        The Zipf analogue of the paper's RH given PH = ``fraction``.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction!r}")
        cdf = self._cdf(n_blocks)
        top = max(1, int(fraction * n_blocks))
        return cdf[top - 1] / cdf[-1]
