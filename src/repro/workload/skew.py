"""Hot/cold access skew (paper Section 4, workload assumptions).

The skew model has two parameters: PH, the percent of tape-resident data
that are hot (a layout property, carried by the catalog), and RH, the
percent of requests directed to hot data.  A hot request picks a hot
block uniformly at random; a cold request picks a cold block uniformly.
Requested block numbers are independent of one another.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..layout.catalog import BlockCatalog


@dataclass(frozen=True)
class HotColdSkew:
    """RH — the percent of requests directed to hot blocks."""

    percent_requests_hot: float = 40.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.percent_requests_hot <= 100.0:
            raise ValueError(
                f"percent_requests_hot must be in [0, 100], "
                f"got {self.percent_requests_hot!r}"
            )

    def draw_block(self, rng: random.Random, catalog: BlockCatalog) -> int:
        """Draw one logical block id according to the skew."""
        want_hot = rng.random() < self.percent_requests_hot / 100.0
        if want_hot and catalog.n_hot > 0:
            return rng.randrange(catalog.n_hot)
        if catalog.n_cold > 0:
            return catalog.n_hot + rng.randrange(catalog.n_cold)
        if catalog.n_hot > 0:  # degenerate all-hot catalog
            return rng.randrange(catalog.n_hot)
        raise ValueError("catalog has no blocks to request")


class UniformSkew(HotColdSkew):
    """No skew: every block equally likely (RH effectively equals PH)."""

    def draw_block(self, rng: random.Random, catalog: BlockCatalog) -> int:
        if catalog.n_blocks == 0:
            raise ValueError("catalog has no blocks to request")
        return rng.randrange(catalog.n_blocks)
