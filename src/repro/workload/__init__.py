"""Workload substrate: request records, skew model, and arrival sources."""

from .closed import ClosedSource
from .clustered import ClusteredClosedSource
from .open import OpenSource
from .requests import Request, RequestFactory
from .skew import HotColdSkew, UniformSkew
from .zipf import ZipfSkew
from .trace import (
    ClosedReplaySource,
    OpenReplaySource,
    TraceRecord,
    TraceRecorder,
)

__all__ = [
    "ClosedReplaySource",
    "ClosedSource",
    "ClusteredClosedSource",
    "HotColdSkew",
    "OpenReplaySource",
    "OpenSource",
    "Request",
    "RequestFactory",
    "TraceRecord",
    "TraceRecorder",
    "UniformSkew",
    "ZipfSkew",
]
