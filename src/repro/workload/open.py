"""Open-queueing request source (paper Section 4, second scenario).

Models a large pool of clients making sporadic requests: arrivals form a
Poisson process with a configurable mean interarrival time, independent
of the service rate.  A slow server therefore accumulates a long queue
instead of throttling the arrival stream.
"""

from __future__ import annotations

import random
from typing import Iterator, Tuple

from ..layout.catalog import BlockCatalog
from .requests import Request, RequestFactory
from .skew import HotColdSkew


class OpenSource:
    """Poisson arrivals with mean interarrival ``mean_interarrival_s``."""

    is_closed = False

    def __init__(
        self,
        mean_interarrival_s: float,
        skew: HotColdSkew,
        catalog: BlockCatalog,
        rng: random.Random,
        factory: RequestFactory = None,
    ) -> None:
        if mean_interarrival_s <= 0:
            raise ValueError(
                f"mean_interarrival_s must be positive, got {mean_interarrival_s!r}"
            )
        self.mean_interarrival_s = mean_interarrival_s
        self.skew = skew
        self.catalog = catalog
        self.rng = rng
        self.factory = factory if factory is not None else RequestFactory()

    def initial_requests(self, now: float = 0.0) -> list:
        """Open systems start empty; the arrival process drives everything."""
        return []

    def on_completion(self, now: float) -> None:
        """Completions do not trigger new arrivals in an open system."""
        return None

    def arrivals(self, horizon_s: float, start_s: float = 0.0) -> Iterator[Tuple[float, Request]]:
        """Yield ``(arrival_time, request)`` pairs up to ``horizon_s``.

        The simulator consumes this lazily from a DES process so the whole
        arrival stream never materializes in memory.
        """
        now = start_s
        while True:
            now += self.rng.expovariate(1.0 / self.mean_interarrival_s)
            if now > horizon_s:
                return
            block_id = self.skew.draw_block(self.rng, self.catalog)
            yield now, self.factory.create(block_id, now)
