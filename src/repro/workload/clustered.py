"""Clustered (Markov-type) request dependencies — extension.

The paper's workload assumes independent block requests and explicitly
leaves clustering on the table: "We do not exploit performance gains
from clustered or Markov-type data dependencies."  This source supplies
the missing workload so that claim can be explored: with probability
``locality`` the next request continues a *run* — the logically next
block after the previous request — and otherwise it jumps to a fresh
block drawn from the underlying skew.

Sequential runs land on physically adjacent tape positions under the
default layouts, so sweep-based schedulers should convert locality into
streaming reads; the expected run length is ``1 / (1 - locality)``.
"""

from __future__ import annotations

import random
from typing import Optional

from ..layout.catalog import BlockCatalog
from .requests import Request, RequestFactory
from .skew import HotColdSkew


class ClusteredClosedSource:
    """Closed-queueing source with Markov run locality."""

    is_closed = True

    def __init__(
        self,
        queue_length: int,
        skew: HotColdSkew,
        catalog: BlockCatalog,
        rng: random.Random,
        locality: float = 0.5,
        factory: RequestFactory = None,
    ) -> None:
        if queue_length <= 0:
            raise ValueError(f"queue_length must be positive, got {queue_length!r}")
        if not 0.0 <= locality < 1.0:
            raise ValueError(f"locality must be in [0, 1), got {locality!r}")
        self.queue_length = queue_length
        self.skew = skew
        self.catalog = catalog
        self.rng = rng
        self.locality = locality
        self.factory = factory if factory is not None else RequestFactory()
        self._previous_block: Optional[int] = None
        #: Diagnostics: how many draws continued a run.
        self.run_continuations = 0
        self.fresh_draws = 0

    def _draw(self) -> int:
        if (
            self._previous_block is not None
            and self.rng.random() < self.locality
        ):
            successor = self._previous_block + 1
            if successor < self.catalog.n_blocks:
                self.run_continuations += 1
                self._previous_block = successor
                return successor
        self.fresh_draws += 1
        block_id = self.skew.draw_block(self.rng, self.catalog)
        self._previous_block = block_id
        return block_id

    def initial_requests(self, now: float = 0.0) -> list:
        """The initial closed population, drawn with run locality."""
        return [
            self.factory.create(self._draw(), now) for _slot in range(self.queue_length)
        ]

    def on_completion(self, now: float) -> Request:
        """Replacement request, possibly continuing the current run."""
        return self.factory.create(self._draw(), now)

    @property
    def observed_locality(self) -> float:
        """Fraction of draws that continued a run (diagnostic)."""
        total = self.run_continuations + self.fresh_draws
        return self.run_continuations / total if total else 0.0
