"""Workload trace recording and replay.

Production studies often need to re-run the *same* request stream under
different layouts or schedulers (the paper's parametric graphs hold the
workload fixed while varying one axis).  A :class:`TraceRecorder` wraps
any source and captures what it emitted; :class:`OpenReplaySource` and
:class:`ClosedReplaySource` feed a captured (or hand-written) trace back
into the simulator.

Closed traces replay the *block-id sequence* only — arrival instants in
a closed system are completion-driven, so they rightly differ when the
configuration under test changes the service rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from .requests import Request, RequestFactory


@dataclass(frozen=True)
class TraceRecord:
    """One recorded request."""

    arrival_s: float
    block_id: int


class TraceRecorder:
    """Wraps a request source, recording every request it emits."""

    def __init__(self, inner) -> None:
        self._inner = inner
        self.records: List[TraceRecord] = []

    @property
    def is_closed(self) -> bool:
        """Mirrors the wrapped source's model."""
        return self._inner.is_closed

    def _record(self, request: Request) -> Request:
        self.records.append(TraceRecord(request.arrival_s, request.block_id))
        return request

    def initial_requests(self, now: float = 0.0) -> list:
        """Delegate and record."""
        return [self._record(request) for request in self._inner.initial_requests(now)]

    def on_completion(self, now: float):
        """Delegate and record (closed sources emit replacements here)."""
        request = self._inner.on_completion(now)
        if request is not None:
            self._record(request)
        return request

    def arrivals(self, horizon_s: float, start_s: float = 0.0):
        """Delegate and record (open sources)."""
        for arrival_s, request in self._inner.arrivals(horizon_s, start_s):
            yield arrival_s, self._record(request)

    def block_ids(self) -> List[int]:
        """The recorded block-id sequence, in emission order."""
        return [record.block_id for record in self.records]


class OpenReplaySource:
    """Replays a timed trace as an open-queueing arrival stream."""

    is_closed = False

    def __init__(self, records: Sequence[TraceRecord], factory: RequestFactory = None) -> None:
        self._records = sorted(records, key=lambda record: record.arrival_s)
        self.factory = factory if factory is not None else RequestFactory()

    def initial_requests(self, now: float = 0.0) -> list:
        """Open replays start empty (arrivals carry everything)."""
        return []

    def on_completion(self, now: float) -> None:
        """Completions trigger nothing in an open system."""
        return None

    def arrivals(self, horizon_s: float, start_s: float = 0.0) -> Iterator[Tuple[float, Request]]:
        """Yield the trace's requests up to ``horizon_s``."""
        for record in self._records:
            if record.arrival_s < start_s:
                continue
            if record.arrival_s > horizon_s:
                return
            yield record.arrival_s, self.factory.create(
                record.block_id, record.arrival_s
            )


class ClosedReplaySource:
    """Replays a block-id sequence under the closed-queueing discipline.

    The first ``queue_length`` ids form the initial population; each
    completion consumes the next id.  When the trace runs dry the replay
    cycles (steady-state measurement needs an endless stream); set
    ``cycle=False`` to stop generating instead, letting the queue drain.
    """

    is_closed = True

    def __init__(
        self,
        queue_length: int,
        block_ids: Sequence[int],
        cycle: bool = True,
        factory: RequestFactory = None,
    ) -> None:
        if queue_length <= 0:
            raise ValueError(f"queue_length must be positive, got {queue_length!r}")
        if len(block_ids) < queue_length:
            raise ValueError(
                f"trace of {len(block_ids)} ids cannot fill a queue of "
                f"{queue_length}"
            )
        self.queue_length = queue_length
        self._block_ids = list(block_ids)
        self._cursor = 0
        self._cycle = cycle
        self.factory = factory if factory is not None else RequestFactory()

    def _next_block(self):
        if self._cursor >= len(self._block_ids):
            if not self._cycle:
                return None
            self._cursor = 0
        block_id = self._block_ids[self._cursor]
        self._cursor += 1
        return block_id

    def initial_requests(self, now: float = 0.0) -> list:
        """The first ``queue_length`` trace entries, all arriving now."""
        requests = []
        for _slot in range(self.queue_length):
            block_id = self._next_block()
            assert block_id is not None  # guarded by the length check
            requests.append(self.factory.create(block_id, now))
        return requests

    def on_completion(self, now: float):
        """The next trace entry, or ``None`` when a finite trace ends."""
        block_id = self._next_block()
        if block_id is None:
            return None
        return self.factory.create(block_id, now)
