"""Closed-queueing request source (paper Section 4, first scenario).

Models a fixed number of I/O-bound processes: the number of outstanding
requests is held constant at the queue length.  A new request is
generated immediately upon each completion, so any improvement to the
service rate directly increases the request generation rate (and hence
the measured throughput).
"""

from __future__ import annotations

import random

from ..layout.catalog import BlockCatalog
from .requests import Request, RequestFactory
from .skew import HotColdSkew


class ClosedSource:
    """Keeps exactly ``queue_length`` requests outstanding."""

    #: Marker the simulator uses to decide completion behaviour.
    is_closed = True

    def __init__(
        self,
        queue_length: int,
        skew: HotColdSkew,
        catalog: BlockCatalog,
        rng: random.Random,
        factory: RequestFactory = None,
    ) -> None:
        if queue_length <= 0:
            raise ValueError(f"queue_length must be positive, got {queue_length!r}")
        self.queue_length = queue_length
        self.skew = skew
        self.catalog = catalog
        self.rng = rng
        self.factory = factory if factory is not None else RequestFactory()

    def initial_requests(self, now: float = 0.0) -> list:
        """The population of requests outstanding at simulation start."""
        return [
            self.factory.create(self.skew.draw_block(self.rng, self.catalog), now)
            for _slot in range(self.queue_length)
        ]

    def on_completion(self, now: float) -> Request:
        """Generate the replacement request for a completed one."""
        return self.factory.create(self.skew.draw_block(self.rng, self.catalog), now)
