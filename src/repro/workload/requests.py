"""Request records and identity allocation.

A request asks for one logical block (paper Section 2.2).  Requests are
identified by a dense monotonically increasing id, which doubles as the
arrival order used by the "oldest request" tape-selection policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Request:
    """One outstanding read request for a logical block."""

    request_id: int
    block_id: int
    arrival_s: float
    completion_s: Optional[float] = None
    #: Absolute expiry time (arrival + TTL), stamped at admission by the
    #: QoS layer; ``None`` (the default) means the request never expires.
    deadline_s: Optional[float] = None

    @property
    def is_complete(self) -> bool:
        """True once the block has been delivered."""
        return self.completion_s is not None

    def is_expired(self, now: float) -> bool:
        """True when a deadline is set and has passed without delivery."""
        return self.deadline_s is not None and now > self.deadline_s

    @property
    def response_s(self) -> float:
        """Response time (completion minus arrival); requires completion."""
        if self.completion_s is None:
            raise RuntimeError(f"request {self.request_id} not complete")
        return self.completion_s - self.arrival_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"done@{self.completion_s:g}" if self.is_complete else "pending"
        return (
            f"Request(id={self.request_id}, block={self.block_id}, "
            f"arrived={self.arrival_s:g}, {state})"
        )


@dataclass
class RequestFactory:
    """Allocates request ids in arrival order."""

    next_id: int = field(default=0)

    def create(self, block_id: int, arrival_s: float) -> Request:
        """Build the next request in sequence."""
        request = Request(request_id=self.next_id, block_id=block_id, arrival_s=arrival_s)
        self.next_id += 1
        return request
