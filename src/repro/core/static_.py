"""The static scheduling family (paper Section 3.1).

A static algorithm's major rescheduler applies a tape-selection policy,
then services *all* pending requests that the chosen tape can satisfy,
sorted into a single sweep.  Newly arriving requests are always deferred
to the pending list, even when they are for the current tape.
"""

from __future__ import annotations

from typing import List, Optional

from .base import MajorDecision, Scheduler, SchedulerContext, coalesce_entries
from .policies import SelectionContext, TapeSelectionPolicy


class StaticScheduler(Scheduler):
    """Static algorithm parameterized by a tape-selection policy.

    ``ordering`` selects the intra-tape execution order: ``"sweep"``
    (the paper's forward-then-reverse pass, default) or ``"nearest"``
    (greedy nearest-neighbor, for the ordering ablation).
    """

    def __init__(self, policy: TapeSelectionPolicy, ordering: str = "sweep") -> None:
        if ordering not in ("sweep", "nearest"):
            raise ValueError(f"unknown ordering {ordering!r}")
        self._policy = policy
        self._ordering = ordering
        self.name = f"static-{policy.name}"
        if ordering != "sweep":
            self.name += f"-{ordering}"

    def build_service_list(self, entries, head_mb: float):
        if self._ordering == "nearest":
            from .ordering import NearestNeighborServiceList

            return NearestNeighborServiceList(entries, head_mb=head_mb)
        return super().build_service_list(entries, head_mb=head_mb)

    @property
    def policy(self) -> TapeSelectionPolicy:
        """The tape-selection policy in use."""
        return self._policy

    def _selection_context(self, context: SchedulerContext) -> SelectionContext:
        candidates = context.pending.candidate_tapes()

        def positions_for(tape_id: int) -> List[float]:
            return [
                context.catalog.replica_on(request.block_id, tape_id).position_mb
                for request in candidates.get(tape_id, ())
            ]

        return SelectionContext(
            timing=context.jukebox.timing,
            block_mb=context.block_mb,
            tape_count=context.tape_count,
            mounted_id=context.mounted_id,
            head_mb=context.head_mb,
            candidates=candidates,
            positions_for=positions_for,
            oldest=context.pending.oldest(),
        )

    def major_reschedule(self, context: SchedulerContext) -> Optional[MajorDecision]:
        if len(context.pending) == 0:
            return None
        selection = self._selection_context(context)
        tape_id = self._policy.select(selection)
        if tape_id is None:
            return None
        chosen = selection.candidates[tape_id]
        context.pending.remove_many(chosen)
        entries = coalesce_entries(chosen, tape_id, context.catalog)
        return MajorDecision(tape_id=tape_id, entries=entries)
