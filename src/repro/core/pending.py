"""The pending list: requests not yet scheduled for retrieval.

The pending list is arrival-ordered (paper Section 2.2): "oldest request"
policies look at its head.  Schedulers query it by tape via the catalog's
replica map; sizes are the workload's queue length (tens to low hundreds),
so linear scans with a by-id index are both simple and fast enough.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..layout.catalog import BlockCatalog
from ..workload.requests import Request


class PendingList:
    """Arrival-ordered collection of unscheduled requests."""

    def __init__(self, catalog: BlockCatalog) -> None:
        self._catalog = catalog
        self._requests: List[Request] = []
        self._by_id: Dict[int, Request] = {}

    def __len__(self) -> int:
        return len(self._requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self._requests)

    def __contains__(self, request: Request) -> bool:
        return request.request_id in self._by_id

    @property
    def catalog(self) -> BlockCatalog:
        """The block catalog used to resolve candidate tapes."""
        return self._catalog

    def append(self, request: Request) -> None:
        """Add a newly deferred request at the tail (arrival order)."""
        if request.request_id in self._by_id:
            raise ValueError(f"request {request.request_id} already pending")
        self._requests.append(request)
        self._by_id[request.request_id] = request

    def oldest(self) -> Optional[Request]:
        """The request at the head of the list, or ``None`` when empty."""
        return self._requests[0] if self._requests else None

    def requests_for_tape(self, tape_id: int) -> List[Request]:
        """Pending requests with a replica on ``tape_id`` (arrival order)."""
        return [
            request
            for request in self._requests
            if self._catalog.has_replica_on(request.block_id, tape_id)
        ]

    def candidate_tapes(self) -> Dict[int, List[Request]]:
        """Map ``tape_id -> pending requests with a replica there``."""
        by_tape: Dict[int, List[Request]] = {}
        for request in self._requests:
            for replica in self._catalog.replicas_of(request.block_id):
                by_tape.setdefault(replica.tape_id, []).append(request)
        return by_tape

    def remove_many(self, requests: List[Request]) -> None:
        """Remove ``requests`` (they have been scheduled for service)."""
        removing = {request.request_id for request in requests}
        missing = removing - self._by_id.keys()
        if missing:
            raise KeyError(f"requests not pending: {sorted(missing)}")
        self._requests = [
            request for request in self._requests if request.request_id not in removing
        ]
        for request_id in removing:
            del self._by_id[request_id]

    def snapshot(self) -> List[Request]:
        """Copy of the pending requests in arrival order."""
        return list(self._requests)
