"""The pending list: requests not yet scheduled for retrieval.

The pending list is arrival-ordered (paper Section 2.2): "oldest request"
policies look at its head.  Schedulers query it by tape; those queries
used to be linear scans over all pending requests, which made every
``candidate_tapes()``/``requests_for_tape()`` call O(n·replicas).  The
list now maintains a per-tape index updated on append/remove, so by-tape
queries are proportional to their result size.

The index is built from the catalog's replica map at append time.  With
fault masking the catalog's answers can change *after* a request is
appended — but masks only ever grow during a run (tapes fail, replicas
are discovered bad; nothing recovers), so the append-time index is a
superset of the live answer and a per-query ``has_replica_on`` filter
(only taken when the catalog declares ``dynamic_replicas``) restores
exact equivalence with the original scan.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..layout.catalog import BlockCatalog
from ..workload.requests import Request


class PendingList:
    """Arrival-ordered collection of unscheduled requests."""

    def __init__(self, catalog: BlockCatalog) -> None:
        self._catalog = catalog
        self._requests: List[Request] = []
        self._by_id: Dict[int, Request] = {}
        #: tape_id -> {request_id: request}; insertion order == arrival
        #: order, so dict values enumerate in the order the old linear
        #: scan produced.
        self._by_tape: Dict[int, Dict[int, Request]] = {}
        #: request_id -> tape ids indexed at append time (the removal
        #: key: with a masking catalog, replicas_of may shrink later).
        self._tapes_of: Dict[int, Tuple[int, ...]] = {}
        #: True when the catalog's replica answers can change mid-run
        #: (fault masking); forces per-query re-filtering.
        self._dynamic = bool(getattr(catalog, "dynamic_replicas", False))
        #: Membership listeners (e.g. the envelope scheduler's
        #: :class:`~repro.core.envelope.EnvelopeIndex`).  Every mutation
        #: path — scheduler removals, QoS expiry, starvation promotion,
        #: fault requeues — funnels through :meth:`append` /
        #: :meth:`remove_many`, so a listener sees the exact membership
        #: history no matter which subsystem mutated the list.
        self._listeners: List[object] = []

    def add_listener(self, listener: object) -> None:
        """Subscribe ``listener`` to membership changes.

        The listener must expose ``on_pending_append(request)`` and
        ``on_pending_remove(requests)``; both are invoked synchronously
        after the list has been updated.
        """
        self._listeners.append(listener)

    def remove_listener(self, listener: object) -> None:
        """Unsubscribe a listener previously added (no-op if absent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def __len__(self) -> int:
        return len(self._requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self._requests)

    def __contains__(self, request: Request) -> bool:
        return request.request_id in self._by_id

    @property
    def catalog(self) -> BlockCatalog:
        """The block catalog used to resolve candidate tapes."""
        return self._catalog

    def append(self, request: Request) -> None:
        """Add a newly deferred request at the tail (arrival order)."""
        request_id = request.request_id
        if request_id in self._by_id:
            raise ValueError(f"request {request_id} already pending")
        self._requests.append(request)
        self._by_id[request_id] = request
        tapes = tuple(
            replica.tape_id
            for replica in self._catalog.replicas_of(request.block_id)
        )
        self._tapes_of[request_id] = tapes
        by_tape = self._by_tape
        for tape_id in tapes:
            bucket = by_tape.get(tape_id)
            if bucket is None:
                bucket = by_tape[tape_id] = {}
            bucket[request_id] = request
        for listener in self._listeners:
            listener.on_pending_append(request)

    def oldest(self) -> Optional[Request]:
        """The request at the head of the list, or ``None`` when empty."""
        return self._requests[0] if self._requests else None

    def requests_for_tape(self, tape_id: int) -> List[Request]:
        """Pending requests with a replica on ``tape_id`` (arrival order)."""
        bucket = self._by_tape.get(tape_id)
        if not bucket:
            return []
        if self._dynamic:
            catalog = self._catalog
            return [
                request
                for request in bucket.values()
                if catalog.has_replica_on(request.block_id, tape_id)
            ]
        return list(bucket.values())

    def candidate_tapes(self) -> Dict[int, List[Request]]:
        """Map ``tape_id -> pending requests with a replica there``."""
        if self._dynamic:
            catalog = self._catalog
            out: Dict[int, List[Request]] = {}
            for tape_id, bucket in self._by_tape.items():
                live = [
                    request
                    for request in bucket.values()
                    if catalog.has_replica_on(request.block_id, tape_id)
                ]
                if live:
                    out[tape_id] = live
            return out
        return {
            tape_id: list(bucket.values())
            for tape_id, bucket in self._by_tape.items()
            if bucket
        }

    def remove_many(self, requests: List[Request]) -> None:
        """Remove ``requests`` (they have been scheduled for service)."""
        removing = {request.request_id for request in requests}
        missing = removing - self._by_id.keys()
        if missing:
            raise KeyError(f"requests not pending: {sorted(missing)}")
        self._requests = [
            request for request in self._requests if request.request_id not in removing
        ]
        by_tape = self._by_tape
        for request_id in removing:
            del self._by_id[request_id]
            for tape_id in self._tapes_of.pop(request_id):
                del by_tape[tape_id][request_id]
        for listener in self._listeners:
            listener.on_pending_remove(requests)

    def snapshot(self) -> List[Request]:
        """Copy of the pending requests in arrival order."""
        return list(self._requests)
