"""LTSP optimality baselines: exact and approximate batch sequencing.

The paper compares its scheduler families only against each other, never
against *optimal*, so it cannot say how much headroom a heuristic leaves
on the table.  The Linear Tape Scheduling Problem (LTSP) literature
supplies the missing baseline: sequencing a batch of reads on one linear
tape to minimize the sum of (weighted) completion times.  "An Exact
Algorithm for the Linear Tape Scheduling Problem" (arXiv 2112.09384)
solves the single-tape problem exactly; "On Approximate Sequencing
Policies" (arXiv 2112.07018) gives cheap near-optimal policies.  The
multi-tape *assignment* remains NP-hard (the paper's own Theorem 1), so
these families keep the per-sweep batch structure of the static family
— serve every pending request the chosen tape can satisfy — and
optimize the two decisions that remain: which tape, and in what order.

Three schedulers:

* ``exact-batch`` — per-sweep exact optimizer: branch-and-bound with
  memoization over (served-subset, last-read) states, drive-exact
  transition costs, and a configurable node budget that falls back to
  the best order found so far (seeded with both sweep passes and the
  greedy policy, so the fallback is never worse than those).
* ``approx-greedy-cost`` — the classic minimum-latency greedy: always
  read next the block with the smallest time-per-satisfied-request
  ratio (2112.07018's cost-over-weight sequencing intuition).
* ``approx-best-pass`` — evaluate the two canonical single-pass orders
  (forward-then-reverse, reverse-then-forward) under the exact cost
  model and execute the cheaper one.

The decision objective ``J`` charges every pending request for the time
this decision makes it wait: requests served by the sweep wait until
their read completes; requests deferred to other tapes wait for the
whole sweep (including any tape-switch overhead).  Minimizing ``J``
per decision minimizes the decision's total response-time contribution.

All transition arithmetic mirrors :class:`repro.tape.drive.TapeDrive`
exactly (same rules as :func:`repro.core.cost.sweep_cost`), so planned
costs equal what the simulated hardware will do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..tape.timing import DriveTimingModel
from ..workload.requests import Request
from .base import MajorDecision, Scheduler, SchedulerContext, coalesce_entries
from .policies import jukebox_order
from .sweep import ServiceEntry, SweepPhase

#: Transition evaluations per batch optimization before the exact search
#: stops and returns the best order found so far.  Exhaustive search of a
#: batch of ``m`` distinct blocks needs at most ``2^m * m^2 / 2`` nodes
#: in the worst case; the memo and lower-bound pruning reach far fewer,
#: so the default keeps batches of ~10 blocks exact while bounding the
#: cost of pathological batches.
DEFAULT_NODE_BUDGET = 50_000


class _BatchCost:
    """Drive-exact transition arithmetic for one (timing, block size)."""

    __slots__ = (
        "block_mb",
        "read_plain_s",
        "read_startup_s",
        "_locate_forward",
        "_locate_reverse",
    )

    def __init__(self, timing: DriveTimingModel, block_mb: float) -> None:
        self.block_mb = float(block_mb)
        self.read_plain_s = timing.read(block_mb, startup=False)
        self.read_startup_s = timing.read(block_mb, startup=True)
        self._locate_forward = timing.locate_forward
        self._locate_reverse = timing.locate_reverse

    def step(
        self, head_mb: float, startup_pending: bool, position_mb: float
    ) -> Tuple[float, float, bool]:
        """Locate to ``position_mb`` and read one block.

        Returns ``(seconds, end_head_mb, startup_pending_after)`` with
        the same state rules as the drive: a forward locate re-arms the
        read startup, a reverse locate clears it, a zero-distance locate
        leaves it unchanged, and any read clears it.
        """
        if position_mb > head_mb:
            seconds = self._locate_forward(position_mb - head_mb)
            startup_pending = True
        elif position_mb < head_mb:
            seconds = self._locate_reverse(
                head_mb - position_mb, lands_on_bot=(position_mb == 0)
            )
            startup_pending = False
        else:
            seconds = 0.0
        seconds += self.read_startup_s if startup_pending else self.read_plain_s
        return seconds, position_mb + self.block_mb, False


def _entry_weight(entry: ServiceEntry) -> float:
    return float(len(entry.requests))


def _order_cost(
    model: _BatchCost,
    head_mb: float,
    order: Sequence[ServiceEntry],
    deferred_weight: float,
    startup_pending: bool,
) -> float:
    """The objective ``J`` of executing ``order`` from ``head_mb``."""
    pending_weight = deferred_weight + sum(_entry_weight(entry) for entry in order)
    head = float(head_mb)
    startup = startup_pending
    total = 0.0
    for entry in order:
        seconds, head, startup = model.step(head, startup, entry.position_mb)
        total += seconds * pending_weight
        pending_weight -= _entry_weight(entry)
    return total


def order_cost(
    timing: DriveTimingModel,
    head_mb: float,
    order: Sequence[ServiceEntry],
    block_mb: float,
    deferred_weight: float = 0.0,
    startup_pending: bool = True,
) -> float:
    """Weighted completion-time objective of executing ``order``.

    Each entry contributes ``weight * completion_time`` (weight = number
    of coalesced requests); ``deferred_weight`` requests additionally
    wait for the full execution time.
    """
    model = _BatchCost(timing, block_mb)
    return _order_cost(model, head_mb, order, deferred_weight, startup_pending)


def sweep_order(
    entries: Sequence[ServiceEntry], head_mb: float
) -> List[ServiceEntry]:
    """The paper's forward-then-reverse pass over ``entries``."""
    forward = sorted(
        (entry for entry in entries if entry.position_mb >= head_mb),
        key=lambda entry: (entry.position_mb, entry.block_id),
    )
    reverse = sorted(
        (entry for entry in entries if entry.position_mb < head_mb),
        key=lambda entry: (-entry.position_mb, entry.block_id),
    )
    return forward + reverse


def reverse_first_order(
    entries: Sequence[ServiceEntry], head_mb: float
) -> List[ServiceEntry]:
    """The mirrored pass: reverse phase first, then the forward phase."""
    forward = sorted(
        (entry for entry in entries if entry.position_mb >= head_mb),
        key=lambda entry: (entry.position_mb, entry.block_id),
    )
    reverse = sorted(
        (entry for entry in entries if entry.position_mb < head_mb),
        key=lambda entry: (-entry.position_mb, entry.block_id),
    )
    return reverse + forward


def _greedy_order(
    model: _BatchCost,
    head_mb: float,
    entries: Sequence[ServiceEntry],
    startup_pending: bool,
) -> List[ServiceEntry]:
    remaining = sorted(
        entries, key=lambda entry: (entry.position_mb, entry.block_id)
    )
    head = float(head_mb)
    startup = startup_pending
    order: List[ServiceEntry] = []
    while remaining:
        best_index = 0
        best_key: Optional[Tuple[float, float]] = None
        for index, entry in enumerate(remaining):
            seconds, _, _ = model.step(head, startup, entry.position_mb)
            key = (seconds / max(_entry_weight(entry), 1.0), entry.position_mb)
            if best_key is None or key < best_key:
                best_key = key
                best_index = index
        entry = remaining.pop(best_index)
        _, head, startup = model.step(head, startup, entry.position_mb)
        order.append(entry)
    return order


def greedy_cost_order(
    timing: DriveTimingModel,
    head_mb: float,
    entries: Sequence[ServiceEntry],
    block_mb: float,
    startup_pending: bool = True,
) -> List[ServiceEntry]:
    """Minimum-latency greedy: cheapest time-per-request read next."""
    return _greedy_order(
        _BatchCost(timing, block_mb), head_mb, entries, startup_pending
    )


def best_pass_order(
    timing: DriveTimingModel,
    head_mb: float,
    entries: Sequence[ServiceEntry],
    block_mb: float,
    deferred_weight: float = 0.0,
    startup_pending: bool = True,
) -> List[ServiceEntry]:
    """The cheaper of the two single-pass orders under the exact cost."""
    model = _BatchCost(timing, block_mb)
    forward_first = sweep_order(entries, head_mb)
    reverse_first = reverse_first_order(entries, head_mb)
    forward_cost = _order_cost(
        model, head_mb, forward_first, deferred_weight, startup_pending
    )
    reverse_cost = _order_cost(
        model, head_mb, reverse_first, deferred_weight, startup_pending
    )
    return reverse_first if reverse_cost < forward_cost else forward_first


@dataclass(frozen=True)
class BatchPlan:
    """Result of one batch optimization."""

    order: Tuple[ServiceEntry, ...]
    cost_s: float
    #: True when the search ran to completion (the order is provably
    #: optimal); False when the node budget stopped it early and
    #: ``order`` is the best found so far.
    exact: bool
    nodes: int


def optimal_order(
    timing: DriveTimingModel,
    head_mb: float,
    entries: Sequence[ServiceEntry],
    block_mb: float,
    deferred_weight: float = 0.0,
    node_budget: int = DEFAULT_NODE_BUDGET,
    startup_pending: bool = True,
) -> BatchPlan:
    """Optimal execution order of ``entries`` under the ``J`` objective.

    Branch-and-bound over read permutations with memoization on
    (served-subset, last-read) states — the drive state after a read is
    fully determined by that pair, so dominated prefixes are cut — plus
    a read-time lower bound.  The incumbent is seeded with both
    single-pass orders and the greedy policy, so even when
    ``node_budget`` exhausts the search the returned order is at least
    as good as every approximation policy in this module.
    """
    model = _BatchCost(timing, block_mb)
    items = sorted(entries, key=lambda entry: (entry.position_mb, entry.block_id))
    count = len(items)
    if count == 0:
        return BatchPlan(order=(), cost_s=0.0, exact=True, nodes=0)
    weights = [_entry_weight(entry) for entry in items]
    positions = [entry.position_mb for entry in items]
    delta = float(deferred_weight)
    total_weight = sum(weights) + delta

    best_order: List[ServiceEntry] = []
    best_cost = float("inf")
    for seed in (
        sweep_order(items, head_mb),
        reverse_first_order(items, head_mb),
        _greedy_order(model, head_mb, items, startup_pending),
    ):
        cost = _order_cost(model, head_mb, seed, delta, startup_pending)
        if cost < best_cost:
            best_cost = cost
            best_order = seed

    # The drive state after reading block ``i`` is fully determined
    # (head just past ``i``, startup cleared), so every transition cost
    # is precomputable: one ``count``-vector for the root state and one
    # ``count x count`` matrix between reads, plus per-predecessor child
    # orders (cheapest time-per-weight first) hoisted out of the search.
    def _ranked(costs: Sequence[float]) -> List[int]:
        return sorted(
            range(count),
            key=lambda j: (costs[j] / max(weights[j], 1.0), positions[j]),
        )

    root_cost = [
        model.step(float(head_mb), startup_pending, positions[j])[0]
        for j in range(count)
    ]
    step_cost = [
        [
            model.step(positions[i] + model.block_mb, False, positions[j])[0]
            for j in range(count)
        ]
        for i in range(count)
    ]
    root_rank = _ranked(root_cost)
    step_rank = [_ranked(step_cost[i]) for i in range(count)]

    memo = {}
    read_plain = model.read_plain_s
    path: List[ServiceEntry] = []
    nodes = 0
    exhausted = False

    def search(
        mask: int,
        last: int,
        accrued: float,
        pending_weight: float,
        remaining: int,
    ) -> None:
        nonlocal best_cost, best_order, nodes, exhausted
        costs = root_cost if last < 0 else step_cost[last]
        ranked = root_rank if last < 0 else step_rank[last]
        for index in ranked:
            if (mask >> index) & 1:
                continue
            if exhausted:
                return
            nodes += 1
            if nodes > node_budget:
                exhausted = True
                return
            child_accrued = accrued + costs[index] * pending_weight
            child_pending = pending_weight - weights[index]
            child_remaining = remaining - 1
            # Every remaining block still needs at least one plain read,
            # during which its own weight and the deferred weight are
            # still waiting: a sound, cheap lower bound on the rest.
            bound = child_accrued + read_plain * (
                (child_pending - delta) + delta * child_remaining
            )
            if bound >= best_cost:
                continue
            key = (mask | (1 << index), index)
            seen = memo.get(key)
            if seen is not None and child_accrued >= seen:
                continue
            memo[key] = child_accrued
            path.append(items[index])
            if child_remaining == 0:
                best_cost = child_accrued
                best_order = list(path)
            else:
                search(
                    mask | (1 << index),
                    index,
                    child_accrued,
                    child_pending,
                    child_remaining,
                )
            path.pop()

    search(0, -1, 0.0, total_weight, count)
    return BatchPlan(
        order=tuple(best_order),
        cost_s=best_cost,
        exact=not exhausted,
        nodes=nodes,
    )


class OrderedServiceList:
    """Executes a precomputed read order; interface-compatible with
    :class:`~repro.core.sweep.ServiceList`.

    Unlike the sweep list, the order is explicit, so insertions are
    always accepted; when a ``replan`` callback is supplied, each
    insertion re-optimizes the not-yet-started remainder from the head
    state the next pop will see.
    """

    def __init__(
        self,
        entries: Sequence[ServiceEntry],
        head_mb: float,
        block_mb: float = 0.0,
        replan: Optional[
            Callable[[float, bool, List[ServiceEntry]], Sequence[ServiceEntry]]
        ] = None,
    ) -> None:
        self.start_head_mb = float(head_mb)
        self._entries: List[ServiceEntry] = list(entries)
        self._head_mb = float(head_mb)
        self._block_mb = float(block_mb)
        self._startup_pending = True
        self._in_flight: Optional[ServiceEntry] = None
        self._replan = replan

    # -- introspection ---------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_empty(self) -> bool:
        """True when no reads remain to be started."""
        return not self._entries

    @property
    def in_flight(self) -> Optional[ServiceEntry]:
        """The entry currently being read, if any."""
        return self._in_flight

    @property
    def phase(self) -> SweepPhase:
        """An explicit order has no phases; report DONE only when empty."""
        return SweepPhase.DONE if self.is_empty else SweepPhase.FORWARD

    def remaining(self) -> List[ServiceEntry]:
        """Entries not yet started, in execution order."""
        return list(self._entries)

    def remaining_positions(self) -> List[float]:
        """Positions of not-yet-started entries, in execution order."""
        return [entry.position_mb for entry in self._entries]

    def find_block(self, block_id: int) -> Optional[ServiceEntry]:
        """The first not-yet-started entry for ``block_id``, or ``None``."""
        for entry in self._entries:
            if entry.block_id == block_id:
                return entry
        return None

    # -- execution ---------------------------------------------------------
    def pop_next(self) -> ServiceEntry:
        """Dequeue the next planned read and mark it in-flight."""
        if not self._entries:
            raise IndexError("pop from an empty service list")
        entry = self._entries.pop(0)
        self._in_flight = entry
        return entry

    def finish_in_flight(self) -> None:
        """Mark the in-flight read complete and advance the head model."""
        if self._in_flight is not None:
            self._head_mb = self._in_flight.position_mb + self._block_mb
            self._startup_pending = False
        self._in_flight = None

    def planning_state(self) -> Tuple[float, bool]:
        """Head position and startup state the next pop will start from."""
        if self._in_flight is not None:
            return self._in_flight.position_mb + self._block_mb, False
        return self._head_mb, self._startup_pending

    def adopt(self, order: Sequence[ServiceEntry]) -> None:
        """Replace the not-yet-started remainder with ``order``."""
        self._entries = list(order)

    # -- insertion ----------------------------------------------------------
    def can_insert(self, position_mb: float) -> bool:
        """An explicit order can always accommodate one more read."""
        return True

    def insert(self, entry: ServiceEntry) -> bool:
        """Add ``entry`` and re-optimize the not-yet-started remainder."""
        self._entries.append(entry)
        if self._replan is not None and len(self._entries) > 1:
            head, startup = self.planning_state()
            self._entries = list(self._replan(head, startup, list(self._entries)))
        return True


class _BatchScheduler(Scheduler):
    """Shared chassis of the LTSP families.

    The major rescheduler keeps the static family's batch structure —
    serve *all* pending requests the chosen tape can satisfy — but
    plans the read order with the family's sequencing policy and picks
    the tape minimizing the full objective ``J`` (switch overhead is
    charged against every pending request).  The incremental scheduler
    absorbs arrivals for the mounted tape and re-plans the remainder.
    """

    def __init__(self) -> None:
        self._timing: Optional[DriveTimingModel] = None
        self._block_mb: float = 0.0
        self._deferred: float = 0.0
        self._planned: Optional[List[ServiceEntry]] = None
        self._planned_head: Optional[float] = None
        #: Objective value of the last major decision (test/debug hook).
        self.last_decision_cost: Optional[float] = None

    def plan(
        self,
        timing: DriveTimingModel,
        head_mb: float,
        entries: List[ServiceEntry],
        block_mb: float,
        deferred_weight: float,
        startup_pending: bool = True,
    ) -> List[ServiceEntry]:
        """The family's sequencing policy; returns an execution order."""
        raise NotImplementedError

    def major_reschedule(self, context: SchedulerContext) -> Optional[MajorDecision]:
        if len(context.pending) == 0:
            return None
        candidates = context.pending.candidate_tapes()
        timing = context.jukebox.timing
        block_mb = context.block_mb
        self._timing = timing
        self._block_mb = block_mb
        total = float(len(context.pending))
        mounted = context.mounted_id
        anchor = mounted if mounted is not None else 0
        # Deferred requests are drained concurrently by the jukebox's
        # other drives (if any), so each one effectively waits only a
        # 1/drive_count share of this sweep.  With one drive this is a
        # no-op; under the multi-drive service it stops the objective
        # from over-penalizing deferral and over-absorbing per sweep.
        defer_scale = 1.0 / float(max(context.drive_count, 1))
        best_cost: Optional[float] = None
        best: Optional[Tuple[int, List[ServiceEntry], List[Request], float, float]] = None
        for tape_id in jukebox_order(context.tape_count, anchor):
            requests = candidates.get(tape_id)
            if not requests:
                continue
            entries = coalesce_entries(requests, tape_id, context.catalog)
            deferred = (total - float(len(requests))) * defer_scale
            if tape_id == mounted:
                head = context.head_mb
                overhead_s = 0.0
            else:
                head = 0.0
                rewind_from = context.head_mb if mounted is not None else 0.0
                overhead_s = timing.switch_with_rewind(rewind_from)
            order = self.plan(timing, head, entries, block_mb, deferred)
            charged = float(len(requests)) + deferred
            cost = overhead_s * charged + order_cost(
                timing, head, order, block_mb, deferred_weight=deferred
            )
            # Renewal-reward normalization: competing sweeps serve
            # different numbers of requests, so the steady-state-optimal
            # choice minimizes waiting cost *per request served*, not
            # the absolute cost of one decision (which would favour
            # tiny, quick sweeps and starve throughput).
            cost /= float(len(requests))
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best = (tape_id, order, requests, head, deferred)
        if best is None:
            return None
        tape_id, order, requests, head, deferred = best
        context.pending.remove_many(requests)
        self._planned = order
        self._planned_head = head
        self._deferred = deferred
        self.last_decision_cost = best_cost
        return MajorDecision(tape_id=tape_id, entries=list(order))

    def on_arrival(self, context: SchedulerContext, request: Request) -> bool:
        service = context.service
        mounted = context.mounted_id
        if service is None or mounted is None:
            context.pending.append(request)
            return False
        if not context.catalog.has_replica_on(request.block_id, mounted):
            context.pending.append(request)
            return False
        existing = service.find_block(request.block_id)
        if existing is not None:
            existing.attach(request)
            return True
        replica = context.catalog.replica_on(request.block_id, mounted)
        entry = ServiceEntry(
            position_mb=replica.position_mb,
            block_id=request.block_id,
            requests=[request],
        )
        if service.insert(entry):
            return True
        context.pending.append(request)
        return False

    def build_service_list(self, entries: List[ServiceEntry], head_mb: float):
        planned = self._planned
        self._planned = None
        if (
            planned is not None
            and self._planned_head == head_mb
            and len(planned) == len(entries)
            and all(a is b for a, b in zip(planned, entries))
        ):
            order: Sequence[ServiceEntry] = planned
        elif self._timing is not None:
            # Foreign entries (e.g. a starvation-guard forced decision):
            # plan them fresh with the family's sequencing policy.
            order = self.plan(
                self._timing, head_mb, list(entries), self._block_mb, self._deferred
            )
        else:
            order = sweep_order(entries, head_mb)
        return OrderedServiceList(
            order, head_mb=head_mb, block_mb=self._block_mb, replan=self._replan
        )

    def _replan(
        self, head_mb: float, startup_pending: bool, entries: List[ServiceEntry]
    ) -> Sequence[ServiceEntry]:
        if self._timing is None:
            return sweep_order(entries, head_mb)
        return self.plan(
            self._timing,
            head_mb,
            entries,
            self._block_mb,
            self._deferred,
            startup_pending=startup_pending,
        )


class ExactBatchScheduler(_BatchScheduler):
    """Exact per-sweep batch optimizer (arXiv 2112.09384 baseline)."""

    name = "exact-batch"

    def __init__(self, node_budget: int = DEFAULT_NODE_BUDGET) -> None:
        super().__init__()
        self.node_budget = int(node_budget)
        #: The most recent :class:`BatchPlan` (test/debug hook).
        self.last_plan: Optional[BatchPlan] = None

    def plan(
        self,
        timing: DriveTimingModel,
        head_mb: float,
        entries: List[ServiceEntry],
        block_mb: float,
        deferred_weight: float,
        startup_pending: bool = True,
    ) -> List[ServiceEntry]:
        plan = optimal_order(
            timing,
            head_mb,
            entries,
            block_mb,
            deferred_weight=deferred_weight,
            node_budget=self.node_budget,
            startup_pending=startup_pending,
        )
        self.last_plan = plan
        return list(plan.order)


class GreedyCostScheduler(_BatchScheduler):
    """Minimum-latency greedy sequencing (arXiv 2112.07018 family)."""

    name = "approx-greedy-cost"

    def plan(
        self,
        timing: DriveTimingModel,
        head_mb: float,
        entries: List[ServiceEntry],
        block_mb: float,
        deferred_weight: float,
        startup_pending: bool = True,
    ) -> List[ServiceEntry]:
        return greedy_cost_order(
            timing, head_mb, entries, block_mb, startup_pending=startup_pending
        )


class BestPassScheduler(_BatchScheduler):
    """Best of the two single-pass orders (arXiv 2112.07018 family)."""

    name = "approx-best-pass"

    def plan(
        self,
        timing: DriveTimingModel,
        head_mb: float,
        entries: List[ServiceEntry],
        block_mb: float,
        deferred_weight: float,
        startup_pending: bool = True,
    ) -> List[ServiceEntry]:
        return best_pass_order(
            timing,
            head_mb,
            entries,
            block_mb,
            deferred_weight=deferred_weight,
            startup_pending=startup_pending,
        )
