"""The dynamic scheduling family (paper Section 3.1).

Dynamic algorithms share the static major rescheduler but add an
incremental scheduler: a request arriving during a sweep whose block has
a copy on the mounted tape is inserted into the service list on the fly,
provided the requested block is still ahead of the tape head in the
existing sweep.  Otherwise the request is deferred to the pending list.
"""

from __future__ import annotations

from .base import SchedulerContext
from .static_ import StaticScheduler
from .sweep import ServiceEntry
from ..workload.requests import Request


class DynamicScheduler(StaticScheduler):
    """Static tape selection + on-the-fly insertion into the sweep."""

    def __init__(self, policy, ordering: str = "sweep") -> None:
        super().__init__(policy, ordering=ordering)
        self.name = f"dynamic-{policy.name}"
        if ordering != "sweep":
            self.name += f"-{ordering}"

    def on_arrival(self, context: SchedulerContext, request: Request) -> bool:
        service = context.service
        mounted = context.mounted_id
        if service is None or mounted is None:
            context.pending.append(request)
            return False
        if not context.catalog.has_replica_on(request.block_id, mounted):
            context.pending.append(request)
            return False
        # Coalesce onto an already scheduled (not yet started) read.
        existing = service.find_block(request.block_id)
        if existing is not None:
            existing.attach(request)
            return True
        replica = context.catalog.replica_on(request.block_id, mounted)
        entry = ServiceEntry(
            position_mb=replica.position_mb,
            block_id=request.block_id,
            requests=[request],
        )
        if service.insert(entry):
            return True
        context.pending.append(request)
        return False
