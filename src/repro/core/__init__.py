"""The paper's core contribution: tape jukebox retrieval scheduling."""

from .base import MajorDecision, Scheduler, SchedulerContext, coalesce_entries
from .cost import (
    ExtensionCostTracker,
    SweepCost,
    effective_bandwidth,
    schedule_time,
    sweep_cost,
)
from .dynamic import DynamicScheduler
from .envelope import (
    EnvelopeComputer,
    EnvelopeIndex,
    EnvelopeScheduler,
    EnvelopeState,
)
from .fifo import FifoScheduler
from .pending import PendingList
from .policies import (
    MaxBandwidth,
    MaxRequests,
    OldestRequestMaxBandwidth,
    OldestRequestMaxRequests,
    POLICIES,
    RoundRobin,
    SelectionContext,
    TapeSelectionPolicy,
    jukebox_order,
)
from .registry import make_scheduler, scheduler_names
from .static_ import StaticScheduler
from .sweep import ServiceEntry, ServiceList, SweepPhase

__all__ = [
    "DynamicScheduler",
    "EnvelopeComputer",
    "EnvelopeIndex",
    "EnvelopeScheduler",
    "EnvelopeState",
    "ExtensionCostTracker",
    "FifoScheduler",
    "MajorDecision",
    "MaxBandwidth",
    "MaxRequests",
    "OldestRequestMaxBandwidth",
    "OldestRequestMaxRequests",
    "POLICIES",
    "PendingList",
    "RoundRobin",
    "Scheduler",
    "SchedulerContext",
    "SelectionContext",
    "ServiceEntry",
    "ServiceList",
    "StaticScheduler",
    "SweepCost",
    "SweepPhase",
    "TapeSelectionPolicy",
    "coalesce_entries",
    "effective_bandwidth",
    "jukebox_order",
    "make_scheduler",
    "scheduler_names",
    "schedule_time",
    "sweep_cost",
]
