"""The paper's core contribution: tape jukebox retrieval scheduling."""

from .base import MajorDecision, Scheduler, SchedulerContext, coalesce_entries
from .cost import (
    ExtensionCostTracker,
    SweepCost,
    effective_bandwidth,
    schedule_time,
    sweep_cost,
)
from .dynamic import DynamicScheduler
from .exact import (
    BatchPlan,
    BestPassScheduler,
    DEFAULT_NODE_BUDGET,
    ExactBatchScheduler,
    GreedyCostScheduler,
    OrderedServiceList,
    best_pass_order,
    greedy_cost_order,
    optimal_order,
    order_cost,
    reverse_first_order,
    sweep_order,
)
from .envelope import (
    EnvelopeComputer,
    EnvelopeIndex,
    EnvelopeScheduler,
    EnvelopeState,
)
from .fifo import FifoScheduler
from .pending import PendingList
from .policies import (
    MaxBandwidth,
    MaxRequests,
    OldestRequestMaxBandwidth,
    OldestRequestMaxRequests,
    POLICIES,
    RoundRobin,
    SelectionContext,
    TapeSelectionPolicy,
    jukebox_order,
)
from .registry import make_scheduler, scheduler_names
from .static_ import StaticScheduler
from .sweep import ServiceEntry, ServiceList, SweepPhase

__all__ = [
    "BatchPlan",
    "BestPassScheduler",
    "DEFAULT_NODE_BUDGET",
    "DynamicScheduler",
    "ExactBatchScheduler",
    "GreedyCostScheduler",
    "OrderedServiceList",
    "EnvelopeComputer",
    "EnvelopeIndex",
    "EnvelopeScheduler",
    "EnvelopeState",
    "ExtensionCostTracker",
    "FifoScheduler",
    "MajorDecision",
    "MaxBandwidth",
    "MaxRequests",
    "OldestRequestMaxBandwidth",
    "OldestRequestMaxRequests",
    "POLICIES",
    "PendingList",
    "RoundRobin",
    "Scheduler",
    "SchedulerContext",
    "SelectionContext",
    "ServiceEntry",
    "ServiceList",
    "StaticScheduler",
    "SweepCost",
    "SweepPhase",
    "TapeSelectionPolicy",
    "best_pass_order",
    "coalesce_entries",
    "effective_bandwidth",
    "greedy_cost_order",
    "jukebox_order",
    "make_scheduler",
    "optimal_order",
    "order_cost",
    "reverse_first_order",
    "scheduler_names",
    "schedule_time",
    "sweep_cost",
    "sweep_order",
]
