"""Scheduler interface: major rescheduler + incremental scheduler.

A scheduling algorithm is specified by a *major rescheduler* that at tape
switch time chooses a tape and forms a retrieval schedule, and an
*incremental scheduler* that handles newly arriving requests — either
inserting them into the in-progress sweep or deferring them to the
pending list (paper Section 2.2).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..layout.catalog import BlockCatalog
from ..tape.jukebox import Jukebox
from ..workload.requests import Request
from .pending import PendingList
from .sweep import ServiceEntry, ServiceList


@dataclass
class SchedulerContext:
    """Mutable scheduling state shared between simulator and scheduler."""

    jukebox: Jukebox
    catalog: BlockCatalog
    pending: PendingList
    service: Optional[ServiceList] = None
    #: Tapes taken out of service by the fault layer.  The fault-aware
    #: simulator shares the injector's live set here, so schedulers (and
    #: the masked pending-list view) always see the current mask.
    masked_tapes: Set[int] = field(default_factory=set)
    #: Drives serving this pending pool (1 except under the multi-drive
    #: service).  Cost-model schedulers use it to discount deferral:
    #: requests this drive defers are drained concurrently by the others.
    drive_count: int = 1

    def tape_available(self, tape_id: int) -> bool:
        """True when ``tape_id`` is in service (not masked out)."""
        return tape_id not in self.masked_tapes

    @property
    def mounted_id(self) -> Optional[int]:
        """Currently mounted tape id."""
        return self.jukebox.mounted_id

    @property
    def head_mb(self) -> float:
        """Current head position (MB)."""
        return self.jukebox.head_mb

    @property
    def block_mb(self) -> float:
        """Logical block size (MB)."""
        return self.catalog.block_mb

    @property
    def tape_count(self) -> int:
        """Number of tapes in the jukebox."""
        return self.jukebox.tape_count


@dataclass
class MajorDecision:
    """Outcome of a major reschedule: the tape and its retrieval schedule."""

    tape_id: int
    entries: List[ServiceEntry] = field(default_factory=list)
    #: True when a policy overrode the underlying scheduler's choice
    #: (e.g. the starvation guard force-promoting an aged request).
    #: Surfaced in the observability layer's decision log.
    forced: bool = False

    @property
    def request_count(self) -> int:
        """Requests satisfied by this schedule (after coalescing)."""
        return sum(len(entry.requests) for entry in self.entries)


def coalesce_entries(
    requests: List[Request],
    tape_id: int,
    catalog: BlockCatalog,
) -> List[ServiceEntry]:
    """Build one :class:`ServiceEntry` per distinct block on ``tape_id``.

    Multiple outstanding requests for the same logical block share a
    single physical read.
    """
    by_block: Dict[int, ServiceEntry] = {}
    entries: List[ServiceEntry] = []
    for request in requests:
        entry = by_block.get(request.block_id)
        if entry is None:
            replica = catalog.replica_on(request.block_id, tape_id)
            entry = ServiceEntry(position_mb=replica.position_mb, block_id=request.block_id)
            by_block[request.block_id] = entry
            entries.append(entry)
        entry.attach(request)
    return entries


class Scheduler(abc.ABC):
    """A complete scheduling algorithm (major + incremental)."""

    #: Registry name, e.g. ``"dynamic-max-bandwidth"``.
    name: str = "abstract"

    @abc.abstractmethod
    def major_reschedule(self, context: SchedulerContext) -> Optional[MajorDecision]:
        """Choose the next tape and extract its schedule from the pending list.

        Returns ``None`` when the pending list is empty.  The chosen
        requests are removed from ``context.pending``; the simulator
        mounts the tape and executes the entries as one sweep.
        """

    def on_arrival(self, context: SchedulerContext, request: Request) -> bool:
        """Handle a request arriving during the current sweep.

        Returns True if the request was absorbed into the in-progress
        service list; otherwise the request is appended to the pending
        list and False is returned.  The base implementation is the
        *static* behaviour: always defer.
        """
        context.pending.append(request)
        return False

    def build_service_list(self, entries: List[ServiceEntry], head_mb: float):
        """Construct the execution order for a schedule.

        The paper's algorithms all use the forward-then-reverse sweep;
        ordering-ablation schedulers override this (see
        :mod:`repro.core.ordering`).
        """
        return ServiceList(entries, head_mb=head_mb)

    def on_sweep_complete(self, context: SchedulerContext) -> None:
        """Hook invoked when the service list drains (sweep ends)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
