"""Scheduler registry: name -> fresh scheduler instance.

Names follow ``<family>-<policy>``:

* ``fifo``
* ``static-{round-robin,max-requests,max-bandwidth,oldest-max-requests,
  oldest-max-bandwidth}``
* ``dynamic-{...same five...}``
* ``envelope-{oldest-max-requests,max-requests,max-bandwidth}``
* ``exact-batch`` (the LTSP optimality baseline) and
  ``approx-{greedy-cost,best-pass}`` (see :mod:`repro.core.exact`)

Schedulers carry per-sweep state, so every lookup returns a new instance.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .base import Scheduler
from .dynamic import DynamicScheduler
from .envelope import EnvelopeScheduler
from .exact import BestPassScheduler, ExactBatchScheduler, GreedyCostScheduler
from .fifo import FifoScheduler
from .policies import (
    MaxBandwidth,
    MaxRequests,
    OldestRequestMaxBandwidth,
    OldestRequestMaxRequests,
    RoundRobin,
)
from .static_ import StaticScheduler

_POLICY_FACTORIES = {
    "round-robin": RoundRobin,
    "max-requests": MaxRequests,
    "max-bandwidth": MaxBandwidth,
    "oldest-max-requests": OldestRequestMaxRequests,
    "oldest-max-bandwidth": OldestRequestMaxBandwidth,
}

_ENVELOPE_POLICIES = ("oldest-max-requests", "max-requests", "max-bandwidth")


def _build_registry() -> Dict[str, Callable[[], Scheduler]]:
    registry: Dict[str, Callable[[], Scheduler]] = {"fifo": FifoScheduler}
    for policy_name, policy_factory in _POLICY_FACTORIES.items():
        registry[f"static-{policy_name}"] = (
            lambda factory=policy_factory: StaticScheduler(factory())
        )
        registry[f"dynamic-{policy_name}"] = (
            lambda factory=policy_factory: DynamicScheduler(factory())
        )
    for policy_name in _ENVELOPE_POLICIES:
        policy_factory = _POLICY_FACTORIES[policy_name]
        registry[f"envelope-{policy_name}"] = (
            lambda factory=policy_factory: EnvelopeScheduler(factory())
        )
    registry["exact-batch"] = ExactBatchScheduler
    registry["approx-greedy-cost"] = GreedyCostScheduler
    registry["approx-best-pass"] = BestPassScheduler
    return registry


_REGISTRY = _build_registry()


def scheduler_names() -> List[str]:
    """All registered scheduler names, sorted."""
    return sorted(_REGISTRY)


def make_scheduler(name: str) -> Scheduler:
    """Instantiate the scheduler registered under ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(scheduler_names())
        raise KeyError(f"unknown scheduler {name!r}; known: {known}") from None
    return factory()
