"""The service list: a retrieval schedule executed as one sweep.

A schedule over one tape is executed in a single *sweep* (paper
Section 2.2): starting from the head position at sweep start, a *forward
phase* reads the scheduled blocks at or above the head in ascending
position order, then a *reverse phase* reads the remaining blocks in
descending order.  Dynamic schedulers may insert newly arrived requests
into the part of the sweep the head has not yet passed.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..workload.requests import Request


@dataclass
class ServiceEntry:
    """One block read in the sweep; coalesces all requests for that block."""

    position_mb: float
    block_id: int
    requests: List[Request] = field(default_factory=list)

    def attach(self, request: Request) -> None:
        """Coalesce another request onto this scheduled read."""
        self.requests.append(request)


class SweepPhase(enum.Enum):
    """Which part of the sweep the head is currently executing."""

    FORWARD = "forward"
    REVERSE = "reverse"
    DONE = "done"


class ServiceList:
    """A sweep-ordered schedule with on-the-fly insertion support.

    Invariants:

    * the forward phase holds entries at positions ``>= start_head_mb``
      in ascending order; the reverse phase holds entries below the start
      head in descending order;
    * an insertion never lands at or behind the sweep's progress: once a
      forward read at position ``q`` has started, forward insertions must
      be strictly above ``q``; once the reverse phase has started, forward
      insertions are rejected and reverse insertions must be strictly
      below the last started reverse position.
    """

    def __init__(self, entries: List[ServiceEntry], head_mb: float) -> None:
        self.start_head_mb = float(head_mb)
        self._forward: List[ServiceEntry] = sorted(
            (entry for entry in entries if entry.position_mb >= head_mb),
            key=lambda entry: entry.position_mb,
        )
        self._reverse: List[ServiceEntry] = sorted(
            (entry for entry in entries if entry.position_mb < head_mb),
            key=lambda entry: -entry.position_mb,
        )
        self._in_flight: Optional[ServiceEntry] = None
        #: Position of the deepest forward read started (sweep progress).
        self._forward_bound: Optional[float] = None
        #: Position of the deepest reverse read started.
        self._reverse_bound: Optional[float] = None
        self._reverse_started = False
        #: block_id -> not-yet-started entries for that block, maintained
        #: by pop_next/insert.  Schedulers coalesce to one entry per
        #: block, so buckets almost always hold a single entry; the list
        #: keeps hand-built schedules with duplicates working.
        self._by_block: Dict[int, List[ServiceEntry]] = {}
        for entry in self._forward:
            self._by_block.setdefault(entry.block_id, []).append(entry)
        for entry in self._reverse:
            self._by_block.setdefault(entry.block_id, []).append(entry)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._forward) + len(self._reverse)

    @property
    def is_empty(self) -> bool:
        """True when no reads remain to be started."""
        return not self._forward and not self._reverse

    @property
    def in_flight(self) -> Optional[ServiceEntry]:
        """The entry currently being read, if any."""
        return self._in_flight

    @property
    def phase(self) -> SweepPhase:
        """The phase the *next* pop will execute in."""
        if self._forward:
            return SweepPhase.FORWARD
        if self._reverse:
            return SweepPhase.REVERSE
        return SweepPhase.DONE

    def remaining(self) -> List[ServiceEntry]:
        """Entries not yet started, in execution order."""
        return list(self._forward) + list(self._reverse)

    def remaining_positions(self) -> List[float]:
        """Positions of not-yet-started entries, in execution order."""
        return [entry.position_mb for entry in self.remaining()]

    def find_block(self, block_id: int) -> Optional[ServiceEntry]:
        """A not-yet-started entry for ``block_id``, or ``None``.

        With duplicate entries for one block the earliest in execution
        order wins — the same entry a scan of forward-then-reverse in
        phase order would have returned.
        """
        entries = self._by_block.get(block_id)
        if not entries:
            return None
        if len(entries) == 1:
            return entries[0]
        head = self.start_head_mb
        return min(
            entries,
            key=lambda entry: (0.0, entry.position_mb)
            if entry.position_mb >= head
            else (1.0, -entry.position_mb),
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def pop_next(self) -> ServiceEntry:
        """Dequeue the next read and mark it in-flight."""
        if self._forward:
            entry = self._forward.pop(0)
            self._forward_bound = entry.position_mb
        elif self._reverse:
            entry = self._reverse.pop(0)
            self._reverse_started = True
            self._reverse_bound = entry.position_mb
        else:
            raise IndexError("pop from an empty service list")
        bucket = self._by_block[entry.block_id]
        for index, candidate in enumerate(bucket):
            if candidate is entry:
                del bucket[index]
                break
        if not bucket:
            del self._by_block[entry.block_id]
        self._in_flight = entry
        return entry

    def finish_in_flight(self) -> None:
        """Mark the in-flight read complete."""
        self._in_flight = None

    # ------------------------------------------------------------------
    # Insertion (dynamic incremental scheduling)
    # ------------------------------------------------------------------
    def can_insert(self, position_mb: float) -> bool:
        """True if a read at ``position_mb`` is still ahead of the sweep."""
        if position_mb >= self.start_head_mb:
            if self._reverse_started:
                return False  # the sweep will never move forward again
            if self._forward_bound is None:
                return True
            return position_mb > self._forward_bound
        # Below the sweep's start head: reverse-phase territory.
        if not self._reverse_started:
            return True
        assert self._reverse_bound is not None
        return position_mb < self._reverse_bound

    def insert(self, entry: ServiceEntry) -> bool:
        """Insert ``entry`` into the not-yet-executed part of the sweep.

        Returns ``False`` (schedule unchanged) when the head has already
        passed the entry's position in sweep order.
        """
        if not self.can_insert(entry.position_mb):
            return False
        if entry.position_mb >= self.start_head_mb:
            keys = [existing.position_mb for existing in self._forward]
            index = bisect.bisect_left(keys, entry.position_mb)
            self._forward.insert(index, entry)
        else:
            keys = [-existing.position_mb for existing in self._reverse]
            index = bisect.bisect_left(keys, -entry.position_mb)
            self._reverse.insert(index, entry)
        self._by_block.setdefault(entry.block_id, []).append(entry)
        return True
